#!/bin/bash
for b in tab4_fig6_ablation fig1_plan_selection fig7_scatter; do
  echo "=== rerun $b ==="
  cargo run --release -p bench --bin "$b" 2>&1 | tee "results/logs/$b.log" | tail -3
done
python3 scripts/fill_experiments.py
echo RERUN_DONE
