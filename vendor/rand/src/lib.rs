//! Offline stand-in for the `rand` crate, implementing the API subset this
//! workspace uses: [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! (`seed_from_u64`, `from_seed`), [`rngs::StdRng`] and
//! [`seq::SliceRandom::shuffle`].
//!
//! The container this repository builds in has no network access and no
//! cached registry, so the real crates.io `rand` cannot be fetched. The
//! generator here is xoshiro256++ (Blackman & Vigna) seeded through
//! SplitMix64 — statistically strong far beyond what seeded tests and
//! weight initialisation need. Streams differ from upstream `StdRng`
//! (ChaCha12), which only matters if exact upstream sequences were golden;
//! nothing in this workspace depends on them.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution of `Self`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Element types whose ranges can be sampled uniformly — mirrors
/// upstream's `SampleUniform` so `gen_range` type inference behaves the
/// same way (one blanket impl per range shape, not one impl per type).
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[start, end)`.
    fn sample_half_open<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;

    /// Uniform draw from `[start, end]`.
    fn sample_inclusive<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                assert!(start < end, "gen_range on empty range");
                let span = (end as i128 - start as i128) as u128;
                // Multiply-shift bounded sampling (Lemire); the tiny modulo
                // bias of u64 * span >> 64 is irrelevant at these spans.
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + v) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                assert!(start <= end, "gen_range on empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                assert!(start < end, "gen_range on empty range");
                let u = <$t as Standard>::sample_standard(rng);
                start + u * (end - start)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                assert!(start <= end, "gen_range on empty range");
                let u = <$t as Standard>::sample_standard(rng);
                start + u * (end - start)
            }
        }
    )*};
}

uniform_float!(f32, f64);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_inclusive(start, end, rng)
    }
}

/// User-facing random-sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T` (uniform
    /// `[0, 1)` for floats, full-width uniform for integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Seed type (kept for API compatibility; 32 bytes like upstream).
    type Seed: Default + AsMut<[u8]>;

    /// Builds a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a 64-bit seed (the form this workspace uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seedable generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [0x9E3779B97F4A7C15, 0x6A09E667F3BCC909, 1, 2];
            }
            Self { s }
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::RngCore;

    /// Extension trait adding in-place shuffling to slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = ((rng.next_u64() as u128 * (i as u128 + 1)) >> 64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = ((rng.next_u64() as u128 * self.len() as u128) >> 64) as usize;
                self.get(i)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn unit_floats_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            lo |= f < 0.1;
            hi |= f > 0.9;
        }
        assert!(lo && hi, "samples should cover both tails");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should move");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }
}
