//! Offline stand-in for `serde`: a self-describing value model
//! ([`Value`]) with [`Serialize`]/[`Deserialize`] traits and derive
//! macros, sufficient for the JSON checkpointing this workspace does.
//!
//! The real serde's visitor-based data model is far more general than the
//! workspace needs (every consumer here is `serde_json`), so this vendored
//! version collapses serialization to "convert to [`Value`]" and
//! deserialization to "convert from [`Value`]". The derive macros in
//! `serde_derive` generate exactly those conversions, honouring the
//! `#[serde(skip)]` / `#[serde(default)]` / `#[serde(default = "path")]`
//! attributes used in this repository.

#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A self-describing tree of data — the single intermediate form between
/// Rust values and their serialized representation.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (preserved separately so `u64::MAX` round-trips).
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Key-value map with insertion order preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error produced when a [`Value`] does not match the shape a
/// [`Deserialize`] implementation expects.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the self-describing [`Value`] model.
pub trait Serialize {
    /// Serializes `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Conversion from the self-describing [`Value`] model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(DeError::new(format!(
                        "expected integer, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

ser_int!(i8, i16, i32, i64, isize);

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Int(i) if *i >= 0 => Ok(*i as $t),
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as $t),
                    other => Err(DeError::new(format!(
                        "expected unsigned integer, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(DeError::new(format!(
                        "expected float, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

ser_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::new(format!("expected single-char string, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Box::new(T::from_value(v)?))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(DeError::new(format!("expected 2-tuple, found {other:?}"))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(DeError::new(format!("expected 3-tuple, found {other:?}"))),
        }
    }
}

impl<V: Serialize, S> Serialize for HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        // Sort keys for deterministic output (HashMap iteration order is not).
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::new(format!("expected object, found {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::new(format!("expected object, found {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trip() {
        let some: Option<u32> = Some(5);
        let none: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&some.to_value()).unwrap(), Some(5));
        assert_eq!(Option::<u32>::from_value(&none.to_value()).unwrap(), None);
    }

    #[test]
    fn nested_vec_round_trip() {
        let v: Vec<Vec<f32>> = vec![vec![1.0, 2.0], vec![3.0]];
        let back = Vec::<Vec<f32>>::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn map_round_trip_is_sorted() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 2u64);
        m.insert("a".to_string(), 1u64);
        let v = m.to_value();
        if let Value::Object(entries) = &v {
            assert_eq!(entries[0].0, "a");
        } else {
            panic!("expected object");
        }
        assert_eq!(HashMap::<String, u64>::from_value(&v).unwrap(), m);
    }

    #[test]
    fn type_mismatch_is_an_error() {
        assert!(bool::from_value(&Value::Int(1)).is_err());
        assert!(String::from_value(&Value::Null).is_err());
    }
}
