//! Derive macros for the vendored `serde` stand-in.
//!
//! Generates `Serialize::to_value` / `Deserialize::from_value`
//! implementations for the shapes this workspace uses: structs with named
//! fields, tuple structs (newtype and wider), unit structs, and enums with
//! unit, tuple and struct variants (externally tagged, like real serde).
//! Honours `#[serde(skip)]`, `#[serde(default)]` and
//! `#[serde(default = "path")]` field attributes.
//!
//! Implemented directly over `proc_macro::TokenStream` (no syn/quote —
//! the build container has no network access to fetch them); code is
//! generated as source text and re-parsed, which the compiler validates.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Simplified token for parsing.
#[derive(Debug, Clone)]
enum Tok {
    Ident(String),
    Punct(char),
    Group(Delimiter, Vec<Tok>),
    Literal(String),
}

fn lex(stream: TokenStream) -> Vec<Tok> {
    stream
        .into_iter()
        .map(|tt| match tt {
            TokenTree::Ident(i) => Tok::Ident(i.to_string()),
            TokenTree::Punct(p) => Tok::Punct(p.as_char()),
            TokenTree::Group(g) => Tok::Group(g.delimiter(), lex(g.stream())),
            TokenTree::Literal(l) => Tok::Literal(l.to_string()),
        })
        .collect()
}

#[derive(Debug, Default, Clone)]
struct FieldAttrs {
    skip: bool,
    /// `Some(None)` = `#[serde(default)]`; `Some(Some(path))` = `default = "path"`.
    default: Option<Option<String>>,
}

#[derive(Debug)]
struct Field {
    name: String,
    attrs: FieldAttrs,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Input {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Parses `#[serde(...)]` content into field attributes.
fn parse_serde_attr(tokens: &[Tok], attrs: &mut FieldAttrs) {
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            Tok::Ident(id) if id == "skip" => {
                attrs.skip = true;
                i += 1;
            }
            Tok::Ident(id) if id == "default" => {
                if let Some(Tok::Punct('=')) = tokens.get(i + 1) {
                    if let Some(Tok::Literal(lit)) = tokens.get(i + 2) {
                        let path = lit.trim_matches('"').to_string();
                        attrs.default = Some(Some(path));
                        i += 3;
                        continue;
                    }
                    panic!("serde(default = ...) expects a string literal");
                }
                attrs.default = Some(None);
                i += 1;
            }
            Tok::Punct(',') => i += 1,
            other => panic!("unsupported serde attribute token: {other:?}"),
        }
    }
}

/// Consumes leading attributes at `*i`, returning any serde field attrs.
fn skip_attrs(tokens: &[Tok], i: &mut usize) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    while let Some(Tok::Punct('#')) = tokens.get(*i) {
        match tokens.get(*i + 1) {
            Some(Tok::Group(Delimiter::Bracket, inner)) => {
                if let Some(Tok::Ident(head)) = inner.first() {
                    if head == "serde" {
                        if let Some(Tok::Group(Delimiter::Parenthesis, args)) = inner.get(1) {
                            parse_serde_attr(args, &mut attrs);
                        }
                    }
                }
                *i += 2;
            }
            // `#!` inner attribute or malformed: skip the punct alone.
            _ => *i += 1,
        }
    }
    attrs
}

/// Skips visibility modifiers (`pub`, `pub(crate)`, ...).
fn skip_vis(tokens: &[Tok], i: &mut usize) {
    if let Some(Tok::Ident(id)) = tokens.get(*i) {
        if id == "pub" {
            *i += 1;
            if let Some(Tok::Group(Delimiter::Parenthesis, _)) = tokens.get(*i) {
                *i += 1;
            }
        }
    }
}

/// Advances past a type expression: everything until a `,` at
/// angle-bracket depth 0 (or end of tokens).
fn skip_type(tokens: &[Tok], i: &mut usize) {
    let mut angle: i32 = 0;
    while let Some(tok) = tokens.get(*i) {
        match tok {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => angle -= 1,
            Tok::Punct(',') if angle == 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

/// Parses the contents of a `{ ... }` field list.
fn parse_named_fields(tokens: &[Tok]) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs = skip_attrs(tokens, &mut i);
        skip_vis(tokens, &mut i);
        let Some(Tok::Ident(name)) = tokens.get(i) else {
            break;
        };
        let name = name.clone();
        i += 1;
        assert!(
            matches!(tokens.get(i), Some(Tok::Punct(':'))),
            "expected `:` after field `{name}`"
        );
        i += 1;
        skip_type(tokens, &mut i);
        // now at `,` or end
        if let Some(Tok::Punct(',')) = tokens.get(i) {
            i += 1;
        }
        fields.push(Field { name, attrs });
    }
    fields
}

/// Counts the fields of a tuple-struct/tuple-variant parenthesis group.
fn count_tuple_fields(tokens: &[Tok]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        let _ = skip_attrs(tokens, &mut i);
        skip_vis(tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(tokens, &mut i);
        count += 1;
        if let Some(Tok::Punct(',')) = tokens.get(i) {
            i += 1;
        }
    }
    count
}

fn parse_variants(tokens: &[Tok]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let _ = skip_attrs(tokens, &mut i); // e.g. doc comments, #[default]
        let Some(Tok::Ident(name)) = tokens.get(i) else {
            break;
        };
        let name = name.clone();
        i += 1;
        let kind = match tokens.get(i) {
            Some(Tok::Group(Delimiter::Parenthesis, inner)) => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(inner))
            }
            Some(Tok::Group(Delimiter::Brace, inner)) => {
                i += 1;
                VariantKind::Struct(parse_named_fields(inner))
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant `= expr` if present.
        if let Some(Tok::Punct('=')) = tokens.get(i) {
            while i < tokens.len() && !matches!(tokens.get(i), Some(Tok::Punct(','))) {
                i += 1;
            }
        }
        if let Some(Tok::Punct(',')) = tokens.get(i) {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_input(stream: TokenStream) -> Input {
    let tokens = lex(stream);
    let mut i = 0;
    // Skip item-level attributes and visibility.
    let _ = skip_attrs(&tokens, &mut i);
    skip_vis(&tokens, &mut i);
    let kind = match tokens.get(i) {
        Some(Tok::Ident(id)) if id == "struct" || id == "enum" => id.clone(),
        other => panic!("serde derive supports struct/enum only, found {other:?}"),
    };
    i += 1;
    let Some(Tok::Ident(name)) = tokens.get(i) else {
        panic!("expected type name");
    };
    let name = name.clone();
    i += 1;
    if let Some(Tok::Punct('<')) = tokens.get(i) {
        panic!("vendored serde derive does not support generic type `{name}`");
    }
    if kind == "struct" {
        match tokens.get(i) {
            Some(Tok::Group(Delimiter::Brace, inner)) => {
                Input::NamedStruct { name, fields: parse_named_fields(inner) }
            }
            Some(Tok::Group(Delimiter::Parenthesis, inner)) => {
                Input::TupleStruct { name, arity: count_tuple_fields(inner) }
            }
            Some(Tok::Punct(';')) | None => Input::UnitStruct { name },
            other => panic!("unsupported struct body: {other:?}"),
        }
    } else {
        match tokens.get(i) {
            Some(Tok::Group(Delimiter::Brace, inner)) => {
                Input::Enum { name, variants: parse_variants(inner) }
            }
            other => panic!("unsupported enum body: {other:?}"),
        }
    }
}

fn default_expr(attrs: &FieldAttrs) -> String {
    match &attrs.default {
        Some(Some(path)) => format!("{path}()"),
        _ => "::std::default::Default::default()".to_string(),
    }
}

/// Derives `serde::Serialize` (vendored value-model form).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let out = match &parsed {
        Input::NamedStruct { name, fields } => {
            let mut pushes = String::new();
            for f in fields {
                if f.attrs.skip {
                    continue;
                }
                pushes.push_str(&format!(
                    "entries.push((\"{n}\".to_string(), ::serde::Serialize::to_value(&self.{n})));\n",
                    n = f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(entries)\n\
                     }}\n\
                 }}"
            )
        }
        Input::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Input::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Input::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|k| format!("__f{k}")).collect();
                        let inner = if *arity == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), {inner})]),\n",
                            binds.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{n}\".to_string(), ::serde::Serialize::to_value({n}))",
                                    n = f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Object(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (vendored value-model form).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let out = match &parsed {
        Input::NamedStruct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                let n = &f.name;
                if f.attrs.skip {
                    inits.push_str(&format!("{n}: {},\n", default_expr(&f.attrs)));
                } else if f.attrs.default.is_some() {
                    inits.push_str(&format!(
                        "{n}: match __v.get(\"{n}\") {{\n\
                             Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
                             None => {},\n\
                         }},\n",
                        default_expr(&f.attrs)
                    ));
                } else {
                    inits.push_str(&format!(
                        "{n}: match __v.get(\"{n}\") {{\n\
                             Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
                             None => return Err(::serde::DeError::new(\"missing field `{n}` in {name}\")),\n\
                         }},\n"
                    ));
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match __v {{\n\
                             ::serde::Value::Object(_) => Ok({name} {{\n{inits}}}),\n\
                             __other => Err(::serde::DeError::new(format!(\"expected object for {name}, found {{__other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        Input::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?"))
                    .collect();
                format!(
                    "match __v {{\n\
                         ::serde::Value::Array(__items) if __items.len() == {arity} => Ok({name}({})),\n\
                         __other => Err(::serde::DeError::new(format!(\"expected {arity}-array for {name}, found {{__other:?}}\"))),\n\
                     }}",
                    items.join(", ")
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
                 }}"
            )
        }
        Input::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(_: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ Ok({name}) }}\n\
             }}"
        ),
        Input::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                        // Real serde also accepts {"Variant": null}; we don't emit it.
                    }
                    VariantKind::Tuple(arity) => {
                        let body = if *arity == 1 {
                            format!("Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?))")
                        } else {
                            let items: Vec<String> = (0..*arity)
                                .map(|k| {
                                    format!("::serde::Deserialize::from_value(&__items[{k}])?")
                                })
                                .collect();
                            format!(
                                "match __inner {{\n\
                                     ::serde::Value::Array(__items) if __items.len() == {arity} => Ok({name}::{vn}({})),\n\
                                     __other => Err(::serde::DeError::new(format!(\"expected {arity}-array for {name}::{vn}, found {{__other:?}}\"))),\n\
                                 }}",
                                items.join(", ")
                            )
                        };
                        tagged_arms.push_str(&format!("\"{vn}\" => {{ {body} }}\n"));
                    }
                    VariantKind::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            let n = &f.name;
                            inits.push_str(&format!(
                                "{n}: match __inner.get(\"{n}\") {{\n\
                                     Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
                                     None => return Err(::serde::DeError::new(\"missing field `{n}` in {name}::{vn}\")),\n\
                                 }},\n"
                            ));
                        }
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => Ok({name}::{vn} {{\n{inits}}}),\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match __v {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\
                                 __other => Err(::serde::DeError::new(format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                                 let (__tag, __inner) = &__entries[0];\n\
                                 match __tag.as_str() {{\n\
                                     {tagged_arms}\
                                     __other => Err(::serde::DeError::new(format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             __other => Err(::serde::DeError::new(format!(\"expected enum value for {name}, found {{__other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().expect("generated Deserialize impl parses")
}
