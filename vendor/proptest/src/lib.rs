//! Offline stand-in for `proptest`: random-sampling property tests with the
//! combinator surface this workspace uses (`proptest!`, `prop_oneof!`,
//! `prop_assert!`, ranges, regex-ish string strategies, `prop::collection::vec`,
//! tuples, `Just`, `prop_map`, `prop_recursive`).
//!
//! Differences from real proptest: no shrinking (failures report the raw
//! sampled case) and no regression-file persistence. Sampling is
//! deterministic per test (the RNG is seeded from the test's module path),
//! so failures reproduce across runs.

#![warn(missing_docs)]

/// Strategy trait and combinators.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of values this strategy generates.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases this strategy behind a clonable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Rc::new(self)
        }

        /// Builds recursive structures: `recurse` receives a strategy for
        /// the current level and returns one for the next level up, applied
        /// `depth` times. (`_desired_size` / `_expected_branch_size` are
        /// accepted for API compatibility; sampling depth alone bounds the
        /// tree here.)
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
            S: Strategy<Value = Self::Value> + 'static,
        {
            let mut cur = self.boxed();
            for _ in 0..depth {
                // Bias toward the shallower alternative so expected sizes
                // stay small even for wide branch nodes.
                cur =
                    Union::new_weighted(vec![(2, cur.clone()), (1, recurse(cur).boxed())]).boxed();
            }
            cur
        }
    }

    /// Clonable, type-erased strategy handle.
    pub type BoxedStrategy<T> = Rc<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Rc<S> {
        type Value = S::Value;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted choice between boxed strategies (backs `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<(u32, BoxedStrategy<T>)>,
        total_weight: u64,
    }

    impl<T> Union<T> {
        /// Uniform choice between options.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            Self::new_weighted(options.into_iter().map(|s| (1, s)).collect())
        }

        /// Weighted choice between options.
        pub fn new_weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            let total_weight = options.iter().map(|(w, _)| *w as u64).sum();
            assert!(total_weight > 0, "prop_oneof! weights must not all be zero");
            Self { options, total_weight }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            let mut pick = rng.gen_range(0..self.total_weight);
            for (w, s) in &self.options {
                if pick < *w as u64 {
                    return s.sample(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights summed correctly")
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng), self.3.sample(rng))
        }
    }

    /// `&str` strategies are interpreted as a small regex subset:
    /// literal characters, `.` (printable ASCII), character classes
    /// `[a-c%]` with ranges, and `{n}` / `{m,n}` repetition.
    impl Strategy for &str {
        type Value = String;

        fn sample(&self, rng: &mut StdRng) -> String {
            sample_pattern(self, rng)
        }
    }

    enum Atom {
        Any,
        Literal(char),
        Class(Vec<(char, char)>),
    }

    impl Atom {
        fn sample(&self, rng: &mut StdRng) -> char {
            match self {
                Atom::Any => {
                    // Printable ASCII, like `.` over a byte-oriented corpus.
                    char::from_u32(rng.gen_range(0x20u32..0x7F)).unwrap()
                }
                Atom::Literal(c) => *c,
                Atom::Class(ranges) => {
                    let total: u32 =
                        ranges.iter().map(|(lo, hi)| *hi as u32 - *lo as u32 + 1).sum();
                    let mut pick = rng.gen_range(0..total);
                    for (lo, hi) in ranges {
                        let span = *hi as u32 - *lo as u32 + 1;
                        if pick < span {
                            return char::from_u32(*lo as u32 + pick).unwrap();
                        }
                        pick -= span;
                    }
                    unreachable!("class spans summed correctly")
                }
            }
        }
    }

    fn sample_pattern(pattern: &str, rng: &mut StdRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '.' => {
                    i += 1;
                    Atom::Any
                }
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = chars[i];
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            ranges.push((lo, chars[i + 2]));
                            i += 3;
                        } else {
                            ranges.push((lo, lo));
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated class in pattern {pattern:?}");
                    i += 1; // consume ']'
                    Atom::Class(ranges)
                }
                '\\' if i + 1 < chars.len() => {
                    i += 2;
                    Atom::Literal(chars[i - 1])
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            // Optional repetition: {n} or {m,n}.
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| p + i)
                    .unwrap_or_else(|| panic!("unterminated repetition in {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().expect("repetition lower bound"),
                        n.trim().parse::<usize>().expect("repetition upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("repetition count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let count = if min == max {
                min
            } else {
                rng.gen_range(min..=max)
            };
            for _ in 0..count {
                out.push(atom.sample(rng));
            }
        }
        out
    }
}

/// Runner plumbing used by the `proptest!` macro expansion.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::fmt;

    /// A failed property within a test case.
    #[derive(Debug)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self { msg: msg.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }

    /// Deterministic per-test RNG so failures reproduce across runs.
    pub fn rng_for(test_name: &str) -> StdRng {
        // FNV-1a over the fully qualified test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// Runtime configuration for `proptest!` blocks.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for API compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256, max_shrink_iters: 0 }
    }
}

/// Namespaced strategy constructors (`prop::collection::vec`, `prop::bool::ANY`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;
        use std::ops::Range;

        /// Strategy for `Vec<T>` with length drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// Generates vectors whose elements come from `element` and whose
        /// length is uniform in `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "empty vec size range");
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let len = rng.gen_range(self.size.clone());
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Uniform boolean strategy.
        #[derive(Clone, Copy)]
        pub struct Any;

        /// Samples `true`/`false` with equal probability.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;

            fn sample(&self, rng: &mut StdRng) -> bool {
                rng.gen_bool(0.5)
            }
        }
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::TestCaseError;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// runs `config.cases` sampled cases. As with upstream proptest, the
/// `#[test]` attribute is written by the caller inside the macro body and
/// passed through verbatim (adding one here would register every test
/// twice).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($p:pat in $s:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::rng_for(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    $(let $p = $crate::strategy::Strategy::sample(&($s), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        panic!("property `{}` failed on case {}: {}", stringify!($name), __case, e);
                    }
                }
            }
        )*
    };
}

/// Chooses uniformly between the listed strategies (all must generate the
/// same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{:?}` == `{:?}`",
            __a,
            __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{:?}` == `{:?}`: {}",
            __a,
            __b,
            format!($($fmt)+)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::rng_for;

    #[test]
    fn ranges_sample_within_bounds() {
        let mut rng = rng_for("ranges");
        for _ in 0..1000 {
            let v = Strategy::sample(&(3i64..17), &mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn pattern_strategy_matches_shape() {
        let mut rng = rng_for("pattern");
        for _ in 0..200 {
            let s = Strategy::sample(&"[a-c]{1,3}", &mut rng);
            assert!((1..=3).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
            let t = Strategy::sample(&"[a-c%]{0,6}", &mut rng);
            assert!(t.len() <= 6);
            assert!(t.chars().all(|c| ('a'..='c').contains(&c) || c == '%'));
            let dot = Strategy::sample(&".{0,120}", &mut rng);
            assert!(dot.len() <= 120);
        }
    }

    #[test]
    fn oneof_and_recursive_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            #[allow(dead_code)] // constructed by the strategy, read only via Debug
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = prop_oneof![(-5i64..5).prop_map(Tree::Leaf), Just(Tree::Leaf(0)),];
        let strat = leaf.prop_recursive(3, 24, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = rng_for("recursive");
        for _ in 0..200 {
            let t = Strategy::sample(&strat, &mut rng);
            assert!(depth(&t) <= 4, "depth bounded by recursion depth: {t:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        /// The macro itself: bindings, tuples, collections, assertions.
        #[test]
        fn macro_smoke(
            (a, flag) in (0i64..10, prop::bool::ANY),
            mut v in prop::collection::vec(0u64..5, 0..10),
        ) {
            prop_assert!((0..10).contains(&a));
            v.push(3);
            prop_assert!(!v.is_empty());
            if flag {
                prop_assert_eq!(*v.last().unwrap(), 3u64);
            }
        }
    }
}
