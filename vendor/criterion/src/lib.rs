//! Offline stand-in for `criterion`: same macro/API surface
//! (`criterion_group!`, `criterion_main!`, `Criterion::benchmark_group`,
//! `Bencher::iter`) backed by a simple warmup + median-of-samples timer
//! instead of criterion's full statistical engine.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver handed to each `criterion_group!` target.
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warmup: Duration::from_millis(300),
            measure: Duration::from_millis(1000),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup: {name}");
        BenchmarkGroup { criterion: self }
    }
}

/// A named set of benchmarks sharing the group's configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark: `f` receives a [`Bencher`] and calls
    /// [`Bencher::iter`] with the code under test.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            warmup: self.criterion.warmup,
            measure: self.criterion.measure,
            ns_per_iter: None,
        };
        f(&mut bencher);
        match bencher.ns_per_iter {
            Some(ns) => println!("  {name:<40} {:>12} ns/iter", format_ns(ns)),
            None => println!("  {name:<40} (no measurement — iter() not called)"),
        }
        self
    }

    /// Ends the group (output is already flushed per benchmark).
    pub fn finish(&mut self) {}
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.1}", ns)
    } else if ns >= 100.0 {
        format!("{:.2}", ns)
    } else {
        format!("{:.3}", ns)
    }
}

/// Times a closure: warmup phase to stabilise caches/frequency, then
/// repeated timed batches; reports the median batch.
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    ns_per_iter: Option<f64>,
}

impl Bencher {
    /// Measures `f`, storing nanoseconds per iteration.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // Warmup while estimating per-iteration cost.
        let warmup_start = Instant::now();
        let mut iters_done: u64 = 0;
        while warmup_start.elapsed() < self.warmup {
            black_box(f());
            iters_done += 1;
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / iters_done.max(1) as f64;

        // Aim for ~20 batches within the measurement window.
        let batch = ((self.measure.as_secs_f64() / 20.0 / per_iter.max(1e-9)) as u64).max(1);
        let mut samples: Vec<f64> = Vec::new();
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measure || samples.len() < 5 {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(t.elapsed().as_secs_f64() * 1e9 / batch as f64);
            if samples.len() >= 200 {
                break;
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.ns_per_iter = Some(samples[samples.len() / 2]);
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            warmup: Duration::from_millis(5),
            measure: Duration::from_millis(20),
        };
        let mut group = c.benchmark_group("smoke");
        let mut ran = false;
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
