//! Offline stand-in for `serde_json`: serializes the vendored serde
//! [`Value`] model to JSON text and parses it back with a recursive-descent
//! parser. Covers the `to_string` / `from_str` surface this workspace uses.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Error from JSON encoding or decoding.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes any [`Serialize`] value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Parses a JSON string into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_complete(s)?;
    Ok(T::from_value(&value)?)
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's float Display is shortest-round-trip, so the value
                // survives a parse back exactly.
                out.push_str(&f.to_string());
            } else {
                // JSON has no NaN/Infinity; mirror serde_json's lossy null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(v, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: expect a \uXXXX low surrogate.
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::new("lone high surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(c)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input came from &str, so
                    // the bytes are valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert!(from_str::<bool>("true").unwrap());
        let f: f64 = from_str(&to_string(&0.1f64).unwrap()).unwrap();
        assert_eq!(f, 0.1);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\n\"quoted\"\tand \\ unicode: é λ 😀".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn unicode_escape_parses() {
        // BMP escape for e-acute plus a surrogate pair for an emoji.
        let json = "\"\\u00e9\\ud83d\\ude00\"";
        assert_eq!(from_str::<String>(json).unwrap(), "\u{e9}\u{1F600}");
    }

    #[test]
    fn nested_structures_round_trip() {
        let v: Vec<(String, Vec<f32>)> =
            vec![("a".to_string(), vec![1.5, -2.25]), ("b".to_string(), vec![])];
        let json = to_string(&v).unwrap();
        let back: Vec<(String, Vec<f32>)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("4 2").is_err());
        assert!(from_str::<u64>("{").is_err());
        assert!(from_str::<Vec<u64>>("[1,]").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let v: Vec<u64> = from_str(" [ 1 , 2 ,\n 3 ] ").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }
}
