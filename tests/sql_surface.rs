//! SQL surface tests through the full engine: every construct the
//! workload generators emit, checked for exact results on a hand-built
//! dataset.

use sparksim::catalog::Catalog;
use sparksim::engine::Engine;
use sparksim::schema::{ColumnDef, TableSchema};
use sparksim::storage::{Column, ColumnData, StrColumnBuilder, Table};
use sparksim::types::{DataType, Value};

fn engine() -> Engine {
    let mut c = Catalog::new();
    // people(id, age, city) — city has NULLs.
    let mut city = StrColumnBuilder::new();
    for v in ["oslo", "lima", "oslo", "kyiv", "lima", "oslo"] {
        city.push(v);
    }
    city.push_null();
    city.push("kyiv");
    c.register(Table::new(
        TableSchema::new(
            "people",
            vec![
                ColumnDef::new("id", DataType::Int, false),
                ColumnDef::new("age", DataType::Int, false),
                ColumnDef::new("city", DataType::Str, true),
            ],
        ),
        vec![
            Column::non_null(ColumnData::Int((0..8).collect())),
            Column::non_null(ColumnData::Int(vec![25, 32, 41, 18, 55, 32, 47, 29])),
            city.finish(),
        ],
    ));
    // visits(person_id, score)
    c.register(Table::new(
        TableSchema::new(
            "visits",
            vec![
                ColumnDef::new("person_id", DataType::Int, false),
                ColumnDef::new("score", DataType::Float, false),
            ],
        ),
        vec![
            Column::non_null(ColumnData::Int(vec![0, 0, 1, 3, 3, 3, 6])),
            Column::non_null(ColumnData::Float(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0])),
        ],
    ));
    Engine::new(c)
}

fn count(engine: &Engine, sql: &str) -> i64 {
    engine
        .run_sql(sql)
        .unwrap_or_else(|e| panic!("{sql}: {e}"))
        .scalar_i64()
        .unwrap_or_else(|| panic!("{sql}: expected scalar"))
}

#[test]
fn comparison_operators() {
    let e = engine();
    assert_eq!(count(&e, "SELECT COUNT(*) FROM people WHERE people.age < 30"), 3);
    assert_eq!(count(&e, "SELECT COUNT(*) FROM people WHERE people.age <= 32"), 5);
    assert_eq!(count(&e, "SELECT COUNT(*) FROM people WHERE people.age = 32"), 2);
    assert_eq!(count(&e, "SELECT COUNT(*) FROM people WHERE people.age <> 32"), 6);
    assert_eq!(count(&e, "SELECT COUNT(*) FROM people WHERE people.age >= 47"), 2);
}

#[test]
fn null_semantics() {
    let e = engine();
    assert_eq!(count(&e, "SELECT COUNT(*) FROM people WHERE people.city IS NULL"), 1);
    assert_eq!(count(&e, "SELECT COUNT(*) FROM people WHERE people.city IS NOT NULL"), 7);
    // NULL city row must not pass an equality predicate...
    assert_eq!(count(&e, "SELECT COUNT(*) FROM people WHERE people.city = 'oslo'"), 3);
    // ...nor its negation (three-valued logic).
    assert_eq!(count(&e, "SELECT COUNT(*) FROM people WHERE NOT people.city = 'oslo'"), 4);
}

#[test]
fn between_in_like_or() {
    let e = engine();
    assert_eq!(count(&e, "SELECT COUNT(*) FROM people WHERE people.age BETWEEN 29 AND 41"), 4);
    assert_eq!(count(&e, "SELECT COUNT(*) FROM people WHERE people.age IN (18, 55, 99)"), 2);
    assert_eq!(count(&e, "SELECT COUNT(*) FROM people WHERE people.city LIKE 'o%'"), 3);
    assert_eq!(
        count(&e, "SELECT COUNT(*) FROM people WHERE people.age < 20 OR people.city = 'kyiv'"),
        2
    );
    // AND binds tighter than OR.
    assert_eq!(
        count(
            &e,
            "SELECT COUNT(*) FROM people \
             WHERE people.age > 100 AND people.city = 'lima' OR people.age = 18"
        ),
        1
    );
}

#[test]
fn joins_and_aggregates() {
    let e = engine();
    assert_eq!(count(&e, "SELECT COUNT(*) FROM people p, visits v WHERE p.id = v.person_id"), 7);
    assert_eq!(
        count(
            &e,
            "SELECT COUNT(*) FROM people p, visits v \
             WHERE p.id = v.person_id AND p.age < 30"
        ),
        5,
        "ids 0 (2 visits) and 3 (3 visits)"
    );
    let r = e
        .run_sql("SELECT SUM(v.score), AVG(v.score), MIN(v.score), MAX(v.score) FROM visits v")
        .unwrap();
    let vals: Vec<Value> = (0..4).map(|i| r.batch.entries()[i].1.value(0)).collect();
    assert_eq!(vals[0].as_f64(), Some(28.0));
    assert_eq!(vals[1].as_f64(), Some(4.0));
    assert_eq!(vals[2].as_f64(), Some(1.0));
    assert_eq!(vals[3].as_f64(), Some(7.0));
}

#[test]
fn group_by_with_nulls_and_strings() {
    let e = engine();
    let r = e
        .run_sql("SELECT people.city, COUNT(*) FROM people GROUP BY people.city")
        .unwrap();
    assert_eq!(r.batch.num_rows(), 4, "oslo, lima, kyiv, NULL");
    let mut by_city = std::collections::HashMap::new();
    for i in 0..r.batch.num_rows() {
        let city = match r.batch.entries()[0].1.value(i) {
            Value::Str(s) => s,
            Value::Null => "<null>".to_string(),
            other => panic!("unexpected group key {other:?}"),
        };
        by_city.insert(city, r.batch.entries()[1].1.value(i).as_i64().unwrap());
    }
    assert_eq!(by_city["oslo"], 3);
    assert_eq!(by_city["lima"], 2);
    assert_eq!(by_city["kyiv"], 2);
    assert_eq!(by_city["<null>"], 1);
}

#[test]
fn order_by_and_limit() {
    let e = engine();
    let r = e
        .run_sql(
            "SELECT people.id FROM people WHERE people.age > 30 ORDER BY people.id DESC LIMIT 3",
        )
        .unwrap();
    let ids: Vec<i64> = (0..r.batch.num_rows())
        .map(|i| r.batch.entries()[0].1.value(i).as_i64().unwrap())
        .collect();
    assert_eq!(ids, vec![6, 5, 4]);
}

#[test]
fn self_join_with_aliases() {
    let e = engine();
    // Pairs of distinct people with the same age (32 appears twice -> 2
    // ordered pairs, minus self pairs via id <> id).
    assert_eq!(
        count(
            &e,
            "SELECT COUNT(*) FROM people a, people b \
             WHERE a.age = b.age AND a.id <> b.id"
        ),
        2
    );
}

#[test]
fn cross_type_numeric_comparison() {
    let e = engine();
    // Float column vs integer literal.
    assert_eq!(count(&e, "SELECT COUNT(*) FROM visits WHERE visits.score > 4"), 3);
    assert_eq!(count(&e, "SELECT COUNT(*) FROM visits WHERE visits.score = 4"), 1);
}

#[test]
fn error_paths_are_reported_not_panics() {
    let e = engine();
    assert!(e.run_sql("SELECT COUNT(*) FROM ghosts").is_err());
    assert!(e
        .run_sql("SELECT COUNT(*) FROM people WHERE people.ghost = 1")
        .is_err());
    assert!(e.run_sql("SELECT COUNT(* FROM people").is_err());
    assert!(
        e.run_sql("SELECT COUNT(*) FROM people, visits WHERE people.age > 1")
            .is_err(),
        "cross products are rejected"
    );
}
