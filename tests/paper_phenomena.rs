//! Integration tests for the paper's headline phenomena — the qualitative
//! claims each figure/table rests on, checked at tiny scale:
//!
//! * Sec. III: memory affects plan cost non-monotonically, and the optimal
//!   plan can flip with memory;
//! * Table VII: a resource-aware model beats the same model without the
//!   resource pathway on resource-varying data;
//! * Table VI: the analytical GPSJ model trails the learned model;
//! * Table IX: learned inference is sub-millisecond per plan.

use baselines::gpsj::{GpsjModel, GpsjParams};
use raal::dataset::{collect, CollectionConfig};
use raal::train::training_transform;
use raal::{evaluate, train, train_test_split, CostModel, EvalSet, ModelConfig, TrainConfig};
use sparksim::plan::planner::PlannerOptions;
use sparksim::{ClusterConfig, Engine, ResourceConfig, SimulatorConfig};
use workloads::imdb::{generate, paper_section3_queries, ImdbConfig};

fn engine_and_graph(rows: usize, seed: u64) -> (Engine, workloads::FkGraph, f64) {
    let data = generate(&ImdbConfig { title_rows: rows, seed });
    let scale = data.simulated_scale();
    let graph = data.graph.clone();
    let engine = Engine::with_options(
        data.catalog,
        PlannerOptions::scaled_to(scale),
        ClusterConfig::default(),
        SimulatorConfig {
            data_scale: scale,
            noise_sigma: 0.0,
            ..SimulatorConfig::default()
        },
    );
    (engine, graph, scale)
}

#[test]
fn memory_effect_is_nonmonotonic_somewhere() {
    let data = generate(&ImdbConfig { title_rows: 600, seed: 41 });
    let scale = data.simulated_scale();
    let queries = paper_section3_queries(&data);
    let engine = Engine::with_options(
        data.catalog,
        PlannerOptions::scaled_to(scale),
        ClusterConfig::default(),
        SimulatorConfig {
            data_scale: scale,
            noise_sigma: 0.0,
            ..SimulatorConfig::default()
        },
    );
    let mut any_nonmonotone = false;
    for (_, sql) in &queries {
        let plans = engine.plan_candidates(sql).unwrap();
        for plan in &plans {
            let exec = engine.execute_plan(plan).unwrap();
            let times: Vec<f64> = (1..=8)
                .map(|m| {
                    let res = ResourceConfig {
                        executors: 2,
                        cores_per_executor: 2,
                        memory_per_executor_gb: m as f64,
                        network_throughput_mbps: 120.0,
                        disk_throughput_mbps: 200.0,
                    };
                    engine.simulator().simulate(plan, &exec.metrics, &res, 0)
                })
                .collect();
            let increases = times.windows(2).any(|w| w[1] > w[0] + 1e-9);
            let decreases = times.windows(2).any(|w| w[1] < w[0] - 1e-9);
            if increases && decreases {
                any_nonmonotone = true;
            }
        }
    }
    assert!(
        any_nonmonotone,
        "at least one plan must respond non-monotonically to memory (paper Sec. III)"
    );
}

#[test]
fn resource_aware_model_beats_resource_blind() {
    let (engine, graph, _) = engine_and_graph(500, 43);
    let cfg = CollectionConfig {
        num_queries: 30,
        resource_states_per_plan: 3,
        runs_per_observation: 1,
        threads: 1,
        ..CollectionConfig::default()
    };
    let collection = collect(&engine, &graph, &cfg);
    let encoder = collection.build_encoder(
        &encoding::W2vConfig { dim: 8, epochs: 1, ..Default::default() },
        encoding::EncoderConfig::default(),
    );
    let samples = collection.encode(&encoder, &engine);
    let (train_set, test_set) = train_test_split(samples, 0.8, 1);
    let tcfg = TrainConfig {
        epochs: 10,
        batch_size: 16,
        threads: 1,
        ..Default::default()
    };

    let small = |cfg: ModelConfig| ModelConfig { hidden: 16, latent_k: 8, head_hidden: 16, ..cfg };
    let mut aware = CostModel::new(small(ModelConfig::raal(encoder.node_dim())));
    train(&mut aware, &train_set, &tcfg);
    let mut blind =
        CostModel::new(small(ModelConfig::raal(encoder.node_dim()).without_resources()));
    train(&mut blind, &train_set, &tcfg);

    let aware_mse = evaluate(&aware, &test_set).mse_with(training_transform);
    let blind_mse = evaluate(&blind, &test_set).mse_with(training_transform);
    assert!(
        aware_mse < blind_mse,
        "resource-aware MSE {aware_mse} must beat resource-blind {blind_mse} (Table VII)"
    );
}

#[test]
fn learned_model_beats_gpsj() {
    let (engine, graph, scale) = engine_and_graph(500, 47);
    let cfg = CollectionConfig {
        num_queries: 30,
        resource_states_per_plan: 2,
        runs_per_observation: 1,
        threads: 1,
        ..CollectionConfig::default()
    };
    let collection = collect(&engine, &graph, &cfg);
    let encoder = collection.build_encoder(
        &encoding::W2vConfig { dim: 8, epochs: 1, ..Default::default() },
        encoding::EncoderConfig::default(),
    );
    let samples = collection.encode(&encoder, &engine);
    let (train_set, test_set) = train_test_split(samples, 0.8, 1);
    let mut model = CostModel::new(ModelConfig {
        hidden: 16,
        latent_k: 8,
        head_hidden: 16,
        ..ModelConfig::raal(encoder.node_dim())
    });
    train(
        &mut model,
        &train_set,
        &TrainConfig {
            epochs: 12,
            batch_size: 16,
            threads: 1,
            ..Default::default()
        },
    );
    let raal_mse = evaluate(&model, &test_set).mse_with(training_transform);

    let gpsj = GpsjModel::new(GpsjParams { data_scale: scale, ..GpsjParams::default() });
    let mut gpsj_eval = EvalSet::new();
    for run in &collection.plan_runs {
        for (res, seconds) in &run.observations {
            gpsj_eval.push(*seconds, gpsj.estimate_seconds(&run.plan, res));
        }
    }
    let gpsj_mse = gpsj_eval.mse_with(training_transform);
    assert!(raal_mse < gpsj_mse, "RAAL MSE {raal_mse} must beat GPSJ {gpsj_mse} (Table VI)");
}

#[test]
fn inference_is_fast() {
    let (engine, graph, _) = engine_and_graph(400, 53);
    let cfg = CollectionConfig {
        num_queries: 5,
        resource_states_per_plan: 1,
        runs_per_observation: 1,
        threads: 1,
        ..CollectionConfig::default()
    };
    let collection = collect(&engine, &graph, &cfg);
    let encoder = collection.build_encoder(
        &encoding::W2vConfig { dim: 8, epochs: 1, ..Default::default() },
        encoding::EncoderConfig::default(),
    );
    let model = CostModel::new(ModelConfig::raal(encoder.node_dim()));
    let encoded = encoder.encode(&collection.plan_runs[0].plan);
    let features = vec![0.5f32; 7];
    let t0_ns = telemetry::clock_ns();
    let n = 100;
    for _ in 0..n {
        std::hint::black_box(model.predict_seconds(&encoded, &features));
    }
    let per_plan_ms = (telemetry::clock_ns() - t0_ns) as f64 / 1e6 / n as f64;
    // Generous bound (debug builds are slow): well under Spark's per-query
    // planning budget either way.
    assert!(per_plan_ms < 50.0, "inference {per_plan_ms} ms/plan too slow");
}
