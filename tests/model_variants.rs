//! Structural tests for the model family: each paper variant differs from
//! RAAL in exactly the way its name claims.

use encoding::plan_encoder::{EncodedPlan, PLAN_STAT_FEATURES};
use raal::{CostModel, ModelConfig};

fn toy_plan(dim: usize) -> EncodedPlan {
    EncodedPlan {
        node_features: vec![vec![0.2; dim], vec![0.4; dim], vec![0.1; dim]],
        children: vec![vec![], vec![], vec![0, 1]],
        plan_stats: vec![0.5; PLAN_STAT_FEATURES],
    }
}

#[test]
fn variant_weight_counts_reflect_their_components() {
    let dim = 24;
    let raal = CostModel::new(ModelConfig::raal(dim));
    let na = CostModel::new(ModelConfig::na_lstm(dim));
    let blind = CostModel::new(ModelConfig::raal(dim).without_resources());

    // Dropping node attention removes exactly the two hidden x K
    // projections.
    let cfg = ModelConfig::raal(dim);
    assert_eq!(raal.num_weights() - na.num_weights(), 2 * cfg.hidden * cfg.latent_k);
    // Dropping the resource pathway removes the two resource projections
    // and shrinks the head input (hidden + resource_dim columns).
    assert!(blind.num_weights() < raal.num_weights());
}

#[test]
fn raac_uses_convolution_not_recurrence() {
    let dim = 16;
    let raac = CostModel::new(ModelConfig::raac(dim));
    let names: Vec<String> = raac
        .store()
        .ids()
        .map(|id| raac.store().name(id).to_string())
        .collect();
    assert!(names.iter().any(|n| n.contains("plan.cnn")));
    assert!(!names.iter().any(|n| n.contains("plan.lstm")));

    let raal = CostModel::new(ModelConfig::raal(dim));
    let names: Vec<String> = raal
        .store()
        .ids()
        .map(|id| raal.store().name(id).to_string())
        .collect();
    assert!(names.iter().any(|n| n.contains("plan.lstm")));
    assert!(!names.iter().any(|n| n.contains("plan.cnn")));
}

#[test]
fn ne_lstm_is_an_encoder_level_ablation() {
    // NE-LSTM differs in the *encoder*: same architecture, narrower input.
    let corpus = vec![vec!["filescan".to_string(), "title".to_string()]];
    let w2v = encoding::train_word2vec(
        &corpus,
        &encoding::W2vConfig { dim: 8, epochs: 1, ..Default::default() },
    );
    let with = encoding::PlanEncoder::new(
        w2v.clone(),
        encoding::EncoderConfig { max_nodes: 16, structure: true },
    );
    let without = encoding::PlanEncoder::new(
        w2v,
        encoding::EncoderConfig { max_nodes: 16, structure: false },
    );
    assert_eq!(with.node_dim() - without.node_dim(), 16);
}

#[test]
fn every_variant_predicts_on_the_same_plan() {
    let dim = 20;
    let plan = toy_plan(dim);
    let res = vec![0.4f32; 7];
    for cfg in [
        ModelConfig::raal(dim),
        ModelConfig::na_lstm(dim),
        ModelConfig::raac(dim),
        ModelConfig::raal(dim).without_resources(),
        ModelConfig::na_lstm(dim).without_resources(),
        ModelConfig::raac(dim).without_resources(),
    ] {
        let model = CostModel::new(cfg.clone());
        let pred = model.predict_seconds(&plan, &res);
        assert!(pred.is_finite() && pred >= 0.0, "variant {cfg:?} produced {pred}");
    }
}

#[test]
fn deterministic_construction_per_seed() {
    let dim = 12;
    let a = CostModel::new(ModelConfig::raal(dim));
    let b = CostModel::new(ModelConfig::raal(dim));
    let plan = toy_plan(dim);
    let res = vec![0.7f32; 7];
    assert_eq!(a.predict_seconds(&plan, &res), b.predict_seconds(&plan, &res));
    let c = CostModel::new(ModelConfig { seed: 999, ..ModelConfig::raal(dim) });
    assert_ne!(a.predict_seconds(&plan, &res), c.predict_seconds(&plan, &res));
}
