//! Static-analysis guarantees end to end: the symbolic shape checker
//! rejects mis-shaped models and tampered checkpoints with layer-level
//! diagnostics, the plan-DAG validator rejects corrupted plan graphs,
//! and — the property under test — every plan the real planner emits
//! over randomly generated workloads passes the DAG validator.

use analysis::dag::DagError;
use encoding::plan_encoder::{EncodedPlan, PLAN_STAT_FEATURES};
use encoding::{EncoderConfig, PlanEncoder, W2vConfig};
use proptest::prelude::*;
use raal::persist::ModelBundle;
use raal::{CostModel, ModelConfig};
use sparksim::plan::planner::PlannerOptions;
use sparksim::{ClusterConfig, Engine, SimulatorConfig};
use workloads::imdb::{generate, ImdbConfig};

fn tiny_encoder() -> PlanEncoder {
    let corpus = vec![vec!["filescan".to_string(), "title".to_string()]];
    PlanEncoder::new(
        encoding::word2vec::train(&corpus, &W2vConfig { dim: 4, epochs: 1, ..Default::default() }),
        EncoderConfig { max_nodes: 8, structure: true },
    )
}

fn tiny_model(node_dim: usize) -> CostModel {
    CostModel::new(ModelConfig {
        hidden: 8,
        latent_k: 4,
        head_hidden: 8,
        ..ModelConfig::raal(node_dim)
    })
}

/// Overwrites the named parameter with a zero tensor of the given shape.
fn tamper(model: &mut CostModel, name: &str, rows: usize, cols: usize) {
    let id = model
        .store()
        .ids()
        .find(|&id| model.store().name(id) == name)
        .unwrap_or_else(|| panic!("no parameter named {name}"));
    *model.store_mut().value_mut(id) = nn::Tensor::zeros(rows, cols);
}

#[test]
fn freshly_built_model_passes_the_shape_check() {
    let model = tiny_model(tiny_encoder().node_dim());
    let report = model.validate_shapes().expect("valid model must pass");
    assert!(!report.stages.is_empty());
}

#[test]
fn mis_shaped_attention_key_is_rejected_naming_the_layer() {
    let mut model = tiny_model(tiny_encoder().node_dim());
    // wk must be hidden x latent_k = 8 x 4; make it 8 x 5 so the
    // LSTM-hidden / attention-key contraction no longer lines up.
    tamper(&mut model, "attn.node.wk", 8, 5);
    let err = model.validate_shapes().expect_err("mismatch must be caught");
    let msg = err.to_string();
    assert!(msg.contains("attn.node"), "error must name the layer: {msg}");
}

#[test]
fn mis_shaped_resource_projection_is_rejected() {
    let mut model = tiny_model(tiny_encoder().node_dim());
    // wr must be resource_dim x latent_k = 7 x 4.
    tamper(&mut model, "attn.res.wr", 3, 4);
    let err = model.validate_shapes().expect_err("mismatch must be caught");
    assert!(err.to_string().contains("attn.res"), "{err}");
}

#[test]
fn mis_shaped_head_is_rejected() {
    let mut model = tiny_model(tiny_encoder().node_dim());
    // head.1 expects hidden + (hidden + resource_dim) + stats input.
    tamper(&mut model, "head.1.w", 5, 8);
    let err = model.validate_shapes().expect_err("mismatch must be caught");
    assert!(err.to_string().contains("head.1"), "{err}");
}

#[test]
fn tampered_checkpoint_fails_to_load_with_a_shape_diagnostic() {
    let encoder = tiny_encoder();
    let mut model = tiny_model(encoder.node_dim());
    tamper(&mut model, "attn.node.wq", 8, 9);
    let dir = std::env::temp_dir().join("raal_static_analysis_test");
    let path = dir.join("tampered.json");
    ModelBundle::new(model, &encoder).save(&path).unwrap();
    let err = match ModelBundle::load(&path) {
        Ok(_) => panic!("tampered checkpoint must not load"),
        Err(e) => e,
    };
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    let msg = err.to_string();
    assert!(msg.contains("shape check") && msg.contains("attn.node"), "{msg}");
}

#[test]
fn checkpoint_with_mismatched_encoder_width_fails_to_load() {
    let encoder = tiny_encoder();
    // Model trained against a different (wider) node encoding.
    let model = tiny_model(encoder.node_dim() + 4);
    let dir = std::env::temp_dir().join("raal_static_analysis_test");
    let path = dir.join("encoder_drift.json");
    ModelBundle::new(model, &encoder).save(&path).unwrap();
    let err = match ModelBundle::load(&path) {
        Ok(_) => panic!("encoder drift must not load"),
        Err(e) => e,
    };
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("node features"), "{err}");
}

fn plan_with_children(children: Vec<Vec<usize>>) -> EncodedPlan {
    let n = children.len();
    EncodedPlan {
        node_features: vec![vec![0.1; 4]; n],
        children,
        plan_stats: vec![0.0; PLAN_STAT_FEATURES],
    }
}

#[test]
fn corrupted_plan_dags_are_rejected() {
    // Forward reference (child does not precede its parent).
    let err = plan_with_children(vec![vec![1], vec![]]).validate().unwrap_err();
    assert!(matches!(err, DagError::NotTopological { node: 0, child: 1 }), "{err}");

    // Child index out of range.
    let err = plan_with_children(vec![vec![], vec![7]]).validate().unwrap_err();
    assert!(matches!(err, DagError::ChildOutOfRange { node: 1, child: 7, .. }), "{err}");

    // Two nodes claiming the same child.
    let err = plan_with_children(vec![vec![], vec![0], vec![0]])
        .validate()
        .unwrap_err();
    assert!(matches!(err, DagError::MultipleParents { node: 0, .. }), "{err}");

    // Two parentless roots.
    let err = plan_with_children(vec![vec![], vec![], vec![0, 1], vec![]])
        .validate()
        .unwrap_err();
    assert!(matches!(err, DagError::MultipleRoots { .. }), "{err}");

    // Root not in final execution position.
    let err = plan_with_children(vec![vec![], vec![], vec![1], vec![0, 2]]).validate();
    assert!(err.is_ok(), "binary join tree is valid");
    let err = plan_with_children(vec![vec![], vec![0]]).validate();
    assert!(err.is_ok(), "linear chain is valid");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Every physical plan the planner produces for a randomly generated
    /// workload encodes to a graph that satisfies all DAG invariants,
    /// including the signed-adjacency cross-check on the structure rows.
    #[test]
    fn planner_output_always_passes_the_dag_validator(seed in 0u64..1000, max_joins in 1usize..4) {
        let data = generate(&ImdbConfig { title_rows: 200, seed });
        let scale = data.simulated_scale();
        let engine = Engine::with_options(
            data.catalog,
            PlannerOptions::scaled_to(scale),
            ClusterConfig::default(),
            SimulatorConfig { data_scale: scale, ..SimulatorConfig::default() },
        );
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let queries = workloads::querygen::generate_queries(
            &data.graph,
            &workloads::querygen::QueryGenConfig { max_joins, ..Default::default() },
            4,
            &mut rng,
        );
        prop_assert!(!queries.is_empty(), "query generator produced nothing");
        let encoder = tiny_encoder();
        let mut plans_checked = 0usize;
        for sql in &queries {
            let plans = engine.plan_candidates(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
            plans_checked += plans.len();
            for plan in &plans {
                // encode() already panics on an invalid DAG; validate both
                // layers explicitly so a future regression fails here with
                // the DagError rather than a panic message.
                let encoded = encoder.encode(plan);
                prop_assert!(encoded.validate().is_ok(), "{sql}: {:?}", encoded.validate());
                prop_assert!(encoder.validate(&encoded).is_ok(), "{sql}: {:?}", encoder.validate(&encoded));
            }
        }
        prop_assert!(plans_checked > 0, "no candidate plans were validated");
    }
}
