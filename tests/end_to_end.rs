//! End-to-end integration: the full paper pipeline across all crates —
//! data generation → planning → execution → simulation → collection →
//! encoding → training → prediction → plan selection — plus determinism.

use raal::dataset::{collect, CollectionConfig};
use raal::{CostModel, ModelConfig, TrainConfig};
use sparksim::plan::planner::PlannerOptions;
use sparksim::{ClusterConfig, Engine, ResourceConfig, SimulatorConfig};
use workloads::imdb::{generate, ImdbConfig};

fn small_engine(seed: u64) -> (Engine, workloads::FkGraph) {
    let data = generate(&ImdbConfig { title_rows: 400, seed });
    let scale = data.simulated_scale();
    let graph = data.graph.clone();
    let engine = Engine::with_options(
        data.catalog,
        PlannerOptions::scaled_to(scale),
        ClusterConfig::default(),
        SimulatorConfig { data_scale: scale, ..SimulatorConfig::default() },
    );
    (engine, graph)
}

#[test]
fn full_pipeline_trains_and_predicts() {
    let (engine, graph) = small_engine(17);
    let cfg = CollectionConfig {
        num_queries: 12,
        resource_states_per_plan: 2,
        runs_per_observation: 1,
        threads: 1,
        ..CollectionConfig::default()
    };
    let collection = collect(&engine, &graph, &cfg);
    assert!(collection.num_records() >= 20, "collection too small");

    let encoder = collection.build_encoder(
        &encoding::W2vConfig { dim: 8, epochs: 1, ..Default::default() },
        encoding::EncoderConfig::default(),
    );
    let samples = collection.encode(&encoder, &engine);
    let mut model = CostModel::new(ModelConfig {
        hidden: 12,
        latent_k: 8,
        head_hidden: 12,
        ..ModelConfig::raal(encoder.node_dim())
    });
    let history = raal::train(
        &mut model,
        &samples,
        &TrainConfig {
            epochs: 3,
            batch_size: 16,
            threads: 1,
            ..Default::default()
        },
    );
    assert!(history.final_loss().is_finite());

    // Predictions are finite, positive, and resource-sensitive.
    let cluster = engine.simulator().cluster();
    let lo = ResourceConfig {
        executors: 1,
        cores_per_executor: 1,
        memory_per_executor_gb: 1.0,
        network_throughput_mbps: 120.0,
        disk_throughput_mbps: 200.0,
    };
    let hi = ResourceConfig {
        executors: 8,
        cores_per_executor: 2,
        memory_per_executor_gb: 4.0,
        network_throughput_mbps: 120.0,
        disk_throughput_mbps: 200.0,
    };
    let encoded = encoder.encode(&collection.plan_runs[0].plan);
    let p_lo = model.predict_seconds(&encoded, &lo.feature_vector(cluster));
    let p_hi = model.predict_seconds(&encoded, &hi.feature_vector(cluster));
    assert!(p_lo.is_finite() && p_lo >= 0.0);
    assert!(p_hi.is_finite() && p_hi >= 0.0);
    assert_ne!(p_lo, p_hi, "a resource-aware model must react to resources");
}

#[test]
fn candidate_plans_agree_on_results_across_workload() {
    let (engine, graph) = small_engine(23);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
    let queries = workloads::querygen::generate_queries(
        &graph,
        &workloads::querygen::QueryGenConfig { max_joins: 2, ..Default::default() },
        15,
        &mut rng,
    );
    for sql in &queries {
        let plans = engine.plan_candidates(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        let first = engine
            .execute_plan(&plans[0])
            .unwrap_or_else(|e| panic!("{sql}: {e}"));
        // COUNT(*) is always the query's last output column.
        let reference_rows = first.batch.num_rows();
        for p in &plans[1..] {
            let r = engine.execute_plan(p).unwrap_or_else(|e| panic!("{sql}: {e}"));
            assert_eq!(
                r.batch.num_rows(),
                reference_rows,
                "{sql}\nplans disagree:\n{}",
                p.explain()
            );
        }
    }
}

#[test]
fn simulation_depends_on_resources_not_execution_order() {
    let (engine, _) = small_engine(29);
    let sql = "SELECT COUNT(*) FROM title t, movie_companies mc WHERE t.id = mc.movie_id";
    let plans = engine.plan_candidates(sql).unwrap();
    let result = engine.execute_plan(&plans[0]).unwrap();
    let mk = |mem: f64| ResourceConfig {
        executors: 2,
        cores_per_executor: 2,
        memory_per_executor_gb: mem,
        network_throughput_mbps: 120.0,
        disk_throughput_mbps: 200.0,
    };
    let a1 = engine.resimulate(&plans[0], &result, &mk(2.0), 1).seconds;
    let a2 = engine.resimulate(&plans[0], &result, &mk(2.0), 1).seconds;
    assert_eq!(a1, a2, "same seed, same resources -> identical time");
    let b = engine.resimulate(&plans[0], &result, &mk(8.0), 1).seconds;
    assert_ne!(a1, b, "different memory must change the simulated time");
}

#[test]
fn whole_pipeline_is_deterministic_under_seeds() {
    let run = || {
        let (engine, graph) = small_engine(31);
        let cfg = CollectionConfig {
            num_queries: 6,
            resource_states_per_plan: 2,
            runs_per_observation: 1,
            threads: 1,
            ..CollectionConfig::default()
        };
        let collection = collect(&engine, &graph, &cfg);
        let encoder = collection.build_encoder(
            &encoding::W2vConfig { dim: 8, epochs: 1, ..Default::default() },
            encoding::EncoderConfig::default(),
        );
        let samples = collection.encode(&encoder, &engine);
        let mut model = CostModel::new(ModelConfig {
            hidden: 8,
            latent_k: 4,
            head_hidden: 8,
            ..ModelConfig::raal(encoder.node_dim())
        });
        let h = raal::train(
            &mut model,
            &samples,
            &TrainConfig {
                epochs: 2,
                batch_size: 16,
                threads: 1,
                ..Default::default()
            },
        );
        (samples.len(), h.final_loss())
    };
    let (n1, l1) = run();
    let (n2, l2) = run();
    assert_eq!(n1, n2);
    assert_eq!(l1, l2);
}
