//! Integration tests for the extension features: dynamic resource
//! allocation, JOB template workloads and the micro-model baseline.

use baselines::micro::MicroModel;
use raal::dataset::{collect_queries, CollectionConfig};
use sparksim::plan::planner::PlannerOptions;
use sparksim::{AllocationMode, ClusterConfig, Engine, ResourceConfig, SimulatorConfig};
use workloads::imdb::{generate, ImdbConfig};
use workloads::job_templates::{generate_job_workload, JobScales, TEMPLATES};

fn engine() -> (Engine, JobScales) {
    let data = generate(&ImdbConfig { title_rows: 400, seed: 61 });
    let scale = data.simulated_scale();
    let scales = JobScales::from_dataset(&data);
    let engine = Engine::with_options(
        data.catalog,
        PlannerOptions::scaled_to(scale),
        ClusterConfig::default(),
        SimulatorConfig {
            data_scale: scale,
            noise_sigma: 0.0,
            ..SimulatorConfig::default()
        },
    );
    (engine, scales)
}

#[test]
fn dynamic_allocation_costs_at_least_static() {
    let (engine, scales) = engine();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
    let workload = generate_job_workload(&scales, 1, &mut rng);
    let res = ResourceConfig {
        executors: 4,
        cores_per_executor: 2,
        memory_per_executor_gb: 4.0,
        network_throughput_mbps: 120.0,
        disk_throughput_mbps: 200.0,
    };
    let mut strictly_greater = 0;
    for (_, sql) in workload.iter().take(6) {
        let plans = engine.plan_candidates(sql).unwrap();
        let exec = engine.execute_plan(&plans[0]).unwrap();
        let stat = engine
            .simulator()
            .simulate_report_with_mode(&plans[0], &exec.metrics, &res, 0, AllocationMode::Static)
            .seconds;
        let dynamic = engine
            .simulator()
            .simulate_report_with_mode(&plans[0], &exec.metrics, &res, 0, AllocationMode::Dynamic)
            .seconds;
        assert!(dynamic + 1e-9 >= stat, "{sql}: dynamic {dynamic} < static {stat}");
        if dynamic > stat {
            strictly_greater += 1;
        }
    }
    assert!(strictly_greater > 0, "some queries must pay executor spin-up");
}

#[test]
fn job_workload_feeds_the_collection_pipeline() {
    let (engine, scales) = engine();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
    let queries: Vec<String> = generate_job_workload(&scales, 1, &mut rng)
        .into_iter()
        .map(|(_, q)| q)
        .collect();
    assert_eq!(queries.len(), TEMPLATES.len());
    let graph_cfg = CollectionConfig {
        resource_states_per_plan: 1,
        runs_per_observation: 1,
        threads: 1,
        ..CollectionConfig::default()
    };
    let collection = collect_queries(&engine, &queries, &graph_cfg);
    assert_eq!(collection.skipped_queries, 0, "JOB templates must all run");
    assert!(collection.num_records() >= queries.len());
}

#[test]
fn micro_model_beats_gpsj_but_not_by_structure() {
    use baselines::gpsj::{GpsjModel, GpsjParams};
    use raal::train::training_transform;
    use raal::EvalSet;

    let (engine, scales) = engine();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
    let queries: Vec<String> = generate_job_workload(&scales, 3, &mut rng)
        .into_iter()
        .map(|(_, q)| q)
        .collect();
    let cfg = CollectionConfig {
        resource_states_per_plan: 2,
        runs_per_observation: 1,
        threads: 1,
        ..CollectionConfig::default()
    };
    let collection = collect_queries(&engine, &queries, &cfg);
    let cluster = engine.simulator().cluster();
    let scale = engine.simulator().config().data_scale;

    // Fit micro on the first 2/3 of queries, evaluate both models on the rest.
    let cut = queries.len() * 2 / 3;
    let micro = MicroModel::fit(
        collection
            .plan_runs
            .iter()
            .filter(|r| r.query_idx < cut)
            .flat_map(|r| r.observations.iter().map(move |(res, s)| (&r.plan, res, *s))),
        cluster,
        baselines::micro::DEFAULT_RIDGE,
    );
    let gpsj = GpsjModel::new(GpsjParams { data_scale: scale, ..GpsjParams::default() });
    let mut micro_eval = EvalSet::new();
    let mut gpsj_eval = EvalSet::new();
    for run in collection.plan_runs.iter().filter(|r| r.query_idx >= cut) {
        for (res, s) in &run.observations {
            micro_eval.push(*s, micro.predict_seconds(&run.plan, res, cluster));
            gpsj_eval.push(*s, gpsj.estimate_seconds(&run.plan, res));
        }
    }
    let micro_mse = micro_eval.mse_with(training_transform);
    let gpsj_mse = gpsj_eval.mse_with(training_transform);
    assert!(
        micro_mse < gpsj_mse,
        "learned calibration must beat hand-tuned formulas: {micro_mse} vs {gpsj_mse}"
    );
}
