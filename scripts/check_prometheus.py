#!/usr/bin/env python3
"""Validates a Prometheus text-exposition snapshot (format 0.0.4), as
written by `RAAL_METRICS_OUT` or the `raal-metrics` bin.

Usage: check_prometheus.py <metrics.prom> [--require NAME ...]

Checks, line by line:
  * every sample line parses as `name{labels} value` with a valid metric
    name and a float value (NaN/+Inf/-Inf allowed);
  * every metric carries a preceding `# TYPE` of counter/gauge/summary,
    and samples agree with it (counters end in `_total` and never
    regress below zero, summaries expose `quantile` labels plus matching
    `_sum`/`_count` series);
  * `# TYPE` is declared at most once per metric.

`--require` names (raw RAAL names, e.g. `monitor.drift.agg_join`) must
be present as a sample with a non-NaN value — CI uses this to assert the
fault-sweep drift gauge actually flipped.
"""

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)(?:\s+\d+)?$"
)
LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def fail(msg):
    print(f"check_prometheus: {msg}", file=sys.stderr)
    sys.exit(1)


def parse_value(text):
    if text in ("NaN", "+Inf", "-Inf", "Inf"):
        return float(text.replace("Inf", "inf"))
    try:
        return float(text)
    except ValueError:
        return None


def raal_name(name):
    """Maps a raw RAAL metric name to its Prometheus rendering."""
    return "raal_" + re.sub(r"[^a-zA-Z0-9]", "_", name)


def main():
    args = sys.argv[1:]
    if not args:
        fail("usage: check_prometheus.py <metrics.prom> [--require NAME ...]")
    path, required = args[0], []
    rest = args[1:]
    while rest:
        if rest[0] != "--require" or len(rest) < 2:
            fail(f"unexpected argument {rest[0]!r}")
        required.append(rest[1])
        rest = rest[2:]

    types = {}  # metric family -> declared type
    samples = {}  # sample name (with suffix) -> [(labels, value)]
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line.strip():
                continue
            if line.startswith("#"):
                parts = line.split(None, 3)
                if len(parts) >= 2 and parts[1] in ("TYPE", "HELP"):
                    if len(parts) < 3 or not NAME_RE.match(parts[2]):
                        fail(f"line {lineno}: malformed {parts[1]} comment: {line}")
                    if parts[1] == "TYPE":
                        name, ty = parts[2], parts[3] if len(parts) > 3 else ""
                        if ty not in ("counter", "gauge", "summary", "histogram", "untyped"):
                            fail(f"line {lineno}: unknown TYPE {ty!r} for {name}")
                        if name in types:
                            fail(f"line {lineno}: duplicate TYPE for {name}")
                        if name in samples:
                            fail(f"line {lineno}: TYPE for {name} after its samples")
                        types[name] = ty
                continue
            m = SAMPLE_RE.match(line)
            if not m:
                fail(f"line {lineno}: unparseable sample: {line}")
            value = parse_value(m.group("value"))
            if value is None:
                fail(f"line {lineno}: bad value {m.group('value')!r}")
            labels = m.group("labels")
            if labels:
                for pair in labels.split(","):
                    if not LABEL_RE.match(pair.strip()):
                        fail(f"line {lineno}: bad label {pair!r}")
            samples.setdefault(m.group("name"), []).append((labels or "", value))

    if not samples:
        fail(f"{path}: no samples")

    # Every sample must belong to a declared family: exact for counters
    # and gauges, base-name for summary quantile/_sum/_count series.
    for name, entries in samples.items():
        family = None
        for candidate in (name, name.removesuffix("_sum"), name.removesuffix("_count")):
            if candidate in types:
                family = candidate
                break
        if family is None:
            fail(f"{name}: sample without a TYPE declaration")
        ty = types[family]
        if ty == "counter":
            if not name.endswith("_total"):
                fail(f"{name}: counter samples must end in _total")
            for labels, value in entries:
                if value < 0:
                    fail(f"{name}: negative counter value {value}")
        if ty == "summary" and family == name:
            for labels, _ in entries:
                if "quantile=" not in labels:
                    fail(f"{name}: summary series without a quantile label")

    # Each summary family must expose _sum and _count.
    for family, ty in types.items():
        if ty == "summary":
            for suffix in ("_sum", "_count"):
                if family + suffix not in samples:
                    fail(f"{family}: summary missing {family}{suffix}")

    for raw in required:
        name = raal_name(raw)
        found = samples.get(name) or samples.get(name + "_total")
        if not found:
            fail(f"required metric {raw} ({name}) not present")
        if all(v != v for _, v in found):  # all NaN
            fail(f"required metric {raw} is NaN")

    total = sum(len(v) for v in samples.values())
    print(f"ok: {total} samples across {len(types)} metric families in {path}")


if __name__ == "__main__":
    main()
