#!/usr/bin/env python3
"""Refreshes the `<!-- MEASURED -->` section of EXPERIMENTS.md from the
result TSVs written by ./run_all_experiments.sh."""

import os
import sys

RESULTS = "results"
DOC = "EXPERIMENTS.md"
MARK = "<!-- MEASURED -->"

TABLES = [
    ("Fig. 1 — plan selection (per query)", "fig1_plan_selection.tsv", 22),
    ("Fig. 2 — memory sweep", "fig2_memory_impact.tsv", 34),
    ("Table IV — module ablation", "tab4_ablation.tsv", 6),
    ("Fig. 6 — training loss per epoch", "fig6_training_loss.tsv", 40),
    ("Table V — RAAL vs TLSTM (fixed resources)", "tab5_vs_tlstm.tsv", 4),
    ("Table VI — RAAL vs GPSJ", "tab6_vs_gpsj.tsv", 4),
    ("Table VII — ± resource-aware attention", "tab7_resource_attention.tsv", 10),
    ("Fig. 8 — adaptability by memory", "fig8_adaptability.tsv", 10),
    ("Table VIII — training size", "tab8_training_size.tsv", 7),
    ("Table IX — inference latency", "tab9_inference_latency.tsv", 5),
    (
        "Table IX addendum — inference engine (tape vs fast path vs PlanContext)",
        "tab9_engine_breakdown.tsv",
        8,
    ),
    ("Extension — cold start", "ext_coldstart.tsv", 5),
    ("Extension — simulator ablation", "ext_sim_ablation.tsv", 7),
]


def tsv_to_md(path: str, max_rows: int) -> str:
    with open(path) as f:
        lines = [line.rstrip("\n") for line in f if line.strip()]
    if not lines:
        return "_empty_\n"
    header = lines[0].split("\t")
    out = ["| " + " | ".join(header) + " |", "|" + "---|" * len(header)]
    body = lines[1:]
    clipped = len(body) > max_rows
    for line in body[:max_rows]:
        out.append("| " + " | ".join(line.split("\t")) + " |")
    if clipped:
        out.append(f"| … | ({len(body) - max_rows} more rows in the TSV) |" )
    return "\n".join(out) + "\n"


def main() -> int:
    with open(DOC) as f:
        doc = f.read()
    if MARK not in doc:
        print(f"marker {MARK} missing from {DOC}", file=sys.stderr)
        return 1
    head = doc.split(MARK)[0] + MARK + "\n\n"
    sections = []
    for title, name, max_rows in TABLES:
        path = os.path.join(RESULTS, name)
        if not os.path.exists(path):
            sections.append(f"### {title}\n\n_not yet generated ({name})_\n")
            continue
        sections.append(f"### {title}\n\n" + tsv_to_md(path, max_rows))
    with open(DOC, "w") as f:
        f.write(head + "\n".join(sections))
    print(f"updated {DOC} from {RESULTS}/")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
