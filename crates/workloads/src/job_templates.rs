//! JOB-style template queries over the synthetic IMDB schema.
//!
//! The paper's IMDB workload is "the Join Order Benchmark extension":
//! hand-written multi-join query *families* instantiated with different
//! constants. These templates mirror the JOB families that fit our schema
//! subset — star joins around `title` with selective dimension predicates
//! — and complement the FK-random-walk generator with realistic,
//! named query shapes.

use rand::Rng;

/// One instantiable query family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobTemplate {
    /// JOB-flavoured family name (e.g. "1a-like").
    pub name: &'static str,
    /// Number of joins.
    pub joins: usize,
}

/// All template families, in increasing join count.
pub const TEMPLATES: [JobTemplate; 12] = [
    JobTemplate { name: "0a-scan", joins: 0 },
    JobTemplate { name: "0b-scan-str", joins: 0 },
    JobTemplate { name: "1a-kind", joins: 1 },
    JobTemplate { name: "1b-company", joins: 1 },
    JobTemplate { name: "2a-keyword", joins: 1 },
    JobTemplate { name: "3a-info", joins: 2 },
    JobTemplate { name: "3b-cast", joins: 2 },
    JobTemplate { name: "4a-company-keyword", joins: 2 },
    JobTemplate { name: "5a-rating", joins: 3 },
    JobTemplate { name: "5b-person", joins: 3 },
    JobTemplate { name: "6a-wide", joins: 4 },
    JobTemplate { name: "7a-widest", joins: 5 },
];

/// Sizing knobs the instantiator samples constants from (must match the
/// generated dataset — take them from [`crate::imdb::ImdbDataset`] stats).
#[derive(Debug, Clone)]
pub struct JobScales {
    /// `title` row count.
    pub titles: i64,
    /// `keyword` row count.
    pub keywords: i64,
    /// `company_name` row count.
    pub companies: i64,
    /// `name` row count.
    pub names: i64,
}

impl JobScales {
    /// Reads the scales off a generated dataset.
    pub fn from_dataset(data: &crate::ImdbDataset) -> Self {
        let rows = |t: &str| data.catalog.stats(t).map(|s| s.row_count as i64).unwrap_or(1);
        Self {
            titles: rows("title"),
            keywords: rows("keyword"),
            companies: rows("company_name"),
            names: rows("name"),
        }
    }
}

/// Instantiates one template with random constants.
pub fn instantiate(t: &JobTemplate, scales: &JobScales, rng: &mut impl Rng) -> String {
    let year = 1950 + rng.gen_range(0..60);
    let kind = rng.gen_range(2..=7);
    let kw = rng.gen_range(1..scales.keywords.max(2));
    let comp = rng.gen_range(1..scales.companies.max(2));
    let person = rng.gen_range(1..scales.names.max(2));
    let info_t = 99 + rng.gen_range(0..14);
    match t.name {
        "0a-scan" => format!(
            "SELECT COUNT(*) FROM title t WHERE t.production_year > {year} AND t.kind_id < {kind}"
        ),
        "0b-scan-str" => format!(
            "SELECT COUNT(*) FROM title t \
             WHERE t.phonetic_code IS NOT NULL AND t.production_year BETWEEN {year} AND {}",
            year + 25
        ),
        "1a-kind" => format!(
            "SELECT COUNT(*) FROM title t, kind_type kt \
             WHERE t.kind_id = kt.id AND t.production_year > {year}"
        ),
        "1b-company" => format!(
            "SELECT COUNT(*) FROM title t, movie_companies mc \
             WHERE t.id = mc.movie_id AND mc.company_id < {comp} AND mc.company_type_id = 1"
        ),
        "2a-keyword" => format!(
            "SELECT COUNT(*) FROM title t, movie_keyword mk \
             WHERE t.id = mk.movie_id AND mk.keyword_id < {kw} AND t.kind_id < {kind}"
        ),
        "3a-info" => format!(
            "SELECT COUNT(*) FROM title t, movie_info_idx mi_idx, info_type it \
             WHERE t.id = mi_idx.movie_id AND mi_idx.info_type_id = it.id \
             AND mi_idx.info_type_id < {info_t} AND t.production_year > {year}"
        ),
        "3b-cast" => format!(
            "SELECT COUNT(*) FROM title t, cast_info ci, name n \
             WHERE t.id = ci.movie_id AND ci.person_id = n.id \
             AND ci.role_id BETWEEN 1 AND 4 AND n.id < {person}"
        ),
        "4a-company-keyword" => format!(
            "SELECT COUNT(*) FROM title t, movie_companies mc, movie_keyword mk \
             WHERE t.id = mc.movie_id AND t.id = mk.movie_id \
             AND mc.company_id < {comp} AND mk.keyword_id < {kw}"
        ),
        "5a-rating" => format!(
            "SELECT COUNT(*) FROM title t, movie_info_idx mi_idx, movie_keyword mk, keyword k \
             WHERE t.id = mi_idx.movie_id AND t.id = mk.movie_id AND mk.keyword_id = k.id \
             AND mi_idx.info_type_id < {info_t} AND k.id < {kw} AND t.production_year > {year}"
        ),
        "5b-person" => format!(
            "SELECT COUNT(*) FROM title t, cast_info ci, name n, movie_companies mc \
             WHERE t.id = ci.movie_id AND ci.person_id = n.id AND t.id = mc.movie_id \
             AND n.gender = 'f' AND mc.company_id < {comp} AND ci.role_id < 6"
        ),
        "6a-wide" => format!(
            "SELECT COUNT(*) FROM title t, movie_companies mc, movie_keyword mk, \
             movie_info_idx mi_idx, kind_type kt \
             WHERE t.id = mc.movie_id AND t.id = mk.movie_id AND t.id = mi_idx.movie_id \
             AND t.kind_id = kt.id AND mc.company_id < {comp} AND mk.keyword_id < {kw} \
             AND mi_idx.info_type_id < {info_t}"
        ),
        "7a-widest" => format!(
            "SELECT COUNT(*) FROM title t, movie_companies mc, movie_keyword mk, \
             movie_info_idx mi_idx, cast_info ci, kind_type kt \
             WHERE t.id = mc.movie_id AND t.id = mk.movie_id AND t.id = mi_idx.movie_id \
             AND t.id = ci.movie_id AND t.kind_id = kt.id \
             AND mc.company_id < {comp} AND mk.keyword_id < {kw} \
             AND mi_idx.info_type_id < {info_t} AND ci.role_id < 4 \
             AND t.production_year > {year}"
        ),
        other => unreachable!("unknown template {other}"),
    }
}

/// Instantiates `per_template` queries of every family.
pub fn generate_job_workload(
    scales: &JobScales,
    per_template: usize,
    rng: &mut impl Rng,
) -> Vec<(JobTemplate, String)> {
    let mut out = Vec::with_capacity(TEMPLATES.len() * per_template);
    for t in TEMPLATES {
        for _ in 0..per_template {
            out.push((t, instantiate(&t, scales, rng)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imdb::{generate, ImdbConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sparksim::engine::Engine;

    #[test]
    fn all_templates_plan_and_run() {
        let data = generate(&ImdbConfig { title_rows: 500, seed: 9 });
        let scales = JobScales::from_dataset(&data);
        let mut rng = StdRng::seed_from_u64(4);
        let workload = generate_job_workload(&scales, 2, &mut rng);
        assert_eq!(workload.len(), TEMPLATES.len() * 2);
        let engine = Engine::new(data.catalog);
        for (t, sql) in &workload {
            let plans = engine
                .plan_candidates(sql)
                .unwrap_or_else(|e| panic!("{}: {sql}: {e}", t.name));
            assert!(!plans.is_empty(), "{}", t.name);
            // Join count must match the family's declared joins.
            assert_eq!(
                plans[0].join_nodes().len(),
                t.joins,
                "{}: {sql}\n{}",
                t.name,
                plans[0].explain()
            );
            engine
                .execute_plan(&plans[0])
                .unwrap_or_else(|e| panic!("{}: {sql}: {e}", t.name));
        }
    }

    #[test]
    fn instantiation_varies_constants() {
        let data = generate(&ImdbConfig { title_rows: 300, seed: 9 });
        let scales = JobScales::from_dataset(&data);
        let mut rng = StdRng::seed_from_u64(5);
        let a = instantiate(&TEMPLATES[2], &scales, &mut rng);
        let b = instantiate(&TEMPLATES[2], &scales, &mut rng);
        assert_ne!(a, b, "constants should vary between instantiations");
    }

    #[test]
    fn deterministic_under_seed() {
        let data = generate(&ImdbConfig { title_rows: 300, seed: 9 });
        let scales = JobScales::from_dataset(&data);
        let a = generate_job_workload(&scales, 1, &mut StdRng::seed_from_u64(6));
        let b = generate_job_workload(&scales, 1, &mut StdRng::seed_from_u64(6));
        assert_eq!(a.len(), b.len());
        for ((_, qa), (_, qb)) in a.iter().zip(&b) {
            assert_eq!(qa, qb);
        }
    }
}
