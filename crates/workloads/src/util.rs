//! Sampling utilities for the synthetic data generators: Zipf-distributed
//! categorical values (IMDB-style skew) and convenience builders.

use rand::Rng;

/// A Zipf(α) sampler over `{0, 1, …, n−1}` using a precomputed cumulative
/// table and binary search — exact, and fast enough for generator use.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with exponent `alpha` (`alpha = 0`
    /// is uniform; JOB-like skew sits around 1.0–1.5).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf over an empty domain");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    /// Domain size.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Samples a rank in `0..n` (0 is the most frequent).
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).expect("finite cdf")) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Samples `true` with probability `p`.
pub fn coin(rng: &mut impl Rng, p: f64) -> bool {
    rng.gen::<f64>() < p
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_is_skewed() {
        let z = Zipf::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[50]);
        // Head rank should dominate clearly at alpha = 1.2.
        assert!(counts[0] as f64 > 0.1 * 20_000.0 * 0.5);
    }

    #[test]
    fn zipf_alpha_zero_is_uniformish() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0usize; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 5000.0).abs() < 600.0, "{counts:?}");
        }
    }

    #[test]
    fn zipf_covers_domain_bounds() {
        let z = Zipf::new(3, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn zipf_rejects_empty() {
        let _ = Zipf::new(0, 1.0);
    }
}
