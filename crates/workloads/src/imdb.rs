//! Synthetic IMDB-like dataset: the stand-in for the paper's 7.2 GB JOB
//! extension (22-table IMDB snapshot).
//!
//! What makes JOB hard — and what this generator reproduces — is *skew*
//! (Zipf-distributed foreign keys and categorical values) and *cross-column
//! correlation* (production year depends on title kind; ratings depend on
//! popularity). Row counts keep IMDB's relative table-size ratios and the
//! whole dataset is scaled down by `title_rows`, with
//! [`ImdbDataset::simulated_scale`] reporting the factor that maps it back
//! to the paper's 7.2 GB for the time simulator.

use crate::querygen::{Fk, FkGraph, NumericPredCol, StringPredCol, TableMeta};
use crate::util::Zipf;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sparksim::catalog::Catalog;
use sparksim::schema::{ColumnDef, TableSchema};
use sparksim::storage::{Column, ColumnData, StrColumnBuilder, Table};
use sparksim::types::DataType;

/// Bytes of the real dataset this generator stands in for (7.2 GB).
pub const REAL_DATASET_BYTES: f64 = 7.2 * 1024.0 * 1024.0 * 1024.0;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct ImdbConfig {
    /// Rows in `title`; all other tables scale off it with IMDB-like
    /// ratios.
    pub title_rows: usize,
    /// RNG seed (data is fully deterministic given the seed).
    pub seed: u64,
}

impl Default for ImdbConfig {
    fn default() -> Self {
        Self { title_rows: 20_000, seed: 0xD1B2 }
    }
}

/// The generated dataset: a populated catalog plus the FK graph the query
/// generator walks.
#[derive(Debug)]
pub struct ImdbDataset {
    /// Catalog with all tables registered and analyzed.
    pub catalog: Catalog,
    /// FK graph for query generation.
    pub graph: FkGraph,
}

impl ImdbDataset {
    /// The `data_scale` for [`sparksim::SimulatorConfig`] that makes this
    /// scaled-down dataset behave like the paper's full 7.2 GB one.
    pub fn simulated_scale(&self) -> f64 {
        let actual = self.catalog.total_bytes() as f64;
        (REAL_DATASET_BYTES / actual.max(1.0)).max(1.0)
    }
}

const KINDS: [&str; 7] = [
    "movie",
    "tv series",
    "tv movie",
    "video movie",
    "tv episode",
    "video game",
    "short",
];

const COUNTRIES: [&str; 12] =
    ["us", "gb", "fr", "de", "jp", "it", "ca", "es", "in", "au", "br", "se"];

/// Generates the dataset.
pub fn generate(cfg: &ImdbConfig) -> ImdbDataset {
    let mut span = telemetry::span("workload.generate");
    span.record("dataset", "imdb");
    span.record("title_rows", cfg.title_rows as u64);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.title_rows.max(100);
    let n_keywords = (n / 20).max(20);
    let n_companies = (n / 10).max(20);
    let n_names = (n / 2).max(50);

    let mut catalog = Catalog::new();

    // -- kind_type -----------------------------------------------------
    {
        let mut kind = StrColumnBuilder::new();
        for k in KINDS {
            kind.push(k);
        }
        catalog.register(Table::new(
            TableSchema::new(
                "kind_type",
                vec![
                    ColumnDef::new("id", DataType::Int, false),
                    ColumnDef::new("kind", DataType::Str, false),
                ],
            ),
            vec![Column::non_null(ColumnData::Int((1..=7).collect())), kind.finish()],
        ));
    }

    // -- info_type ------------------------------------------------------
    {
        let ids: Vec<i64> = (1..=113).collect();
        let mut info = StrColumnBuilder::new();
        for i in &ids {
            info.push(&format!("info_type_{i}"));
        }
        catalog.register(Table::new(
            TableSchema::new(
                "info_type",
                vec![
                    ColumnDef::new("id", DataType::Int, false),
                    ColumnDef::new("info", DataType::Str, false),
                ],
            ),
            vec![Column::non_null(ColumnData::Int(ids)), info.finish()],
        ));
    }

    // -- keyword ---------------------------------------------------------
    {
        let mut kw = StrColumnBuilder::new();
        for i in 0..n_keywords {
            kw.push(&format!("keyword-{i:05}"));
        }
        catalog.register(Table::new(
            TableSchema::new(
                "keyword",
                vec![
                    ColumnDef::new("id", DataType::Int, false),
                    ColumnDef::new("keyword", DataType::Str, false),
                ],
            ),
            vec![Column::non_null(ColumnData::Int((0..n_keywords as i64).collect())), kw.finish()],
        ));
    }

    // -- company_name ------------------------------------------------------
    {
        let country_zipf = Zipf::new(COUNTRIES.len(), 1.1);
        let mut name = StrColumnBuilder::new();
        let mut code = StrColumnBuilder::new();
        for i in 0..n_companies {
            name.push(&format!("company {i:05} productions"));
            if rng.gen::<f64>() < 0.04 {
                code.push_null();
            } else {
                code.push(COUNTRIES[country_zipf.sample(&mut rng)]);
            }
        }
        catalog.register(Table::new(
            TableSchema::new(
                "company_name",
                vec![
                    ColumnDef::new("id", DataType::Int, false),
                    ColumnDef::new("name", DataType::Str, false),
                    ColumnDef::new("country_code", DataType::Str, true),
                ],
            ),
            vec![
                Column::non_null(ColumnData::Int((0..n_companies as i64).collect())),
                name.finish(),
                code.finish(),
            ],
        ));
    }

    // -- name --------------------------------------------------------------
    {
        let mut pname = StrColumnBuilder::new();
        let mut gender = StrColumnBuilder::new();
        for i in 0..n_names {
            pname.push(&format!("person {i:06}"));
            match rng.gen_range(0..10) {
                0..=4 => gender.push("m"),
                5..=8 => gender.push("f"),
                _ => gender.push_null(),
            }
        }
        catalog.register(Table::new(
            TableSchema::new(
                "name",
                vec![
                    ColumnDef::new("id", DataType::Int, false),
                    ColumnDef::new("name", DataType::Str, false),
                    ColumnDef::new("gender", DataType::Str, true),
                ],
            ),
            vec![
                Column::non_null(ColumnData::Int((0..n_names as i64).collect())),
                pname.finish(),
                gender.finish(),
            ],
        ));
    }

    // -- title: kind correlates with production year ------------------------
    let kind_zipf = Zipf::new(7, 0.9);
    let mut kind_ids = Vec::with_capacity(n);
    let mut years = Vec::with_capacity(n);
    let mut year_valid = Vec::with_capacity(n);
    {
        let mut titles = StrColumnBuilder::new();
        let mut phonetic = StrColumnBuilder::new();
        for i in 0..n {
            let kind = kind_zipf.sample(&mut rng) as i64 + 1;
            kind_ids.push(kind);
            // Correlation: tv episodes (kind 5) and video games (kind 6)
            // skew recent; movies span the whole range with recent bias.
            let year = match kind {
                5 | 6 => 1990 + sample_recent(&mut rng, 30),
                _ => 1880 + sample_recent(&mut rng, 140),
            };
            if rng.gen::<f64>() < 0.04 {
                years.push(0);
                year_valid.push(false);
            } else {
                years.push(year);
                year_valid.push(true);
            }
            titles.push(&format!("title {i:06}"));
            if rng.gen::<f64>() < 0.3 {
                phonetic.push_null();
            } else {
                phonetic.push(&format!("P{:04}", rng.gen_range(0..2000)));
            }
        }
        catalog.register(Table::new(
            TableSchema::new(
                "title",
                vec![
                    ColumnDef::new("id", DataType::Int, false),
                    ColumnDef::new("kind_id", DataType::Int, false),
                    ColumnDef::new("production_year", DataType::Int, true),
                    ColumnDef::new("title", DataType::Str, false),
                    ColumnDef::new("phonetic_code", DataType::Str, true),
                ],
            ),
            vec![
                Column::non_null(ColumnData::Int((0..n as i64).collect())),
                Column::non_null(ColumnData::Int(kind_ids.clone())),
                Column {
                    data: ColumnData::Int(years.clone()),
                    validity: Some(year_valid.clone()),
                },
                titles.finish(),
                phonetic.finish(),
            ],
        ));
    }

    // Popularity permutation: popular Zipf ranks map to scattered ids.
    let mut popularity: Vec<i64> = (0..n as i64).collect();
    popularity.shuffle(&mut rng);
    let movie_zipf = Zipf::new(n, 0.8);
    let movie_fk = |rng: &mut StdRng| popularity[movie_zipf.sample(rng)];

    // -- movie_companies -----------------------------------------------------
    {
        let rows = (n as f64 * 2.6) as usize;
        let company_zipf = Zipf::new(n_companies, 1.1);
        let mut movie_id = Vec::with_capacity(rows);
        let mut company_id = Vec::with_capacity(rows);
        let mut type_id = Vec::with_capacity(rows);
        for _ in 0..rows {
            movie_id.push(movie_fk(&mut rng));
            company_id.push(company_zipf.sample(&mut rng) as i64);
            type_id.push(if rng.gen::<f64>() < 0.7 { 1 } else { 2 });
        }
        catalog.register(Table::new(
            TableSchema::new(
                "movie_companies",
                vec![
                    ColumnDef::new("id", DataType::Int, false),
                    ColumnDef::new("movie_id", DataType::Int, false),
                    ColumnDef::new("company_id", DataType::Int, false),
                    ColumnDef::new("company_type_id", DataType::Int, false),
                ],
            ),
            vec![
                Column::non_null(ColumnData::Int((0..rows as i64).collect())),
                Column::non_null(ColumnData::Int(movie_id)),
                Column::non_null(ColumnData::Int(company_id)),
                Column::non_null(ColumnData::Int(type_id)),
            ],
        ));
    }

    // -- movie_keyword -------------------------------------------------------
    {
        let rows = (n as f64 * 4.5) as usize;
        let kw_zipf = Zipf::new(n_keywords, 1.3);
        let mut movie_id = Vec::with_capacity(rows);
        let mut keyword_id = Vec::with_capacity(rows);
        for _ in 0..rows {
            movie_id.push(movie_fk(&mut rng));
            keyword_id.push(kw_zipf.sample(&mut rng) as i64);
        }
        catalog.register(Table::new(
            TableSchema::new(
                "movie_keyword",
                vec![
                    ColumnDef::new("id", DataType::Int, false),
                    ColumnDef::new("movie_id", DataType::Int, false),
                    ColumnDef::new("keyword_id", DataType::Int, false),
                ],
            ),
            vec![
                Column::non_null(ColumnData::Int((0..rows as i64).collect())),
                Column::non_null(ColumnData::Int(movie_id)),
                Column::non_null(ColumnData::Int(keyword_id)),
            ],
        ));
    }

    // -- movie_info_idx: rating correlates with popularity rank ---------------
    {
        let rows = (n as f64 * 1.3) as usize;
        let mut movie_id = Vec::with_capacity(rows);
        let mut info_type_id = Vec::with_capacity(rows);
        let mut info = StrColumnBuilder::new();
        for _ in 0..rows {
            let rank = movie_zipf.sample(&mut rng);
            movie_id.push(popularity[rank]);
            info_type_id.push(99 + rng.gen_range(0..14) as i64);
            // Popular titles rate higher on average.
            let base = 8.5 - 4.0 * (rank as f64 / n as f64);
            let rating = (base + rng.gen_range(-1.0..1.0)).clamp(1.0, 9.9);
            info.push(&format!("{rating:.1}"));
        }
        catalog.register(Table::new(
            TableSchema::new(
                "movie_info_idx",
                vec![
                    ColumnDef::new("id", DataType::Int, false),
                    ColumnDef::new("movie_id", DataType::Int, false),
                    ColumnDef::new("info_type_id", DataType::Int, false),
                    ColumnDef::new("info", DataType::Str, false),
                ],
            ),
            vec![
                Column::non_null(ColumnData::Int((0..rows as i64).collect())),
                Column::non_null(ColumnData::Int(movie_id)),
                Column::non_null(ColumnData::Int(info_type_id)),
                info.finish(),
            ],
        ));
    }

    // -- movie_info ------------------------------------------------------------
    {
        let rows = (n as f64 * 3.0) as usize;
        let mut movie_id = Vec::with_capacity(rows);
        let mut info_type_id = Vec::with_capacity(rows);
        let mut info = StrColumnBuilder::new();
        for _ in 0..rows {
            movie_id.push(movie_fk(&mut rng));
            let it = 1 + rng.gen_range(0..98) as i64;
            info_type_id.push(it);
            if rng.gen::<f64>() < 0.05 {
                info.push_null();
            } else {
                info.push(&format!("value-{}", rng.gen_range(0..500)));
            }
        }
        catalog.register(Table::new(
            TableSchema::new(
                "movie_info",
                vec![
                    ColumnDef::new("id", DataType::Int, false),
                    ColumnDef::new("movie_id", DataType::Int, false),
                    ColumnDef::new("info_type_id", DataType::Int, false),
                    ColumnDef::new("info", DataType::Str, true),
                ],
            ),
            vec![
                Column::non_null(ColumnData::Int((0..rows as i64).collect())),
                Column::non_null(ColumnData::Int(movie_id)),
                Column::non_null(ColumnData::Int(info_type_id)),
                info.finish(),
            ],
        ));
    }

    // -- cast_info -----------------------------------------------------------
    {
        let rows = (n as f64 * 5.0) as usize;
        let person_zipf = Zipf::new(n_names, 1.0);
        let mut movie_id = Vec::with_capacity(rows);
        let mut person_id = Vec::with_capacity(rows);
        let mut role_id = Vec::with_capacity(rows);
        for _ in 0..rows {
            movie_id.push(movie_fk(&mut rng));
            person_id.push(person_zipf.sample(&mut rng) as i64);
            role_id.push(1 + rng.gen_range(0..11) as i64);
        }
        catalog.register(Table::new(
            TableSchema::new(
                "cast_info",
                vec![
                    ColumnDef::new("id", DataType::Int, false),
                    ColumnDef::new("movie_id", DataType::Int, false),
                    ColumnDef::new("person_id", DataType::Int, false),
                    ColumnDef::new("role_id", DataType::Int, false),
                ],
            ),
            vec![
                Column::non_null(ColumnData::Int((0..rows as i64).collect())),
                Column::non_null(ColumnData::Int(movie_id)),
                Column::non_null(ColumnData::Int(person_id)),
                Column::non_null(ColumnData::Int(role_id)),
            ],
        ));
    }

    let graph = fk_graph(n, n_keywords, n_companies, n_names);
    ImdbDataset { catalog, graph }
}

/// Recency-skewed year offset in `0..span` (quadratic bias to the top).
fn sample_recent(rng: &mut impl Rng, span: i64) -> i64 {
    let u: f64 = rng.gen();
    (u.sqrt() * span as f64) as i64
}

fn fk_graph(n: usize, n_keywords: usize, n_companies: usize, n_names: usize) -> FkGraph {
    let movie_fk = |col: &str| Fk {
        column: col.to_string(),
        ref_table: "title".into(),
        ref_column: "id".into(),
    };
    FkGraph {
        tables: vec![
            TableMeta {
                name: "title".into(),
                alias: "t".into(),
                fks: vec![Fk {
                    column: "kind_id".into(),
                    ref_table: "kind_type".into(),
                    ref_column: "id".into(),
                }],
                numeric_preds: vec![
                    NumericPredCol { column: "kind_id".into(), min: 1, max: 7 },
                    NumericPredCol {
                        column: "production_year".into(),
                        min: 1880,
                        max: 2020,
                    },
                    NumericPredCol { column: "id".into(), min: 0, max: n as i64 - 1 },
                ],
                string_preds: vec![StringPredCol {
                    column: "phonetic_code".into(),
                    values: (0..8).map(|i| format!("P{:04}", i * 250)).collect(),
                }],
                group_cols: vec!["kind_id".into()],
            },
            TableMeta {
                name: "movie_companies".into(),
                alias: "mc".into(),
                fks: vec![
                    movie_fk("movie_id"),
                    Fk {
                        column: "company_id".into(),
                        ref_table: "company_name".into(),
                        ref_column: "id".into(),
                    },
                ],
                numeric_preds: vec![
                    NumericPredCol {
                        column: "company_id".into(),
                        min: 0,
                        max: n_companies as i64 - 1,
                    },
                    NumericPredCol { column: "company_type_id".into(), min: 1, max: 2 },
                ],
                string_preds: vec![],
                group_cols: vec!["company_type_id".into()],
            },
            TableMeta {
                name: "movie_keyword".into(),
                alias: "mk".into(),
                fks: vec![
                    movie_fk("movie_id"),
                    Fk {
                        column: "keyword_id".into(),
                        ref_table: "keyword".into(),
                        ref_column: "id".into(),
                    },
                ],
                numeric_preds: vec![NumericPredCol {
                    column: "keyword_id".into(),
                    min: 0,
                    max: n_keywords as i64 - 1,
                }],
                string_preds: vec![],
                group_cols: vec![],
            },
            TableMeta {
                name: "movie_info_idx".into(),
                alias: "mi_idx".into(),
                fks: vec![
                    movie_fk("movie_id"),
                    Fk {
                        column: "info_type_id".into(),
                        ref_table: "info_type".into(),
                        ref_column: "id".into(),
                    },
                ],
                numeric_preds: vec![NumericPredCol {
                    column: "info_type_id".into(),
                    min: 99,
                    max: 112,
                }],
                string_preds: vec![StringPredCol {
                    column: "info".into(),
                    values: vec!["6.0".into(), "7.5".into(), "8.2".into()],
                }],
                group_cols: vec!["info_type_id".into()],
            },
            TableMeta {
                name: "movie_info".into(),
                alias: "mi".into(),
                fks: vec![
                    movie_fk("movie_id"),
                    Fk {
                        column: "info_type_id".into(),
                        ref_table: "info_type".into(),
                        ref_column: "id".into(),
                    },
                ],
                numeric_preds: vec![NumericPredCol {
                    column: "info_type_id".into(),
                    min: 1,
                    max: 98,
                }],
                string_preds: vec![StringPredCol {
                    column: "info".into(),
                    values: (0..6).map(|i| format!("value-{}", i * 80)).collect(),
                }],
                group_cols: vec![],
            },
            TableMeta {
                name: "cast_info".into(),
                alias: "ci".into(),
                fks: vec![
                    movie_fk("movie_id"),
                    Fk {
                        column: "person_id".into(),
                        ref_table: "name".into(),
                        ref_column: "id".into(),
                    },
                ],
                numeric_preds: vec![
                    NumericPredCol { column: "role_id".into(), min: 1, max: 11 },
                    NumericPredCol {
                        column: "person_id".into(),
                        min: 0,
                        max: n_names as i64 - 1,
                    },
                ],
                string_preds: vec![],
                group_cols: vec!["role_id".into()],
            },
            TableMeta {
                name: "company_name".into(),
                alias: "cn".into(),
                fks: vec![],
                numeric_preds: vec![NumericPredCol {
                    column: "id".into(),
                    min: 0,
                    max: n_companies as i64 - 1,
                }],
                string_preds: vec![StringPredCol {
                    column: "country_code".into(),
                    values: COUNTRIES.iter().map(|s| s.to_string()).collect(),
                }],
                group_cols: vec![],
            },
            TableMeta {
                name: "keyword".into(),
                alias: "k".into(),
                fks: vec![],
                numeric_preds: vec![NumericPredCol {
                    column: "id".into(),
                    min: 0,
                    max: n_keywords as i64 - 1,
                }],
                string_preds: vec![StringPredCol {
                    column: "keyword".into(),
                    values: (0..6).map(|i| format!("keyword-{:05}", i * 3)).collect(),
                }],
                group_cols: vec![],
            },
            TableMeta {
                name: "name".into(),
                alias: "n".into(),
                fks: vec![],
                numeric_preds: vec![NumericPredCol {
                    column: "id".into(),
                    min: 0,
                    max: n_names as i64 - 1,
                }],
                string_preds: vec![StringPredCol {
                    column: "gender".into(),
                    values: vec!["m".into(), "f".into()],
                }],
                group_cols: vec![],
            },
        ],
    }
}

/// The four representative queries of the paper's Sec. III, adapted to the
/// synthetic value ranges: single-table, SMJ-leaning two-table,
/// BHJ-leaning two-table, and a three-table mix.
pub fn paper_section3_queries(data: &ImdbDataset) -> Vec<(&'static str, String)> {
    let n_keywords = data
        .catalog
        .stats("keyword")
        .map(|s| s.row_count as i64)
        .unwrap_or(1000);
    let n_companies = data
        .catalog
        .stats("company_name")
        .map(|s| s.row_count as i64)
        .unwrap_or(2000);
    vec![
        (
            "single-table",
            format!(
                "SELECT COUNT(*) FROM movie_keyword mk WHERE mk.keyword_id < {}",
                n_keywords * 7 / 10
            ),
        ),
        (
            "two-table-smj",
            format!(
                "SELECT COUNT(*) FROM title t, movie_companies mc \
                 WHERE t.id = mc.movie_id AND mc.company_id < {} AND mc.company_type_id > 1",
                n_companies * 9 / 10
            ),
        ),
        (
            "two-table-bhj",
            // info_type_id < 110 keeps ~80% of movie_info_idx: at full
            // scale the broadcast relation is a few hundred MB, so whether
            // it fits the broadcast memory cap flips with executor memory
            // — the paper's Fig. 2(c) crossover.
            "SELECT COUNT(*) FROM title t, movie_info_idx mi_idx \
             WHERE t.id = mi_idx.movie_id AND t.kind_id < 7 \
             AND t.production_year > 1961 AND mi_idx.info_type_id < 110"
                .to_string(),
        ),
        (
            "three-table",
            format!(
                "SELECT COUNT(*) FROM title t, movie_companies mc, movie_keyword mk \
                 WHERE t.id = mc.movie_id AND t.id = mk.movie_id \
                 AND mc.company_id = {} AND mk.keyword_id < {}",
                n_companies / 3,
                n_keywords / 25
            ),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::querygen::{generate_queries, QueryGenConfig};
    use sparksim::engine::Engine;

    fn small() -> ImdbDataset {
        generate(&ImdbConfig { title_rows: 1000, seed: 7 })
    }

    #[test]
    fn all_tables_registered_with_ratios() {
        let d = small();
        assert_eq!(d.catalog.len(), 11);
        let title = d.catalog.stats("title").unwrap().row_count;
        let mk = d.catalog.stats("movie_keyword").unwrap().row_count;
        let ci = d.catalog.stats("cast_info").unwrap().row_count;
        assert_eq!(title, 1000);
        assert_eq!(mk, 4500);
        assert_eq!(ci, 5000);
    }

    #[test]
    fn foreign_keys_are_valid() {
        let d = small();
        let title_rows = d.catalog.stats("title").unwrap().row_count as i64;
        let mc = d.catalog.table("movie_companies").unwrap();
        if let ColumnData::Int(v) = &mc.column("movie_id").unwrap().data {
            assert!(v.iter().all(|&id| id >= 0 && id < title_rows));
        } else {
            panic!("movie_id should be Int");
        }
    }

    #[test]
    fn keyword_skew_is_present() {
        let d = small();
        let mk = d.catalog.table("movie_keyword").unwrap();
        if let ColumnData::Int(v) = &mk.column("keyword_id").unwrap().data {
            let mut counts = std::collections::HashMap::new();
            for &k in v {
                *counts.entry(k).or_insert(0usize) += 1;
            }
            let max = *counts.values().max().unwrap();
            let avg = v.len() / counts.len();
            assert!(max > 5 * avg, "head keyword should dominate: max={max} avg={avg}");
        }
    }

    #[test]
    fn kind_year_correlation_exists() {
        let d = small();
        let t = d.catalog.table("title").unwrap();
        let (ColumnData::Int(kinds), ColumnData::Int(years)) =
            (&t.column("kind_id").unwrap().data, &t.column("production_year").unwrap().data)
        else {
            panic!("unexpected column types")
        };
        let validity = t.column("production_year").unwrap().validity.clone();
        let mean = |kind: i64| -> f64 {
            let vals: Vec<f64> = kinds
                .iter()
                .zip(years)
                .enumerate()
                .filter(|(i, (k, _))| **k == kind && validity.as_ref().is_none_or(|v| v[*i]))
                .map(|(_, (_, y))| *y as f64)
                .collect();
            vals.iter().sum::<f64>() / vals.len().max(1) as f64
        };
        assert!(mean(5) > mean(1) + 20.0, "tv episodes must skew recent");
    }

    #[test]
    fn generated_queries_resolve_and_run() {
        let d = small();
        let mut rng = StdRng::seed_from_u64(3);
        let queries = generate_queries(&d.graph, &QueryGenConfig::default(), 40, &mut rng);
        let engine = Engine::new(d.catalog);
        for q in &queries {
            let plans = engine.plan_candidates(q).unwrap_or_else(|e| panic!("{q}: {e}"));
            assert!(!plans.is_empty());
            engine.execute_plan(&plans[0]).unwrap_or_else(|e| panic!("{q}: {e}"));
        }
    }

    #[test]
    fn paper_queries_run_with_multiple_plans() {
        let d = small();
        let queries = paper_section3_queries(&d);
        let engine = Engine::new(d.catalog);
        for (name, q) in &queries {
            let plans = engine.plan_candidates(q).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(plans.len() >= 2, "{name} should have at least 2 plans");
        }
    }

    #[test]
    fn simulated_scale_targets_7gb() {
        let d = small();
        let scale = d.simulated_scale();
        let actual = d.catalog.total_bytes() as f64;
        assert!((scale * actual - REAL_DATASET_BYTES).abs() / REAL_DATASET_BYTES < 0.01);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&ImdbConfig { title_rows: 500, seed: 1 });
        let b = generate(&ImdbConfig { title_rows: 500, seed: 1 });
        assert_eq!(a.catalog.stats("movie_keyword"), b.catalog.stats("movie_keyword"));
    }
}
