//! Template-free query generation over a declared foreign-key graph,
//! producing the paper's two workload types: numeric-predicate queries and
//! complex string-predicate queries, with 0–5 joins (Sec. V-A).

use rand::Rng;

/// A foreign-key edge `table.column → ref_table.ref_column`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fk {
    /// Referencing column.
    pub column: String,
    /// Referenced table.
    pub ref_table: String,
    /// Referenced column (typically the primary key).
    pub ref_column: String,
}

/// A numeric column predicates may be generated on.
#[derive(Debug, Clone)]
pub struct NumericPredCol {
    /// Column name.
    pub column: String,
    /// Smallest value in the data.
    pub min: i64,
    /// Largest value in the data.
    pub max: i64,
}

/// A string column predicates may be generated on.
#[derive(Debug, Clone)]
pub struct StringPredCol {
    /// Column name.
    pub column: String,
    /// Representative values (sampled for `=` and LIKE-prefix predicates).
    pub values: Vec<String>,
}

/// Generator-facing description of one table.
#[derive(Debug, Clone)]
pub struct TableMeta {
    /// Table name in the catalog.
    pub name: String,
    /// Preferred short alias (`t`, `mc`, …).
    pub alias: String,
    /// Outgoing foreign keys.
    pub fks: Vec<Fk>,
    /// Numeric predicate columns.
    pub numeric_preds: Vec<NumericPredCol>,
    /// String predicate columns.
    pub string_preds: Vec<StringPredCol>,
    /// Low-cardinality numeric columns suitable for GROUP BY.
    pub group_cols: Vec<String>,
}

/// The FK graph of a schema.
#[derive(Debug, Clone, Default)]
pub struct FkGraph {
    /// Tables, generator order.
    pub tables: Vec<TableMeta>,
}

impl FkGraph {
    /// Index of a table by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.tables.iter().position(|t| t.name == name)
    }
}

/// Query-generation knobs.
#[derive(Debug, Clone)]
pub struct QueryGenConfig {
    /// Maximum joins per query (the paper uses 0–5).
    pub max_joins: usize,
    /// Inclusive range for the number of filter predicates.
    pub min_predicates: usize,
    /// Upper bound (inclusive) on predicates.
    pub max_predicates: usize,
    /// Probability a generated predicate is a string predicate (the
    /// paper's second workload type).
    pub string_predicate_prob: f64,
    /// Probability of extra aggregates (SUM/MIN/MAX/AVG) beyond COUNT(*).
    pub extra_aggregate_prob: f64,
    /// Probability of a GROUP BY query.
    pub group_by_prob: f64,
}

impl Default for QueryGenConfig {
    fn default() -> Self {
        Self {
            max_joins: 5,
            min_predicates: 1,
            max_predicates: 4,
            string_predicate_prob: 0.3,
            extra_aggregate_prob: 0.2,
            group_by_prob: 0.1,
        }
    }
}

/// Generates `n` SQL queries over the FK graph.
pub fn generate_queries(
    graph: &FkGraph,
    cfg: &QueryGenConfig,
    n: usize,
    rng: &mut impl Rng,
) -> Vec<String> {
    (0..n).map(|_| generate_query(graph, cfg, rng)).collect()
}

/// Generates a single SQL query.
pub fn generate_query(graph: &FkGraph, cfg: &QueryGenConfig, rng: &mut impl Rng) -> String {
    let num_joins = rng.gen_range(0..=cfg.max_joins);
    let tables = pick_join_tables(graph, num_joins, rng);

    // FROM clause with aliases.
    let from: Vec<String> = tables
        .iter()
        .map(|&ti| {
            let t = &graph.tables[ti];
            format!("{} {}", t.name, t.alias)
        })
        .collect();

    // Join conditions along the FK edges connecting consecutive picks.
    let mut conditions = Vec::new();
    for (pos, &ti) in tables.iter().enumerate().skip(1) {
        let edge = find_edge(graph, &tables[..pos], ti)
            .expect("pick_join_tables only adds connected tables");
        conditions.push(edge);
    }

    // Multi-join queries get a mandatory selective range predicate per
    // table (when one is available): star joins over skewed foreign keys
    // fan out combinatorially otherwise, which neither JOB nor TPC-H
    // queries do — they are always selective.
    if tables.len() >= 3 {
        for &ti in &tables {
            let t = &graph.tables[ti];
            if let Some(np) = t.numeric_preds.first() {
                let span = (np.max - np.min).max(1);
                let width = ((span as f64 * rng.gen_range(0.05..0.25)) as i64).max(1);
                let lo = np.min + rng.gen_range(0..=(span - width).max(1));
                conditions.push(format!(
                    "{}.{} BETWEEN {lo} AND {}",
                    t.alias,
                    np.column,
                    lo + width
                ));
            }
        }
    }

    // Filter predicates.
    let num_preds = rng.gen_range(cfg.min_predicates..=cfg.max_predicates);
    for _ in 0..num_preds {
        let &ti = &tables[rng.gen_range(0..tables.len())];
        let t = &graph.tables[ti];
        let use_string = !t.string_preds.is_empty()
            && (t.numeric_preds.is_empty() || rng.gen::<f64>() < cfg.string_predicate_prob);
        if use_string {
            let sp = &t.string_preds[rng.gen_range(0..t.string_preds.len())];
            if sp.values.is_empty() {
                continue;
            }
            let v = &sp.values[rng.gen_range(0..sp.values.len())];
            let pred = match rng.gen_range(0..3) {
                0 => format!("{}.{} = '{}'", t.alias, sp.column, v),
                1 => {
                    let cut = (v.len() / 2).max(1).min(v.len());
                    format!("{}.{} LIKE '{}%'", t.alias, sp.column, &v[..cut])
                }
                _ => format!("{}.{} IS NOT NULL", t.alias, sp.column),
            };
            conditions.push(pred);
        } else if !t.numeric_preds.is_empty() {
            let np = &t.numeric_preds[rng.gen_range(0..t.numeric_preds.len())];
            let span = (np.max - np.min).max(1);
            let v = np.min + rng.gen_range(0..=span);
            let pred = match rng.gen_range(0..5) {
                0 => format!("{}.{} < {v}", t.alias, np.column),
                1 => format!("{}.{} > {v}", t.alias, np.column),
                2 => format!("{}.{} <= {v}", t.alias, np.column),
                3 => format!("{}.{} = {v}", t.alias, np.column),
                _ => {
                    let hi = (v + span / 4).min(np.max);
                    format!("{}.{} BETWEEN {v} AND {hi}", t.alias, np.column)
                }
            };
            conditions.push(pred);
        }
    }

    // Select list: COUNT(*) always, occasionally more.
    let mut select = vec!["COUNT(*)".to_string()];
    if rng.gen::<f64>() < cfg.extra_aggregate_prob {
        let &ti = &tables[rng.gen_range(0..tables.len())];
        let t = &graph.tables[ti];
        if let Some(np) = t.numeric_preds.first() {
            let func = ["SUM", "MIN", "MAX", "AVG"][rng.gen_range(0..4)];
            select.push(format!("{func}({}.{})", t.alias, np.column));
        }
    }
    let mut group_by = String::new();
    if rng.gen::<f64>() < cfg.group_by_prob {
        let &ti = &tables[rng.gen_range(0..tables.len())];
        let t = &graph.tables[ti];
        if let Some(g) = t.group_cols.first() {
            let col = format!("{}.{}", t.alias, g);
            select.insert(0, col.clone());
            group_by = format!(" GROUP BY {col}");
        }
    }

    let where_clause = if conditions.is_empty() {
        String::new()
    } else {
        format!(" WHERE {}", conditions.join(" AND "))
    };
    format!(
        "SELECT {} FROM {}{}{}",
        select.join(", "),
        from.join(", "),
        where_clause,
        group_by
    )
}

/// Random-walks the FK graph, returning `num_joins + 1` distinct,
/// join-connected table indices. Falls back to fewer tables when the walk
/// cannot be extended.
fn pick_join_tables(graph: &FkGraph, num_joins: usize, rng: &mut impl Rng) -> Vec<usize> {
    let start = rng.gen_range(0..graph.tables.len());
    let mut picked = vec![start];
    while picked.len() < num_joins + 1 {
        let mut candidates = Vec::new();
        for (ci, cand) in graph.tables.iter().enumerate() {
            if picked.contains(&ci) {
                continue;
            }
            let connected = picked.iter().any(|&pi| {
                let p = &graph.tables[pi];
                p.fks.iter().any(|fk| fk.ref_table == cand.name)
                    || cand.fks.iter().any(|fk| fk.ref_table == p.name)
            });
            if connected {
                candidates.push(ci);
            }
        }
        if candidates.is_empty() {
            break;
        }
        picked.push(candidates[rng.gen_range(0..candidates.len())]);
    }
    picked
}

/// Builds the equi-join condition connecting `new` to one of `included`.
fn find_edge(graph: &FkGraph, included: &[usize], new: usize) -> Option<String> {
    let n = &graph.tables[new];
    for &pi in included {
        let p = &graph.tables[pi];
        for fk in &p.fks {
            if fk.ref_table == n.name {
                return Some(format!("{}.{} = {}.{}", p.alias, fk.column, n.alias, fk.ref_column));
            }
        }
        for fk in &n.fks {
            if fk.ref_table == p.name {
                return Some(format!("{}.{} = {}.{}", n.alias, fk.column, p.alias, fk.ref_column));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_graph() -> FkGraph {
        FkGraph {
            tables: vec![
                TableMeta {
                    name: "a".into(),
                    alias: "a".into(),
                    fks: vec![],
                    numeric_preds: vec![NumericPredCol { column: "x".into(), min: 0, max: 100 }],
                    string_preds: vec![StringPredCol {
                        column: "s".into(),
                        values: vec!["hello".into(), "world".into()],
                    }],
                    group_cols: vec!["x".into()],
                },
                TableMeta {
                    name: "b".into(),
                    alias: "b".into(),
                    fks: vec![Fk {
                        column: "a_id".into(),
                        ref_table: "a".into(),
                        ref_column: "id".into(),
                    }],
                    numeric_preds: vec![NumericPredCol { column: "y".into(), min: 0, max: 50 }],
                    string_preds: vec![],
                    group_cols: vec![],
                },
            ],
        }
    }

    #[test]
    fn queries_are_well_formed_sql() {
        let g = tiny_graph();
        let mut rng = StdRng::seed_from_u64(1);
        let queries = generate_queries(&g, &QueryGenConfig::default(), 50, &mut rng);
        assert_eq!(queries.len(), 50);
        for q in &queries {
            assert!(q.starts_with("SELECT "), "{q}");
            assert!(q.contains(" FROM "), "{q}");
            // Every query must parse with the sparksim SQL front end.
            sparksim::sql::parser::parse(q).unwrap_or_else(|e| panic!("{q}: {e}"));
        }
    }

    #[test]
    fn join_queries_carry_join_conditions() {
        let g = tiny_graph();
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = QueryGenConfig { max_joins: 1, ..Default::default() };
        let queries = generate_queries(&g, &cfg, 100, &mut rng);
        let joined: Vec<&String> = queries
            .iter()
            .filter(|q| {
                let from = q.split(" FROM ").nth(1).unwrap();
                from.split(" WHERE ").next().unwrap().contains(',')
            })
            .collect();
        assert!(!joined.is_empty());
        for q in joined {
            assert!(q.contains("b.a_id = a.id") || q.contains("a.id = b.a_id"), "{q}");
        }
    }

    #[test]
    fn generation_is_deterministic_under_seed() {
        let g = tiny_graph();
        let a = generate_queries(&g, &QueryGenConfig::default(), 10, &mut StdRng::seed_from_u64(7));
        let b = generate_queries(&g, &QueryGenConfig::default(), 10, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn join_count_respects_cap() {
        let g = tiny_graph();
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = QueryGenConfig { max_joins: 0, ..Default::default() };
        for q in generate_queries(&g, &cfg, 30, &mut rng) {
            let from = q.split(" FROM ").nth(1).unwrap();
            let from = from.split(" WHERE ").next().unwrap();
            assert!(!from.contains(','), "no joins expected: {q}");
        }
    }
}
