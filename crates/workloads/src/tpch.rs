//! Synthetic TPC-H-like dataset: the stand-in for the paper's TPC-H
//! scale-factor-100 benchmark.
//!
//! In contrast to the IMDB generator, distributions here are near-uniform
//! (TPC-H's character), which preserves the paper's IMDB-vs-TPC-H contrast:
//! simpler correlations, larger scan volumes, higher cost variance.

use crate::querygen::{Fk, FkGraph, NumericPredCol, StringPredCol, TableMeta};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparksim::catalog::Catalog;
use sparksim::schema::{ColumnDef, TableSchema};
use sparksim::storage::{Column, ColumnData, StrColumnBuilder, Table};
use sparksim::types::DataType;

/// Bytes of the dataset this generator stands in for (TPC-H SF100,
/// ~100 GB raw).
pub const REAL_DATASET_BYTES: f64 = 100.0 * 1024.0 * 1024.0 * 1024.0;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct TpchConfig {
    /// Rows in `customer`; the other tables follow TPC-H ratios
    /// (orders 10x, lineitem 40x, part 1.33x, supplier 1/15, partsupp 5.3x).
    pub customer_rows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        Self { customer_rows: 1500, seed: 0x7C48 }
    }
}

/// The generated dataset.
#[derive(Debug)]
pub struct TpchDataset {
    /// Catalog with all tables registered and analyzed.
    pub catalog: Catalog,
    /// FK graph for query generation.
    pub graph: FkGraph,
}

impl TpchDataset {
    /// `data_scale` mapping this dataset to SF100 for the simulator.
    pub fn simulated_scale(&self) -> f64 {
        let actual = self.catalog.total_bytes() as f64;
        (REAL_DATASET_BYTES / actual.max(1.0)).max(1.0)
    }
}

const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const SEGMENTS: [&str; 5] = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const TYPES: [&str; 6] = [
    "ECONOMY ANODIZED STEEL",
    "ECONOMY BURNISHED COPPER",
    "STANDARD PLATED BRASS",
    "STANDARD POLISHED TIN",
    "PROMO BRUSHED NICKEL",
    "PROMO PLATED STEEL",
];
const RETURN_FLAGS: [&str; 3] = ["A", "N", "R"];

/// Generates the dataset.
pub fn generate(cfg: &TpchConfig) -> TpchDataset {
    let mut span = telemetry::span("workload.generate");
    span.record("dataset", "tpch");
    span.record("customer_rows", cfg.customer_rows as u64);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let customers = cfg.customer_rows.max(100);
    let suppliers = (customers / 15).max(10);
    let parts = customers * 4 / 3;
    let partsupps = parts * 4;
    let orders = customers * 10;
    let lineitems = orders * 4;

    let mut catalog = Catalog::new();

    // -- region ----------------------------------------------------------
    {
        let mut name = StrColumnBuilder::new();
        for r in REGIONS {
            name.push(r);
        }
        catalog.register(Table::new(
            TableSchema::new(
                "region",
                vec![
                    ColumnDef::new("r_regionkey", DataType::Int, false),
                    ColumnDef::new("r_name", DataType::Str, false),
                ],
            ),
            vec![Column::non_null(ColumnData::Int((0..5).collect())), name.finish()],
        ));
    }

    // -- nation ------------------------------------------------------------
    {
        let mut name = StrColumnBuilder::new();
        let mut regionkey = Vec::with_capacity(25);
        for i in 0..25 {
            name.push(&format!("NATION-{i:02}"));
            regionkey.push((i % 5) as i64);
        }
        catalog.register(Table::new(
            TableSchema::new(
                "nation",
                vec![
                    ColumnDef::new("n_nationkey", DataType::Int, false),
                    ColumnDef::new("n_regionkey", DataType::Int, false),
                    ColumnDef::new("n_name", DataType::Str, false),
                ],
            ),
            vec![
                Column::non_null(ColumnData::Int((0..25).collect())),
                Column::non_null(ColumnData::Int(regionkey)),
                name.finish(),
            ],
        ));
    }

    // -- supplier -------------------------------------------------------------
    {
        let mut nationkey = Vec::with_capacity(suppliers);
        let mut acctbal = Vec::with_capacity(suppliers);
        for _ in 0..suppliers {
            nationkey.push(rng.gen_range(0..25) as i64);
            acctbal.push(rng.gen_range(-999.0..10_000.0));
        }
        catalog.register(Table::new(
            TableSchema::new(
                "supplier",
                vec![
                    ColumnDef::new("s_suppkey", DataType::Int, false),
                    ColumnDef::new("s_nationkey", DataType::Int, false),
                    ColumnDef::new("s_acctbal", DataType::Float, false),
                ],
            ),
            vec![
                Column::non_null(ColumnData::Int((0..suppliers as i64).collect())),
                Column::non_null(ColumnData::Int(nationkey)),
                Column::non_null(ColumnData::Float(acctbal)),
            ],
        ));
    }

    // -- customer ---------------------------------------------------------------
    {
        let mut nationkey = Vec::with_capacity(customers);
        let mut acctbal = Vec::with_capacity(customers);
        let mut segment = StrColumnBuilder::new();
        for _ in 0..customers {
            nationkey.push(rng.gen_range(0..25) as i64);
            acctbal.push(rng.gen_range(-999.0..10_000.0));
            segment.push(SEGMENTS[rng.gen_range(0..SEGMENTS.len())]);
        }
        catalog.register(Table::new(
            TableSchema::new(
                "customer",
                vec![
                    ColumnDef::new("c_custkey", DataType::Int, false),
                    ColumnDef::new("c_nationkey", DataType::Int, false),
                    ColumnDef::new("c_acctbal", DataType::Float, false),
                    ColumnDef::new("c_mktsegment", DataType::Str, false),
                ],
            ),
            vec![
                Column::non_null(ColumnData::Int((0..customers as i64).collect())),
                Column::non_null(ColumnData::Int(nationkey)),
                Column::non_null(ColumnData::Float(acctbal)),
                segment.finish(),
            ],
        ));
    }

    // -- part -----------------------------------------------------------------
    {
        let mut size = Vec::with_capacity(parts);
        let mut price = Vec::with_capacity(parts);
        let mut ptype = StrColumnBuilder::new();
        let mut brand = StrColumnBuilder::new();
        for i in 0..parts {
            size.push(rng.gen_range(1..=50) as i64);
            price.push(900.0 + (i % 200) as f64 * 10.0 + rng.gen_range(0.0..10.0));
            ptype.push(TYPES[rng.gen_range(0..TYPES.len())]);
            brand.push(&format!("Brand#{}{}", rng.gen_range(1..=5), rng.gen_range(1..=5)));
        }
        catalog.register(Table::new(
            TableSchema::new(
                "part",
                vec![
                    ColumnDef::new("p_partkey", DataType::Int, false),
                    ColumnDef::new("p_size", DataType::Int, false),
                    ColumnDef::new("p_retailprice", DataType::Float, false),
                    ColumnDef::new("p_type", DataType::Str, false),
                    ColumnDef::new("p_brand", DataType::Str, false),
                ],
            ),
            vec![
                Column::non_null(ColumnData::Int((0..parts as i64).collect())),
                Column::non_null(ColumnData::Int(size)),
                Column::non_null(ColumnData::Float(price)),
                ptype.finish(),
                brand.finish(),
            ],
        ));
    }

    // -- partsupp ----------------------------------------------------------------
    {
        let mut partkey = Vec::with_capacity(partsupps);
        let mut suppkey = Vec::with_capacity(partsupps);
        let mut availqty = Vec::with_capacity(partsupps);
        let mut cost = Vec::with_capacity(partsupps);
        for i in 0..partsupps {
            partkey.push((i / 4) as i64);
            suppkey.push(rng.gen_range(0..suppliers) as i64);
            availqty.push(rng.gen_range(1..10_000) as i64);
            cost.push(rng.gen_range(1.0..1000.0));
        }
        catalog.register(Table::new(
            TableSchema::new(
                "partsupp",
                vec![
                    ColumnDef::new("ps_partkey", DataType::Int, false),
                    ColumnDef::new("ps_suppkey", DataType::Int, false),
                    ColumnDef::new("ps_availqty", DataType::Int, false),
                    ColumnDef::new("ps_supplycost", DataType::Float, false),
                ],
            ),
            vec![
                Column::non_null(ColumnData::Int((0..partsupps as i64).collect())),
                Column::non_null(ColumnData::Int(partkey)),
                Column::non_null(ColumnData::Int(suppkey)),
                Column::non_null(ColumnData::Float(cost)),
            ],
        ));
    }

    // -- orders --------------------------------------------------------------------
    let mut order_dates = Vec::with_capacity(orders);
    {
        let mut custkey = Vec::with_capacity(orders);
        let mut totalprice = Vec::with_capacity(orders);
        let mut status = StrColumnBuilder::new();
        let mut priority = StrColumnBuilder::new();
        for _ in 0..orders {
            custkey.push(rng.gen_range(0..customers) as i64);
            let date = rng.gen_range(0..2557) as i64; // 7 years of days
            order_dates.push(date);
            totalprice.push(rng.gen_range(850.0..500_000.0));
            status.push(if rng.gen::<f64>() < 0.48 {
                "O"
            } else if rng.gen::<f64>() < 0.95 {
                "F"
            } else {
                "P"
            });
            priority.push(PRIORITIES[rng.gen_range(0..PRIORITIES.len())]);
        }
        catalog.register(Table::new(
            TableSchema::new(
                "orders",
                vec![
                    ColumnDef::new("o_orderkey", DataType::Int, false),
                    ColumnDef::new("o_custkey", DataType::Int, false),
                    ColumnDef::new("o_orderdate", DataType::Int, false),
                    ColumnDef::new("o_totalprice", DataType::Float, false),
                    ColumnDef::new("o_orderstatus", DataType::Str, false),
                    ColumnDef::new("o_orderpriority", DataType::Str, false),
                ],
            ),
            vec![
                Column::non_null(ColumnData::Int((0..orders as i64).collect())),
                Column::non_null(ColumnData::Int(custkey)),
                Column::non_null(ColumnData::Int(order_dates.clone())),
                Column::non_null(ColumnData::Float(totalprice)),
                status.finish(),
                priority.finish(),
            ],
        ));
    }

    // -- lineitem -------------------------------------------------------------------
    {
        let mut orderkey = Vec::with_capacity(lineitems);
        let mut partkey = Vec::with_capacity(lineitems);
        let mut suppkey = Vec::with_capacity(lineitems);
        let mut quantity = Vec::with_capacity(lineitems);
        let mut extprice = Vec::with_capacity(lineitems);
        let mut discount = Vec::with_capacity(lineitems);
        let mut shipdate = Vec::with_capacity(lineitems);
        let mut returnflag = StrColumnBuilder::new();
        for i in 0..lineitems {
            let ok = i / 4;
            orderkey.push(ok as i64);
            partkey.push(rng.gen_range(0..parts) as i64);
            suppkey.push(rng.gen_range(0..suppliers) as i64);
            let q = rng.gen_range(1..=50) as i64;
            quantity.push(q);
            extprice.push(q as f64 * rng.gen_range(900.0..2100.0));
            discount.push((rng.gen_range(0..=10) as f64) / 100.0);
            // Ship 1–120 days after the order date (correlated).
            shipdate.push(order_dates[ok] + rng.gen_range(1..=120) as i64);
            returnflag.push(RETURN_FLAGS[rng.gen_range(0..RETURN_FLAGS.len())]);
        }
        catalog.register(Table::new(
            TableSchema::new(
                "lineitem",
                vec![
                    ColumnDef::new("l_orderkey", DataType::Int, false),
                    ColumnDef::new("l_partkey", DataType::Int, false),
                    ColumnDef::new("l_suppkey", DataType::Int, false),
                    ColumnDef::new("l_quantity", DataType::Int, false),
                    ColumnDef::new("l_extendedprice", DataType::Float, false),
                    ColumnDef::new("l_discount", DataType::Float, false),
                    ColumnDef::new("l_shipdate", DataType::Int, false),
                    ColumnDef::new("l_returnflag", DataType::Str, false),
                ],
            ),
            vec![
                Column::non_null(ColumnData::Int(orderkey)),
                Column::non_null(ColumnData::Int(partkey)),
                Column::non_null(ColumnData::Int(suppkey)),
                Column::non_null(ColumnData::Int(quantity)),
                Column::non_null(ColumnData::Float(extprice)),
                Column::non_null(ColumnData::Float(discount)),
                Column::non_null(ColumnData::Int(shipdate)),
                returnflag.finish(),
            ],
        ));
    }

    let graph = fk_graph(customers, suppliers, parts, orders);
    TpchDataset { catalog, graph }
}

fn fk_graph(customers: usize, suppliers: usize, parts: usize, orders: usize) -> FkGraph {
    FkGraph {
        tables: vec![
            TableMeta {
                name: "lineitem".into(),
                alias: "l".into(),
                fks: vec![
                    Fk {
                        column: "l_orderkey".into(),
                        ref_table: "orders".into(),
                        ref_column: "o_orderkey".into(),
                    },
                    Fk {
                        column: "l_partkey".into(),
                        ref_table: "part".into(),
                        ref_column: "p_partkey".into(),
                    },
                    Fk {
                        column: "l_suppkey".into(),
                        ref_table: "supplier".into(),
                        ref_column: "s_suppkey".into(),
                    },
                ],
                numeric_preds: vec![
                    NumericPredCol { column: "l_quantity".into(), min: 1, max: 50 },
                    NumericPredCol { column: "l_shipdate".into(), min: 0, max: 2677 },
                ],
                string_preds: vec![StringPredCol {
                    column: "l_returnflag".into(),
                    values: RETURN_FLAGS.iter().map(|s| s.to_string()).collect(),
                }],
                group_cols: vec!["l_quantity".into()],
            },
            TableMeta {
                name: "orders".into(),
                alias: "o".into(),
                fks: vec![Fk {
                    column: "o_custkey".into(),
                    ref_table: "customer".into(),
                    ref_column: "c_custkey".into(),
                }],
                numeric_preds: vec![
                    NumericPredCol { column: "o_orderdate".into(), min: 0, max: 2556 },
                    NumericPredCol {
                        column: "o_orderkey".into(),
                        min: 0,
                        max: orders as i64 - 1,
                    },
                ],
                string_preds: vec![
                    StringPredCol {
                        column: "o_orderpriority".into(),
                        values: PRIORITIES.iter().map(|s| s.to_string()).collect(),
                    },
                    StringPredCol {
                        column: "o_orderstatus".into(),
                        values: vec!["O".into(), "F".into(), "P".into()],
                    },
                ],
                group_cols: vec![],
            },
            TableMeta {
                name: "customer".into(),
                alias: "c".into(),
                fks: vec![Fk {
                    column: "c_nationkey".into(),
                    ref_table: "nation".into(),
                    ref_column: "n_nationkey".into(),
                }],
                numeric_preds: vec![NumericPredCol {
                    column: "c_custkey".into(),
                    min: 0,
                    max: customers as i64 - 1,
                }],
                string_preds: vec![StringPredCol {
                    column: "c_mktsegment".into(),
                    values: SEGMENTS.iter().map(|s| s.to_string()).collect(),
                }],
                group_cols: vec!["c_nationkey".into()],
            },
            TableMeta {
                name: "part".into(),
                alias: "p".into(),
                fks: vec![],
                numeric_preds: vec![
                    NumericPredCol { column: "p_size".into(), min: 1, max: 50 },
                    NumericPredCol {
                        column: "p_partkey".into(),
                        min: 0,
                        max: parts as i64 - 1,
                    },
                ],
                string_preds: vec![
                    StringPredCol {
                        column: "p_type".into(),
                        values: TYPES.iter().map(|s| s.to_string()).collect(),
                    },
                    StringPredCol {
                        column: "p_brand".into(),
                        values: vec!["Brand#11".into(), "Brand#23".into(), "Brand#55".into()],
                    },
                ],
                group_cols: vec!["p_size".into()],
            },
            TableMeta {
                name: "supplier".into(),
                alias: "s".into(),
                fks: vec![Fk {
                    column: "s_nationkey".into(),
                    ref_table: "nation".into(),
                    ref_column: "n_nationkey".into(),
                }],
                numeric_preds: vec![NumericPredCol {
                    column: "s_suppkey".into(),
                    min: 0,
                    max: suppliers as i64 - 1,
                }],
                string_preds: vec![],
                group_cols: vec!["s_nationkey".into()],
            },
            TableMeta {
                name: "partsupp".into(),
                alias: "ps".into(),
                fks: vec![
                    Fk {
                        column: "ps_partkey".into(),
                        ref_table: "part".into(),
                        ref_column: "p_partkey".into(),
                    },
                    Fk {
                        column: "ps_suppkey".into(),
                        ref_table: "supplier".into(),
                        ref_column: "s_suppkey".into(),
                    },
                ],
                numeric_preds: vec![NumericPredCol {
                    column: "ps_availqty".into(),
                    min: 1,
                    max: 9999,
                }],
                string_preds: vec![],
                group_cols: vec![],
            },
            TableMeta {
                name: "nation".into(),
                alias: "na".into(),
                fks: vec![Fk {
                    column: "n_regionkey".into(),
                    ref_table: "region".into(),
                    ref_column: "r_regionkey".into(),
                }],
                numeric_preds: vec![NumericPredCol {
                    column: "n_nationkey".into(),
                    min: 0,
                    max: 24,
                }],
                string_preds: vec![],
                group_cols: vec!["n_regionkey".into()],
            },
            TableMeta {
                name: "region".into(),
                alias: "r".into(),
                fks: vec![],
                numeric_preds: vec![NumericPredCol {
                    column: "r_regionkey".into(),
                    min: 0,
                    max: 4,
                }],
                string_preds: vec![StringPredCol {
                    column: "r_name".into(),
                    values: REGIONS.iter().map(|s| s.to_string()).collect(),
                }],
                group_cols: vec![],
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::querygen::{generate_queries, QueryGenConfig};
    use sparksim::engine::Engine;

    fn small() -> TpchDataset {
        generate(&TpchConfig { customer_rows: 300, seed: 11 })
    }

    #[test]
    fn ratios_follow_tpch() {
        let d = small();
        assert_eq!(d.catalog.len(), 8);
        let c = d.catalog.stats("customer").unwrap().row_count;
        let o = d.catalog.stats("orders").unwrap().row_count;
        let l = d.catalog.stats("lineitem").unwrap().row_count;
        assert_eq!(o, c * 10);
        assert_eq!(l, o * 4);
        assert_eq!(d.catalog.stats("region").unwrap().row_count, 5);
        assert_eq!(d.catalog.stats("nation").unwrap().row_count, 25);
    }

    #[test]
    fn lineitem_dates_follow_orders() {
        let d = small();
        let l = d.catalog.table("lineitem").unwrap();
        let o = d.catalog.table("orders").unwrap();
        let (ColumnData::Int(lok), ColumnData::Int(lsd)) =
            (&l.column("l_orderkey").unwrap().data, &l.column("l_shipdate").unwrap().data)
        else {
            panic!()
        };
        let ColumnData::Int(odate) = &o.column("o_orderdate").unwrap().data else {
            panic!()
        };
        for i in (0..lok.len()).step_by(997) {
            let ok = lok[i] as usize;
            assert!(lsd[i] > odate[ok] && lsd[i] <= odate[ok] + 120);
        }
    }

    #[test]
    fn generated_queries_run() {
        let d = small();
        let mut rng = StdRng::seed_from_u64(5);
        let queries = generate_queries(&d.graph, &QueryGenConfig::default(), 30, &mut rng);
        let engine = Engine::new(d.catalog);
        for q in &queries {
            let plans = engine.plan_candidates(q).unwrap_or_else(|e| panic!("{q}: {e}"));
            engine.execute_plan(&plans[0]).unwrap_or_else(|e| panic!("{q}: {e}"));
        }
    }

    #[test]
    fn scale_targets_sf100() {
        let d = small();
        assert!(d.simulated_scale() > 1000.0, "small data stands in for 100 GB");
    }
}
