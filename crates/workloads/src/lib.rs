//! # workloads — synthetic datasets and query workloads
//!
//! Stand-ins for the paper's two benchmarks (Sec. V-A):
//!
//! * [`imdb`] — an IMDB/JOB-like schema with Zipf skew and cross-column
//!   correlation, scaled down from the paper's 7.2 GB snapshot;
//! * [`tpch`] — a TPC-H-like schema with near-uniform distributions,
//!   standing in for scale factor 100;
//! * [`querygen`] — FK-graph random-walk query generation producing the
//!   paper's two workload types (numeric predicates, string predicates)
//!   with 0–5 joins;
//! * [`job_templates`] — JOB-style named query families over the IMDB
//!   schema (the paper's workload is the JOB extension);
//! * [`util`] — Zipf sampling and helpers.

#![warn(missing_docs)]

pub mod imdb;
pub mod job_templates;
pub mod querygen;
pub mod tpch;
pub mod util;

pub use imdb::{ImdbConfig, ImdbDataset};
pub use querygen::{FkGraph, QueryGenConfig};
pub use tpch::{TpchConfig, TpchDataset};
