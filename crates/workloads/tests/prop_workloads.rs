//! Property tests for the workload generators: every generated query must
//! parse, resolve and plan against its own dataset, for arbitrary
//! generator settings and seeds.

use proptest::prelude::*;
use sparksim::plan::planner::{Planner, PlannerOptions};
use sparksim::plan::spec::resolve;
use sparksim::sql::parser::parse;
use workloads::querygen::{generate_queries, QueryGenConfig};

// Generating datasets is the expensive part: build them once.
fn imdb() -> &'static workloads::ImdbDataset {
    use std::sync::OnceLock;
    static DATA: OnceLock<workloads::ImdbDataset> = OnceLock::new();
    DATA.get_or_init(|| {
        workloads::imdb::generate(&workloads::imdb::ImdbConfig { title_rows: 300, seed: 1 })
    })
}

fn tpch() -> &'static workloads::TpchDataset {
    use std::sync::OnceLock;
    static DATA: OnceLock<workloads::TpchDataset> = OnceLock::new();
    DATA.get_or_init(|| {
        workloads::tpch::generate(&workloads::tpch::TpchConfig { customer_rows: 120, seed: 1 })
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn imdb_queries_always_plan(
        seed in 0u64..10_000,
        max_joins in 0usize..5,
        string_prob in 0.0f64..1.0,
    ) {
        let data = imdb();
        let cfg = QueryGenConfig {
            max_joins,
            string_predicate_prob: string_prob,
            ..QueryGenConfig::default()
        };
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        for sql in generate_queries(&data.graph, &cfg, 6, &mut rng) {
            let q = parse(&sql).map_err(|e| TestCaseError::fail(format!("{sql}: {e}")))?;
            let spec = resolve(&q, &data.catalog)
                .map_err(|e| TestCaseError::fail(format!("{sql}: {e}")))?;
            let plans = Planner::new(&data.catalog, PlannerOptions::default()).enumerate(&spec);
            prop_assert!(!plans.is_empty(), "{}", sql);
            // Join count in the plan never exceeds the generator's cap.
            for p in &plans {
                prop_assert!(p.join_nodes().len() <= max_joins, "{}", sql);
            }
        }
    }

    #[test]
    fn tpch_queries_always_plan(seed in 0u64..10_000) {
        let data = tpch();
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        for sql in generate_queries(&data.graph, &QueryGenConfig::default(), 6, &mut rng) {
            let q = parse(&sql).map_err(|e| TestCaseError::fail(format!("{sql}: {e}")))?;
            let spec = resolve(&q, &data.catalog)
                .map_err(|e| TestCaseError::fail(format!("{sql}: {e}")))?;
            let plans = Planner::new(&data.catalog, PlannerOptions::default()).enumerate(&spec);
            prop_assert!(!plans.is_empty(), "{}", sql);
        }
    }
}
