//! Property tests for the call-graph reachability core: the
//! conservative design of `analysis::panic` is sound only if adding
//! edges (more conservatism) can never *shrink* the reachable set.

use analysis::callgraph::reachable;
use proptest::prelude::*;

const N: usize = 24;

fn arb_edges() -> impl Strategy<Value = Vec<(usize, usize)>> {
    prop::collection::vec((0..N, 0..N), 0..96)
}

fn arb_roots() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0..N, 0..6)
}

proptest! {
    /// Adding any set of extra edges keeps every previously reachable
    /// node reachable.
    #[test]
    fn reachability_is_monotone_under_edge_addition(
        base in arb_edges(),
        extra in arb_edges(),
        roots in arb_roots(),
    ) {
        let before = reachable(N, &base, &roots);
        let mut grown = base.clone();
        grown.extend(extra);
        let after = reachable(N, &grown, &roots);
        for (i, (&b, &a)) in before.iter().zip(after.iter()).enumerate() {
            prop_assert!(
                !b || a,
                "node {i} was reachable but became unreachable after adding edges"
            );
        }
    }

    /// Adding roots is monotone too, and every root is reachable.
    #[test]
    fn reachability_is_monotone_under_root_addition(
        edges in arb_edges(),
        roots in arb_roots(),
        extra_roots in arb_roots(),
    ) {
        let before = reachable(N, &edges, &roots);
        let mut grown = roots.clone();
        grown.extend(extra_roots.iter().copied());
        let after = reachable(N, &edges, &grown);
        for (&b, &a) in before.iter().zip(after.iter()) {
            prop_assert!(!b || a);
        }
        for &r in &grown {
            prop_assert!(after[r], "root {r} not reachable from itself");
        }
    }

    /// Reachability is the transitive closure: a reached node's
    /// successors are reached, and nothing outside the closure is.
    #[test]
    fn reachable_set_is_closed_and_minimal(
        edges in arb_edges(),
        roots in arb_roots(),
    ) {
        let reached = reachable(N, &edges, &roots);
        // Closed under edges.
        for &(u, v) in &edges {
            prop_assert!(!reached[u] || reached[v], "edge {u}->{v} escapes the closure");
        }
        // Minimal: every reached node has a reached predecessor or is a
        // root (checked by peeling one BFS layer at a time is overkill —
        // instead re-run reachability and require equality, which holds
        // exactly when the set is the least fixed point the BFS computes).
        let again = reachable(N, &edges, &roots);
        prop_assert_eq!(reached, again, "reachability must be deterministic");
    }
}
