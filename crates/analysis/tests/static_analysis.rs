//! End-to-end checks of the hot-path reachability analysis against the
//! *real* workspace sources — including the negative controls CI relies
//! on: injecting a fresh panic or allocation site into a hot serving
//! function must push that file over its allowance.

use analysis::lint::{apply_allowlist, collect_sources, Allowlist};
use analysis::panic::{check_sources, RULE_HOT_ALLOC, RULE_HOT_PANIC};
use std::path::Path;

/// Workspace root (two levels up from this crate's manifest).
fn root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

fn workspace_sources() -> Vec<(String, String)> {
    let sources = collect_sources(root()).expect("workspace sources readable");
    assert!(
        sources.iter().any(|(p, _)| p.ends_with("serving/mod.rs")),
        "expected the serving module among {} sources",
        sources.len()
    );
    sources
}

fn hotpath_allowlist() -> Allowlist {
    Allowlist::load(&root().join("hotpath-allowlist.tsv")).expect("allowlist parses")
}

/// The committed tree itself must be clean: every reachable panic /
/// alloc site is either justified inline or grandfathered.
#[test]
fn workspace_is_clean_under_allowlist() {
    let violations = check_sources(&workspace_sources());
    let outcome = apply_allowlist(&violations, &hotpath_allowlist());
    assert!(
        outcome.over.is_empty(),
        "unjustified hot-path findings:\n{}",
        outcome
            .over
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Splices `payload` into `ServingModel::predict_many_inner`'s body,
/// in memory only, and returns the doctored source set.
fn inject_into_serving(payload: &str) -> Vec<(String, String)> {
    let anchor = "let _span = telemetry::span(\"serving.predict\");";
    let mut sources = workspace_sources();
    let mut hit = false;
    for (path, text) in &mut sources {
        if path.ends_with("crates/core/src/serving/mod.rs") {
            assert!(text.contains(anchor), "anchor line moved; update this test");
            *text = text.replace(anchor, &format!("{anchor}\n        {payload}"));
            hit = true;
        }
    }
    assert!(hit, "serving module not found");
    sources
}

/// Negative control: a fresh, unjustified `unwrap()` reachable from
/// `ServingModel::predict` must fail the ratchet.
#[test]
fn injected_unwrap_is_caught() {
    let sources = inject_into_serving("let _poisoned = plans.first().unwrap();");
    let violations = check_sources(&sources);
    let outcome = apply_allowlist(&violations, &hotpath_allowlist());
    assert!(
        outcome.over.iter().any(|v| {
            v.rule == RULE_HOT_PANIC
                && v.path.ends_with("serving/mod.rs")
                && v.message.contains(".unwrap()")
        }),
        "injected unwrap not flagged; over = {:?}",
        outcome.over.iter().map(|v| v.to_string()).collect::<Vec<_>>()
    );
}

/// Negative control: a fresh, unjustified allocation (`Vec::new` +
/// `push`) reachable from `ServingModel::predict` must fail the ratchet.
#[test]
fn injected_alloc_is_caught() {
    let sources = inject_into_serving(
        "let mut _poisoned: Vec<u32> = Vec::new();\n        _poisoned.push(1);",
    );
    let violations = check_sources(&sources);
    let outcome = apply_allowlist(&violations, &hotpath_allowlist());
    let hits: Vec<_> = outcome
        .over
        .iter()
        .filter(|v| v.rule == RULE_HOT_ALLOC && v.path.ends_with("serving/mod.rs"))
        .collect();
    assert!(
        hits.iter().any(|v| v.message.contains("Vec::new"))
            && hits.iter().any(|v| v.message.contains(".push")),
        "injected allocation not flagged; over = {:?}",
        outcome.over.iter().map(|v| v.to_string()).collect::<Vec<_>>()
    );
}

/// A justification comment on the injected site silences it — the
/// analyzer reacts to the tag, not to luck.
#[test]
fn justified_injection_is_accepted() {
    let sources = inject_into_serving(
        "// PANIC-FREE: negative-control probe, never merged.\n        \
         let _poisoned = plans.first().unwrap();",
    );
    let violations = check_sources(&sources);
    let outcome = apply_allowlist(&violations, &hotpath_allowlist());
    assert!(
        outcome.over.is_empty(),
        "justified injection still flagged: {:?}",
        outcome.over.iter().map(|v| v.to_string()).collect::<Vec<_>>()
    );
}
