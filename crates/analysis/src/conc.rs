//! Concurrency correctness tooling: the lock-acquisition-order graph
//! behind `raal-lint`'s `lock-order` rule, and a front door to the
//! workspace's schedule-exploring model checker.
//!
//! ## Static side: lock-order graphs
//!
//! A deadlock needs a cycle: thread 1 holds A and wants B while thread 2
//! holds B and wants A. The classic prevention is a global acquisition
//! order, and the classic *check* is a graph: every function contributes
//! an edge `X → Y` for each lock Y it (potentially) acquires while X is
//! (potentially) held; any cycle in the workspace-wide graph is a
//! potential inversion. [`LockOrderGraph`] is that graph. The linter
//! feeds it lexically extracted per-function acquisition sequences
//! (`crate::lint`, which owns the source scanning) and turns each
//! reported [`Cycle`] into a finding.
//!
//! The analysis is deliberately over-approximate: it does not track
//! guard drops, so `lock(A); drop(a); lock(B)` still contributes
//! `A → B`. That errs on the side of flagging — a shrink-only allowlist
//! entry is the escape hatch for a false positive, and the model checker
//! is the oracle for whether a flagged order can actually deadlock.
//!
//! ## Dynamic side: the model checker
//!
//! The deterministic schedule explorer lives in [`raal_sync::model`]
//! (it must sit below every crate that uses the sync shim); this module
//! re-exports it so analysis consumers have one import path for both
//! halves:
//!
//! ```
//! use analysis::conc::{explore, McConfig};
//!
//! explore("counter-handoff", McConfig::default(), || {
//!     // concurrent scenario built on raal_sync primitives
//! });
//! ```

use std::collections::{BTreeMap, BTreeSet};

pub use raal_sync::model::{
    check, explore, replay, Config as McConfig, Failure as McFailure, FailureKind as McFailureKind,
    Report as McReport,
};

/// Where one lock-order edge was observed: the function whose body
/// acquires the two locks, and the site of the *second* acquisition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// Workspace-relative path of the file.
    pub path: String,
    /// 1-based line of the later acquisition.
    pub line: usize,
    /// Name of the function containing the sequence.
    pub function: String,
}

/// One potential lock-order inversion: a cycle in the acquisition-order
/// graph, with one witness edge per step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cycle {
    /// The lock keys around the cycle, starting from the
    /// lexicographically smallest (for deterministic reporting);
    /// `nodes[i]` is acquired while `nodes[i-1]` is held, wrapping.
    pub nodes: Vec<String>,
    /// `witnesses[i]` observed the edge `nodes[i] → nodes[(i+1) % n]`.
    pub witnesses: Vec<Witness>,
}

impl Cycle {
    /// Renders `a → b → a` for messages.
    pub fn describe(&self) -> String {
        let mut s = self.nodes.join(" → ");
        if let Some(first) = self.nodes.first() {
            s.push_str(" → ");
            s.push_str(first);
        }
        s
    }
}

/// The workspace-wide lock-acquisition-order graph. Nodes are lock
/// keys (the linter uses `crate::receiver-expression`); a directed edge
/// `A → B` records that some function acquires B while A may be held.
#[derive(Debug, Default)]
pub struct LockOrderGraph {
    /// Edge → the first witness that contributed it (one is enough for
    /// a report; determinism comes from insertion checks, not counts).
    edges: BTreeMap<(String, String), Witness>,
}

impl LockOrderGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one function's acquisition sequence: `sites` are the lock
    /// keys in source order, each with the 1-based line of its
    /// acquisition. Every ordered pair of *distinct* keys contributes an
    /// edge (over-approximating guard lifetimes); repeat acquisitions of
    /// the same key add nothing.
    pub fn add_sequence(&mut self, function: &str, path: &str, sites: &[(String, usize)]) {
        for (i, (held, _)) in sites.iter().enumerate() {
            for (later, line) in sites.iter().skip(i + 1) {
                if held == later {
                    continue;
                }
                self.edges
                    .entry((held.clone(), later.clone()))
                    .or_insert_with(|| Witness {
                        path: path.to_string(),
                        line: *line,
                        function: function.to_string(),
                    });
            }
        }
    }

    /// Number of distinct edges (for reporting / tests).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Every elementary cycle reachable in the graph, deduplicated by
    /// node set and reported deterministically (nodes rotated so the
    /// smallest key leads, cycles sorted by their node lists). For the
    /// sizes a lint pass produces (tens of nodes) the DFS is plenty.
    pub fn cycles(&self) -> Vec<Cycle> {
        let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for (from, to) in self.edges.keys() {
            adj.entry(from).or_default().push(to);
        }
        for nexts in adj.values_mut() {
            nexts.sort_unstable();
        }

        let mut found: BTreeMap<BTreeSet<String>, Cycle> = BTreeMap::new();
        let nodes: Vec<&str> = adj.keys().copied().collect();
        for &start in &nodes {
            // DFS from each node; a path returning to `start` is a cycle.
            let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
            let mut path: Vec<&str> = vec![start];
            let mut on_path: BTreeSet<&str> = [start].into();
            while let Some((node, next_idx)) = stack.last_mut() {
                let nexts = adj.get(*node).map(Vec::as_slice).unwrap_or(&[]);
                if *next_idx >= nexts.len() {
                    on_path.remove(*node);
                    path.pop();
                    stack.pop();
                    continue;
                }
                let next = nexts[*next_idx];
                *next_idx += 1;
                if next == start {
                    self.record_cycle(&path, &mut found);
                } else if !on_path.contains(next) && next > start {
                    // Only extend through nodes larger than `start`: each
                    // cycle is then discovered exactly once, from its
                    // smallest node.
                    stack.push((next, 0));
                    path.push(next);
                    on_path.insert(next);
                }
            }
        }
        found.into_values().collect()
    }

    fn record_cycle(&self, path: &[&str], found: &mut BTreeMap<BTreeSet<String>, Cycle>) {
        let key: BTreeSet<String> = path.iter().map(|s| s.to_string()).collect();
        if found.contains_key(&key) {
            return;
        }
        let nodes: Vec<String> = path.iter().map(|s| s.to_string()).collect();
        let n = nodes.len();
        let witnesses: Vec<Witness> = (0..n)
            .map(|i| {
                let edge = (nodes[i].clone(), nodes[(i + 1) % n].clone());
                self.edges.get(&edge).cloned().unwrap_or_else(|| Witness {
                    path: String::new(),
                    line: 0,
                    function: String::new(),
                })
            })
            .collect();
        found.insert(key, Cycle { nodes, witnesses });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(g: &mut LockOrderGraph, f: &str, locks: &[&str]) {
        let sites: Vec<(String, usize)> = locks
            .iter()
            .enumerate()
            .map(|(i, l)| (l.to_string(), i + 1))
            .collect();
        g.add_sequence(f, "crates/x/src/lib.rs", &sites);
    }

    #[test]
    fn consistent_order_has_no_cycles() {
        let mut g = LockOrderGraph::new();
        seq(&mut g, "f", &["a", "b"]);
        seq(&mut g, "g", &["a", "b", "c"]);
        seq(&mut g, "h", &["b", "c"]);
        assert!(g.cycles().is_empty());
    }

    #[test]
    fn two_lock_inversion_is_one_cycle() {
        let mut g = LockOrderGraph::new();
        seq(&mut g, "f", &["a", "b"]);
        seq(&mut g, "g", &["b", "a"]);
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].nodes, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(cycles[0].describe(), "a → b → a");
        assert_eq!(cycles[0].witnesses.len(), 2);
        assert_eq!(cycles[0].witnesses[0].function, "f");
        assert_eq!(cycles[0].witnesses[1].function, "g");
    }

    #[test]
    fn three_way_rotation_is_detected_once() {
        let mut g = LockOrderGraph::new();
        seq(&mut g, "f", &["a", "b"]);
        seq(&mut g, "g", &["b", "c"]);
        seq(&mut g, "h", &["c", "a"]);
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].nodes.len(), 3);
        assert_eq!(cycles[0].nodes[0], "a");
    }

    #[test]
    fn non_adjacent_acquisitions_still_form_edges() {
        // f holds a (maybe) while taking c: lock(a); lock(b); lock(c).
        let mut g = LockOrderGraph::new();
        seq(&mut g, "f", &["a", "b", "c"]);
        seq(&mut g, "g", &["c", "a"]);
        let cycles = g.cycles();
        // Both a→c→a (from the non-adjacent pair) and a→b→c→a exist.
        assert!(cycles.iter().any(|c| c.nodes == ["a", "c"]), "{cycles:?}");
        assert!(cycles.iter().any(|c| c.nodes == ["a", "b", "c"]), "{cycles:?}");
    }

    #[test]
    fn repeat_acquisitions_of_one_lock_are_not_self_edges() {
        let mut g = LockOrderGraph::new();
        seq(&mut g, "f", &["a", "a", "a"]);
        assert_eq!(g.edge_count(), 0);
        assert!(g.cycles().is_empty());
    }

    #[test]
    fn checker_reexport_is_callable() {
        // The conc front door drives the same explorer raal_sync exposes.
        let report = check(McConfig::default(), || {}).expect("empty scenario passes");
        assert_eq!(report.schedules, 1);
        assert!(report.complete);
    }
}
