//! `raal-lint` — the workspace source linter.
//!
//! ```text
//! cargo run -p analysis --bin raal-lint [-- --root <dir>] [--update] [--strict]
//! ```
//!
//! Runs two rule families, each with its own shrink-only allowlist:
//!
//! * the per-file / cross-file lint rules against `lint-allowlist.tsv`;
//! * the hot-path reachability rules (`hot-panic` / `hot-alloc`,
//!   see `analysis::panic`) against `hotpath-allowlist.tsv`.
//!
//! Exit codes: `0` clean (all findings grandfathered), `1` violations
//! (a file exceeds its allowance, or `--strict` and an allowlist is
//! stale), `2` usage / IO error.
//!
//! `--update` rewrites both allowlists to exactly cover the current
//! findings — but only ever *shrinks* each total allowance; it refuses
//! to grow one, so new violations must be fixed rather than
//! re-grandfathered. (The very first `--update` for a missing file may
//! bootstrap it.)

use std::env;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use analysis::lint::{apply_allowlist, lint_root, Allowlist, Outcome, Violation};
use analysis::panic::check_root;

const ALLOWLIST_FILE: &str = "lint-allowlist.tsv";
const HOTPATH_ALLOWLIST_FILE: &str = "hotpath-allowlist.tsv";

fn usage() -> ExitCode {
    eprintln!("usage: raal-lint [--root <dir>] [--update] [--strict]");
    ExitCode::from(2)
}

/// Walks upward from `start` to the workspace root (identified by the
/// allowlist file or a `Cargo.toml` with a `[workspace]` table).
fn find_root(start: PathBuf) -> PathBuf {
    let mut dir = start.clone();
    loop {
        if dir.join(ALLOWLIST_FILE).is_file() {
            return dir;
        }
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return dir;
                }
            }
        }
        if !dir.pop() {
            return start;
        }
    }
}

/// One rule family: its findings and the allowlist they ratchet
/// against.
struct Family {
    label: &'static str,
    allow_path: PathBuf,
    violations: Vec<Violation>,
    allow: Allowlist,
}

impl Family {
    fn load(label: &'static str, allow_path: PathBuf, violations: Vec<Violation>) -> Option<Self> {
        match Allowlist::load(&allow_path) {
            Ok(allow) => Some(Self { label, allow_path, violations, allow }),
            Err(e) => {
                eprintln!("raal-lint: {e}");
                None
            }
        }
    }

    /// Shrink-only rewrite; `Ok(true)` when the file was written.
    fn update(&self) -> Result<bool, ExitCode> {
        let next = Allowlist::covering(&self.violations);
        // The shrink-only ratchet applies once a baseline exists; the
        // very first --update is allowed to grandfather the current tree.
        let bootstrap = !self.allow_path.is_file();
        if !bootstrap && next.total() > self.allow.total() {
            eprintln!(
                "raal-lint: refusing to grow {} ({} -> {} sites); fix the new violations instead:",
                self.allow_path.display(),
                self.allow.total(),
                next.total()
            );
            for v in &apply_allowlist(&self.violations, &self.allow).over {
                eprintln!("  {v}");
            }
            return Err(ExitCode::FAILURE);
        }
        if let Err(e) = std::fs::write(&self.allow_path, next.render()) {
            eprintln!("raal-lint: writing {}: {e}", self.allow_path.display());
            return Err(ExitCode::from(2));
        }
        println!(
            "raal-lint: wrote {} ({} grandfathered sites, was {})",
            self.allow_path.display(),
            next.total(),
            self.allow.total()
        );
        Ok(true)
    }

    fn report(&self) -> Outcome {
        let outcome = apply_allowlist(&self.violations, &self.allow);
        for v in &outcome.over {
            eprintln!("{v}");
        }
        for (rule, path, allowed, actual) in &outcome.stale {
            eprintln!(
                "raal-lint: stale allowance [{rule}] {path}: {allowed} allowed but {actual} \
                 found — run with --update to ratchet down"
            );
        }
        println!(
            "raal-lint[{}]: {} finding(s): {} over allowance, {} grandfathered, {} stale \
             allowance(s)",
            self.label,
            self.violations.len(),
            outcome.over.len(),
            outcome.grandfathered,
            outcome.stale.len()
        );
        outcome
    }
}

fn families(root: &Path) -> Result<Vec<Family>, ExitCode> {
    let lint = match lint_root(root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("raal-lint: scanning {}: {e}", root.display());
            return Err(ExitCode::from(2));
        }
    };
    let hot = match check_root(root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("raal-lint: hot-path scan of {}: {e}", root.display());
            return Err(ExitCode::from(2));
        }
    };
    let fams = [
        Family::load("lint", root.join(ALLOWLIST_FILE), lint),
        Family::load("hotpath", root.join(HOTPATH_ALLOWLIST_FILE), hot),
    ];
    let mut out = Vec::new();
    for f in fams {
        match f {
            Some(f) => out.push(f),
            None => return Err(ExitCode::from(2)),
        }
    }
    Ok(out)
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut update = false;
    let mut strict = false;
    let mut argv = env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--root" => match argv.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            "--update" => update = true,
            "--strict" => strict = true,
            "--help" | "-h" => {
                println!("raal-lint: RAAL workspace source linter");
                println!();
                println!("  --root <dir>  workspace root (default: auto-detected from cwd)");
                println!(
                    "  --update      rewrite {ALLOWLIST_FILE} / {HOTPATH_ALLOWLIST_FILE} \
                     (shrink-only ratchet)"
                );
                println!("  --strict      fail on stale allowlist entries too");
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }
    let root = root
        .unwrap_or_else(|| find_root(env::current_dir().unwrap_or_else(|_| PathBuf::from("."))));

    let fams = match families(&root) {
        Ok(f) => f,
        Err(code) => return code,
    };

    if update {
        for f in &fams {
            if let Err(code) = f.update() {
                return code;
            }
        }
        return ExitCode::SUCCESS;
    }

    let mut failed = false;
    for f in &fams {
        let outcome = f.report();
        failed |= !outcome.over.is_empty() || (strict && !outcome.stale.is_empty());
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
