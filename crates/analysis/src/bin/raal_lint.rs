//! `raal-lint` — the workspace source linter.
//!
//! ```text
//! cargo run -p analysis --bin raal-lint [-- --root <dir>] [--update] [--strict]
//! ```
//!
//! Exit codes: `0` clean (all findings grandfathered), `1` violations
//! (a file exceeds its allowance, or `--strict` and the allowlist is
//! stale), `2` usage / IO error.
//!
//! `--update` rewrites `lint-allowlist.tsv` to exactly cover the current
//! findings — but only ever *shrinks* the total allowance; it refuses to
//! grow it, so new violations must be fixed rather than re-grandfathered.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

use analysis::lint::{apply_allowlist, lint_root, Allowlist};

const ALLOWLIST_FILE: &str = "lint-allowlist.tsv";

fn usage() -> ExitCode {
    eprintln!("usage: raal-lint [--root <dir>] [--update] [--strict]");
    ExitCode::from(2)
}

/// Walks upward from `start` to the workspace root (identified by the
/// allowlist file or a `Cargo.toml` with a `[workspace]` table).
fn find_root(start: PathBuf) -> PathBuf {
    let mut dir = start.clone();
    loop {
        if dir.join(ALLOWLIST_FILE).is_file() {
            return dir;
        }
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return dir;
                }
            }
        }
        if !dir.pop() {
            return start;
        }
    }
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut update = false;
    let mut strict = false;
    let mut argv = env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--root" => match argv.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            "--update" => update = true,
            "--strict" => strict = true,
            "--help" | "-h" => {
                println!("raal-lint: RAAL workspace source linter");
                println!();
                println!("  --root <dir>  workspace root (default: auto-detected from cwd)");
                println!("  --update      rewrite {ALLOWLIST_FILE} (shrink-only ratchet)");
                println!("  --strict      fail on stale allowlist entries too");
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }
    let root = root
        .unwrap_or_else(|| find_root(env::current_dir().unwrap_or_else(|_| PathBuf::from("."))));

    let violations = match lint_root(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("raal-lint: scanning {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let allow_path = root.join(ALLOWLIST_FILE);
    let allow = match Allowlist::load(&allow_path) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("raal-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if update {
        let next = Allowlist::covering(&violations);
        // The shrink-only ratchet applies once a baseline exists; the
        // very first --update is allowed to grandfather the current tree.
        let bootstrap = !allow_path.is_file();
        if !bootstrap && next.total() > allow.total() {
            eprintln!(
                "raal-lint: refusing to grow the allowlist ({} -> {} sites); fix the new \
                 violations instead:",
                allow.total(),
                next.total()
            );
            for v in &apply_allowlist(&violations, &allow).over {
                eprintln!("  {v}");
            }
            return ExitCode::FAILURE;
        }
        if let Err(e) = std::fs::write(&allow_path, next.render()) {
            eprintln!("raal-lint: writing {}: {e}", allow_path.display());
            return ExitCode::from(2);
        }
        println!(
            "raal-lint: wrote {} ({} grandfathered sites, was {})",
            allow_path.display(),
            next.total(),
            allow.total()
        );
        return ExitCode::SUCCESS;
    }

    let outcome = apply_allowlist(&violations, &allow);
    for v in &outcome.over {
        eprintln!("{v}");
    }
    for (rule, path, allowed, actual) in &outcome.stale {
        eprintln!(
            "raal-lint: stale allowance [{rule}] {path}: {allowed} allowed but {actual} found — \
             run with --update to ratchet down"
        );
    }
    let failed = !outcome.over.is_empty() || (strict && !outcome.stale.is_empty());
    println!(
        "raal-lint: {} finding(s): {} over allowance, {} grandfathered, {} stale allowance(s)",
        violations.len(),
        outcome.over.len(),
        outcome.grandfathered,
        outcome.stale.len()
    );
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
