//! Plan-DAG validation.
//!
//! Encoded plans carry their operator tree twice: as explicit child
//! lists (consumed by the node-aware attention layer) and as signed
//! adjacency rows inside the structure-embedding block (children `+1`,
//! parent `−1`). The model silently mispredicts — or panics inside a
//! kernel — if either is corrupt, so this module checks the invariants
//! the encoding relies on:
//!
//! * every child index is in range and **precedes** its parent
//!   (bottom-up topological order, which also rules out cycles),
//! * no duplicated child edges, no node with two parents,
//! * exactly one root (a node that is nobody's child), and it is the
//!   last node — the execution order the LSTM consumes ends at the root,
//! * every `+1` child entry in a signed adjacency row has the matching
//!   `−1` entry in the child's row, and no stray non-zero entries exist.
//!
//! [`validate_children`] checks the child lists alone;
//! [`validate_signed_rows`] additionally cross-checks the structure
//! block against them (entries beyond the encoder's `max_nodes`
//! truncation are exempt, matching how the encoder emits them).

use std::fmt;

/// A structural defect in a plan DAG.
#[derive(Debug, Clone, PartialEq)]
pub enum DagError {
    /// The plan has no nodes.
    Empty,
    /// A child index is not a valid node id.
    ChildOutOfRange {
        /// Referring node.
        node: usize,
        /// Offending child id.
        child: usize,
        /// Number of nodes in the plan.
        len: usize,
    },
    /// A child does not precede its parent — a forward reference or a
    /// cycle; either way execution order is undefined.
    NotTopological {
        /// Referring node.
        node: usize,
        /// Offending child id (`>= node`).
        child: usize,
    },
    /// The same child appears twice under one parent.
    DuplicateChild {
        /// Referring node.
        node: usize,
        /// Duplicated child id.
        child: usize,
    },
    /// A node is claimed as a child by two different parents.
    MultipleParents {
        /// The contested node.
        node: usize,
        /// First claiming parent.
        first: usize,
        /// Second claiming parent.
        second: usize,
    },
    /// More than one node has no parent (an orphan subtree).
    MultipleRoots {
        /// First parentless node.
        first: usize,
        /// Second parentless node.
        second: usize,
    },
    /// The unique root is not the last node in execution order.
    RootNotLast {
        /// The parentless node.
        root: usize,
        /// Index of the last node.
        last: usize,
    },
    /// A signed adjacency row has `+1` at a column that is not one of
    /// the node's children (an orphan child entry).
    OrphanChildEntry {
        /// Row (node) index.
        node: usize,
        /// Offending column.
        col: usize,
    },
    /// A child's row is missing the `−1` entry pointing back at its
    /// parent (every `+1` must be mirrored by a `−1`).
    MissingParentEntry {
        /// The child whose row is wrong.
        child: usize,
        /// The parent the row should point at.
        parent: usize,
    },
    /// A signed adjacency entry is neither `0`, `+1` nor `−1`.
    BadEntry {
        /// Row (node) index.
        node: usize,
        /// Offending column.
        col: usize,
        /// The value found.
        value: f32,
    },
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::Empty => write!(f, "plan has no nodes"),
            DagError::ChildOutOfRange { node, child, len } => {
                write!(f, "node {node} lists child {child}, but the plan has {len} nodes")
            }
            DagError::NotTopological { node, child } => write!(
                f,
                "node {node} lists child {child} which does not precede it \
                 (forward reference or cycle breaks topological order)"
            ),
            DagError::DuplicateChild { node, child } => {
                write!(f, "node {node} lists child {child} twice")
            }
            DagError::MultipleParents { node, first, second } => {
                write!(f, "node {node} has two parents: {first} and {second}")
            }
            DagError::MultipleRoots { first, second } => {
                write!(f, "plan has multiple roots: nodes {first} and {second} are parentless")
            }
            DagError::RootNotLast { root, last } => write!(
                f,
                "root is node {root} but execution order ends at node {last} \
                 (the root must be last)"
            ),
            DagError::OrphanChildEntry { node, col } => write!(
                f,
                "signed adjacency row {node} has +1 at column {col}, \
                 which is not one of its children"
            ),
            DagError::MissingParentEntry { child, parent } => write!(
                f,
                "signed adjacency row {child} is missing the -1 entry for its parent {parent}"
            ),
            DagError::BadEntry { node, col, value } => write!(
                f,
                "signed adjacency row {node} column {col} holds {value}, expected 0, +1 or -1"
            ),
        }
    }
}

impl std::error::Error for DagError {}

/// Validates the child lists of a plan: in-range, strictly preceding,
/// duplicate-free, single-parent, and a unique root that is the last
/// node. `children[i]` lists the ids of node `i`'s inputs.
pub fn validate_children(children: &[Vec<usize>]) -> Result<(), DagError> {
    let n = children.len();
    if n == 0 {
        return Err(DagError::Empty);
    }
    let mut parent: Vec<Option<usize>> = vec![None; n];
    for (node, kids) in children.iter().enumerate() {
        let mut seen: Vec<usize> = Vec::with_capacity(kids.len());
        for &child in kids {
            if child >= n {
                return Err(DagError::ChildOutOfRange { node, child, len: n });
            }
            if child >= node {
                return Err(DagError::NotTopological { node, child });
            }
            if seen.contains(&child) {
                return Err(DagError::DuplicateChild { node, child });
            }
            seen.push(child);
            if let Some(first) = parent[child] {
                return Err(DagError::MultipleParents { node: child, first, second: node });
            }
            parent[child] = Some(node);
        }
    }
    let mut roots = (0..n).filter(|&i| parent[i].is_none());
    // At least one parentless node always exists: edges only point
    // backwards, so the last node can have no parent.
    let root = roots
        .next()
        .expect("finite forward-edge-free DAG has a parentless node");
    if let Some(second) = roots.next() {
        return Err(DagError::MultipleRoots { first: root, second });
    }
    if root != n - 1 {
        return Err(DagError::RootNotLast { root, last: n - 1 });
    }
    Ok(())
}

/// Cross-checks signed adjacency rows against the child lists.
///
/// `rows[i]` is node `i`'s structure row; only the first
/// `width.min(rows[i].len())` columns are inspected (the encoder
/// truncates plans longer than its `max_nodes` to that window, so
/// out-of-window relations legitimately vanish). The child lists must
/// already satisfy [`validate_children`].
pub fn validate_signed_rows(
    children: &[Vec<usize>],
    rows: &[Vec<f32>],
    width: usize,
) -> Result<(), DagError> {
    validate_children(children)?;
    let n = children.len();
    assert_eq!(rows.len(), n, "one signed row per node");

    // Parent map (validated single-parent above).
    let mut parent: Vec<Option<usize>> = vec![None; n];
    for (node, kids) in children.iter().enumerate() {
        for &c in kids {
            parent[c] = Some(node);
        }
    }

    for (node, row) in rows.iter().enumerate() {
        let window = width.min(row.len());
        for (col, &v) in row.iter().take(window).enumerate() {
            let is_child = children[node].contains(&col);
            let is_parent = parent[node] == Some(col);
            if v == 1.0 {
                if !is_child {
                    return Err(DagError::OrphanChildEntry { node, col });
                }
            } else if v == -1.0 {
                if !is_parent {
                    // A -1 at a non-parent column means the rows and the
                    // child lists disagree about who points at whom.
                    return Err(DagError::OrphanChildEntry { node, col });
                }
            } else if v != 0.0 {
                return Err(DagError::BadEntry { node, col, value: v });
            } else if is_child {
                // The child edge exists but the row says nothing: the +1
                // entry was lost (within the visible window).
                return Err(DagError::OrphanChildEntry { node, col });
            }
        }
        // Every +1 child entry must be mirrored by the child's -1: check
        // from the child lists so a zeroed child row is caught.
        for &c in &children[node] {
            if node < width && c < rows.len() {
                let crow = &rows[c];
                if node < crow.len() && crow[node] != -1.0 {
                    return Err(DagError::MissingParentEntry { child: c, parent: node });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// scan -> filter -> agg chain plus a two-child join root.
    fn valid_children() -> Vec<Vec<usize>> {
        vec![vec![], vec![0], vec![], vec![1, 2]]
    }

    fn rows_for(children: &[Vec<usize>], width: usize) -> Vec<Vec<f32>> {
        let n = children.len();
        let mut parent = vec![None; n];
        for (i, kids) in children.iter().enumerate() {
            for &c in kids {
                parent[c] = Some(i);
            }
        }
        (0..n)
            .map(|i| {
                let mut row = vec![0.0f32; width];
                for &c in &children[i] {
                    if c < width {
                        row[c] = 1.0;
                    }
                }
                if let Some(p) = parent[i] {
                    if p < width {
                        row[p] = -1.0;
                    }
                }
                row
            })
            .collect()
    }

    #[test]
    fn valid_tree_passes() {
        validate_children(&valid_children()).unwrap();
        let rows = rows_for(&valid_children(), 8);
        validate_signed_rows(&valid_children(), &rows, 8).unwrap();
    }

    #[test]
    fn single_node_plan_passes() {
        validate_children(&[vec![]]).unwrap();
    }

    #[test]
    fn empty_plan_rejected() {
        assert_eq!(validate_children(&[]), Err(DagError::Empty));
    }

    #[test]
    fn cycle_rejected_as_topology_violation() {
        // 0 -> 1 -> 0: node 0 references the later node 1.
        let children = vec![vec![1], vec![0]];
        assert_eq!(
            validate_children(&children),
            Err(DagError::NotTopological { node: 0, child: 1 })
        );
    }

    #[test]
    fn self_loop_rejected() {
        let children = vec![vec![], vec![1]];
        assert_eq!(
            validate_children(&children),
            Err(DagError::NotTopological { node: 1, child: 1 })
        );
    }

    #[test]
    fn out_of_range_child_rejected() {
        let children = vec![vec![], vec![7]];
        assert_eq!(
            validate_children(&children),
            Err(DagError::ChildOutOfRange { node: 1, child: 7, len: 2 })
        );
    }

    #[test]
    fn duplicated_root_rejected() {
        // Nodes 1 and 2 are both parentless: two roots.
        let children = vec![vec![], vec![0], vec![]];
        assert_eq!(
            validate_children(&children),
            Err(DagError::MultipleRoots { first: 1, second: 2 })
        );
    }

    #[test]
    fn double_parent_rejected() {
        let children = vec![vec![], vec![0], vec![0, 1]];
        assert_eq!(
            validate_children(&children),
            Err(DagError::MultipleParents { node: 0, first: 1, second: 2 })
        );
    }

    #[test]
    fn duplicate_child_rejected() {
        let children = vec![vec![], vec![0, 0]];
        assert_eq!(
            validate_children(&children),
            Err(DagError::DuplicateChild { node: 1, child: 0 })
        );
    }

    #[test]
    fn orphan_adjacency_entry_rejected() {
        let children = valid_children();
        let mut rows = rows_for(&children, 8);
        rows[0][2] = 1.0; // claims a child it does not have
        assert_eq!(
            validate_signed_rows(&children, &rows, 8),
            Err(DagError::OrphanChildEntry { node: 0, col: 2 })
        );
    }

    #[test]
    fn missing_parent_entry_rejected() {
        let children = valid_children();
        let mut rows = rows_for(&children, 8);
        rows[1][3] = 0.0; // child 1 forgets its parent 3
        assert_eq!(
            validate_signed_rows(&children, &rows, 8),
            Err(DagError::MissingParentEntry { child: 1, parent: 3 })
        );
    }

    #[test]
    fn non_unit_entry_rejected() {
        let children = valid_children();
        let mut rows = rows_for(&children, 8);
        rows[3][0] = 0.5;
        assert_eq!(
            validate_signed_rows(&children, &rows, 8),
            Err(DagError::BadEntry { node: 3, col: 0, value: 0.5 })
        );
    }

    #[test]
    fn truncated_rows_are_exempt_beyond_window() {
        // Width-2 window: node 3's edges to 1 and 2 fall partly outside.
        let children = valid_children();
        let rows = rows_for(&children, 2);
        validate_signed_rows(&children, &rows, 2).unwrap();
    }

    #[test]
    fn errors_render_precise_messages() {
        let e = DagError::NotTopological { node: 0, child: 1 };
        assert!(e.to_string().contains("cycle"));
        let e = DagError::MultipleRoots { first: 1, second: 2 };
        assert!(e.to_string().contains("multiple roots"));
    }
}
