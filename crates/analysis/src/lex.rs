//! The shared hand lexer behind `raal-lint` and the call-graph passes.
//!
//! Everything here is deliberately *lexical*: a small state machine
//! strips comments and string literals without parsing Rust, which
//! keeps the analysis dependency-free and robust across editions. The
//! same [`Views`] triple feeds the per-file lint rules
//! ([`crate::lint`]), the whole-workspace call-graph extractor
//! ([`crate::callgraph`]) and the hot-path panic/alloc catalogs
//! ([`crate::panic`]), so offsets and line numbers agree everywhere.
//!
//! Two hardening details matter for rule windows:
//!
//! * The lexer understands raw string literals (`r#"…"#`, any hash
//!   depth) and *nested* block comments, so a rule scanning the
//!   blanked view never fires on text inside either.
//! * Justification-comment checks ([`justified_in_window`]) compare the
//!   raw text against the comment-blanked view line by line, so a
//!   marker like `SAFETY:` or `PANIC-FREE:` only counts when it sits
//!   inside an actual comment — the same token smuggled into a string
//!   or raw string literal does not satisfy a rule.

use std::ops::Range;

/// Lexically processed views of one source file, all byte-for-byte the
/// same length as the original (newlines preserved), so offsets and
/// line numbers agree across views.
pub struct Views {
    /// Original text.
    pub raw: String,
    /// Comments blanked to spaces; string literals kept verbatim.
    pub code: String,
    /// Comments *and* string/char literal contents blanked.
    pub blanked: String,
}

/// Byte offset of the start of each line, for offset → line mapping.
pub fn line_starts(text: &str) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, b) in text.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// 1-based line number of the byte at `offset`.
pub fn line_of(starts: &[usize], offset: usize) -> usize {
    starts.partition_point(|&s| s <= offset)
}

#[derive(Clone, Copy, PartialEq)]
enum Lex {
    Normal,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Builds the comment-stripped and string-blanked views of `raw`.
pub fn lex_views(raw: &str) -> Views {
    let bytes = raw.as_bytes();
    let mut code: Vec<u8> = bytes.to_vec();
    let mut blanked: Vec<u8> = bytes.to_vec();
    let mut state = Lex::Normal;
    let mut i = 0;
    let n = bytes.len();

    // Blank byte `j` in the given views (newlines always survive).
    let blank = |buf: &mut [u8], j: usize| {
        if buf[j] != b'\n' {
            buf[j] = b' ';
        }
    };

    while i < n {
        let b = bytes[i];
        match state {
            Lex::Normal => {
                if b == b'/' && i + 1 < n && bytes[i + 1] == b'/' {
                    state = Lex::LineComment;
                    blank(&mut code, i);
                    blank(&mut blanked, i);
                } else if b == b'/' && i + 1 < n && bytes[i + 1] == b'*' {
                    state = Lex::BlockComment(1);
                    blank(&mut code, i);
                    blank(&mut blanked, i);
                } else if b == b'"' {
                    state = Lex::Str;
                } else if b == b'r' || b == b'b' {
                    // r"..."# / br#"..."# raw strings, b"..." byte strings.
                    let mut j = i + 1;
                    if b == b'b' && j < n && bytes[j] == b'r' {
                        j += 1;
                    }
                    if b == b'b' && j == i + 1 && j < n && bytes[j] == b'"' {
                        state = Lex::Str;
                        i = j;
                    } else if bytes.get(i + 1) == Some(&b'"') && b == b'r' {
                        state = Lex::RawStr(0);
                        i += 1;
                    } else if j > i + 1 || (b == b'r' && bytes.get(j).is_some_and(|&c| c == b'#')) {
                        let mut hashes = 0u32;
                        let mut k = j;
                        while k < n && bytes[k] == b'#' {
                            hashes += 1;
                            k += 1;
                        }
                        if hashes > 0 && k < n && bytes[k] == b'"' {
                            state = Lex::RawStr(hashes);
                            i = k;
                        }
                    }
                } else if b == b'\'' {
                    // Char literal vs lifetime: 'x' or '\..' is a char.
                    if i + 1 < n && bytes[i + 1] == b'\\' {
                        state = Lex::Char;
                    } else if i + 2 < n && bytes[i + 2] == b'\'' && bytes[i + 1] != b'\'' {
                        blank(&mut blanked, i + 1);
                        i += 2;
                    }
                    // Otherwise a lifetime: leave untouched.
                }
            }
            Lex::LineComment => {
                if b == b'\n' {
                    state = Lex::Normal;
                } else {
                    blank(&mut code, i);
                    blank(&mut blanked, i);
                }
            }
            Lex::BlockComment(depth) => {
                blank(&mut code, i);
                blank(&mut blanked, i);
                if b == b'*' && i + 1 < n && bytes[i + 1] == b'/' {
                    blank(&mut code, i + 1);
                    blank(&mut blanked, i + 1);
                    i += 1;
                    state = if depth == 1 {
                        Lex::Normal
                    } else {
                        Lex::BlockComment(depth - 1)
                    };
                } else if b == b'/' && i + 1 < n && bytes[i + 1] == b'*' {
                    blank(&mut code, i + 1);
                    blank(&mut blanked, i + 1);
                    i += 1;
                    state = Lex::BlockComment(depth + 1);
                }
            }
            Lex::Str => {
                if b == b'\\' && i + 1 < n {
                    blank(&mut blanked, i);
                    blank(&mut blanked, i + 1);
                    i += 1;
                } else if b == b'"' {
                    state = Lex::Normal;
                } else {
                    blank(&mut blanked, i);
                }
            }
            Lex::RawStr(hashes) => {
                if b == b'"' {
                    let mut k = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && k < n && bytes[k] == b'#' {
                        seen += 1;
                        k += 1;
                    }
                    if seen == hashes {
                        i = k - 1;
                        state = Lex::Normal;
                    } else {
                        blank(&mut blanked, i);
                    }
                } else {
                    blank(&mut blanked, i);
                }
            }
            Lex::Char => {
                if b == b'\\' && i + 1 < n {
                    blank(&mut blanked, i);
                    blank(&mut blanked, i + 1);
                    i += 1;
                } else if b == b'\'' {
                    state = Lex::Normal;
                } else {
                    blank(&mut blanked, i);
                }
            }
        }
        i += 1;
    }

    Views {
        raw: raw.to_string(),
        code: String::from_utf8(code).expect("blanking preserves UTF-8"),
        blanked: String::from_utf8(blanked).expect("blanking preserves UTF-8"),
    }
}

/// Whether `b` can appear inside a Rust identifier.
pub fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Offsets of whole-word occurrences of `word` in `text`.
pub fn find_word(text: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut from = 0;
    while let Some(pos) = text[from..].find(word) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + word.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + word.len();
    }
    out
}

/// Byte ranges of `#[cfg(test)]`- or `#[test]`-gated item bodies.
pub fn test_ranges(blanked: &str) -> Vec<Range<usize>> {
    let mut ranges: Vec<Range<usize>> = Vec::new();
    let bytes = blanked.as_bytes();
    for marker in ["#[cfg(test)]", "#[test]"] {
        let mut from = 0;
        while let Some(pos) = blanked[from..].find(marker) {
            let at = from + pos;
            from = at + marker.len();
            // The attribute gates the next item: scan to its `{` body
            // (or bail at `;` — e.g. `#[cfg(test)] use ...;`).
            let mut i = at + marker.len();
            let mut open = None;
            while i < bytes.len() {
                match bytes[i] {
                    b'{' => {
                        open = Some(i);
                        break;
                    }
                    b';' => break,
                    _ => i += 1,
                }
            }
            let Some(open) = open else { continue };
            let close = match_brace(bytes, open);
            ranges.push(at..close);
        }
    }
    ranges.sort_by_key(|r| r.start);
    ranges
}

/// Whether `offset` falls inside any of `ranges`.
pub fn in_ranges(ranges: &[Range<usize>], offset: usize) -> bool {
    ranges.iter().any(|r| r.contains(&offset))
}

/// Byte ranges of `use` declarations (keyword through `;`), which may
/// span several lines for grouped imports.
pub fn use_ranges(blanked: &str) -> Vec<Range<usize>> {
    let bytes = blanked.as_bytes();
    find_word(blanked, "use")
        .into_iter()
        .map(|at| {
            let end = bytes[at..]
                .iter()
                .position(|&b| b == b';')
                .map_or(bytes.len(), |p| at + p + 1);
            at..end
        })
        .collect()
}

/// Whether the path is test-only by location (integration tests and
/// criterion benches).
pub fn is_test_path(rel: &str) -> bool {
    rel.starts_with("tests/") || rel.contains("/tests/") || rel.contains("/benches/")
}

/// The `crates/<name>/` component of a relative path, if any.
pub fn crate_of(rel: &str) -> Option<&str> {
    rel.strip_prefix("crates/").and_then(|rest| rest.split('/').next())
}

/// Offset one past the `}` matching the `{` at `open` (or `len` when
/// the file ends unbalanced).
pub fn match_brace(bytes: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    for (j, &b) in bytes.iter().enumerate().skip(open) {
        if b == b'{' {
            depth += 1;
        } else if b == b'}' {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
    }
    bytes.len()
}

/// A named function: `at` is the offset of the `fn` keyword and `range`
/// spans its body braces, both in the blanked view.
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Offset of the `fn` keyword.
    pub at: usize,
    /// Byte range of the body (`{` through `}` inclusive).
    pub range: Range<usize>,
}

/// Lexically located function bodies. `fn` pointer types (`fn(..)`) and
/// bodyless trait-method declarations are skipped; closures attribute
/// to their enclosing named function.
pub fn fn_spans(blanked: &str) -> Vec<FnSpan> {
    let bytes = blanked.as_bytes();
    let mut out = Vec::new();
    for at in find_word(blanked, "fn") {
        let mut i = at + 2;
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        let name_start = i;
        while i < bytes.len() && is_ident_byte(bytes[i]) {
            i += 1;
        }
        if i == name_start {
            continue; // `fn(..)` pointer type, not an item
        }
        let name = blanked[name_start..i].to_string();
        let mut open = None;
        while i < bytes.len() {
            match bytes[i] {
                b'{' => {
                    open = Some(i);
                    break;
                }
                b';' => break, // bodyless declaration
                _ => i += 1,
            }
        }
        let Some(open) = open else { continue };
        out.push(FnSpan { name, at, range: open..match_brace(bytes, open) });
    }
    out
}

/// Count of (possibly overlapping-free) occurrences of `pat` in `text`.
fn occurrences(text: &str, pat: &str) -> usize {
    if pat.is_empty() {
        return 0;
    }
    let mut n = 0;
    let mut from = 0;
    while let Some(p) = text[from..].find(pat) {
        n += 1;
        from += p + pat.len();
    }
    n
}

/// True when at least one occurrence of `pat` on this line sits inside
/// a comment: occurrences in the raw text outnumber those in the
/// comment-blanked [`Views::code`] view of the same line. A marker
/// inside a string or raw string literal survives into the code view,
/// so it does *not* count as a justification.
pub fn comment_contains(raw_line: &str, code_line: &str, pat: &str) -> bool {
    occurrences(raw_line, pat) > occurrences(code_line, pat)
}

/// Whether any of `pats` appears *in a comment* within the `window`
/// lines preceding 1-based `line` (inclusive of the line itself, so a
/// trailing same-line comment counts). The window extends upward across
/// any contiguous run of comment/attribute lines directly above it, so
/// a long doc section still reaches the site it documents.
pub fn justified_in_window(
    raw_lines: &[&str],
    code_lines: &[&str],
    line: usize,
    window: usize,
    pats: &[&str],
) -> bool {
    let hi = line.min(raw_lines.len());
    let mut lo = line.saturating_sub(window);
    while lo > 0 {
        let t = raw_lines[lo - 1].trim_start();
        if t.starts_with("//") || t.starts_with("#[") || t.starts_with("/*") || t.starts_with('*') {
            lo -= 1;
        } else {
            break;
        }
    }
    (lo..hi).any(|i| pats.iter().any(|p| comment_contains(raw_lines[i], code_lines[i], p)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn views_preserve_length_and_lines() {
        let src = "fn f() {\n    // comment\n    let s = \"str\";\n}\n";
        let v = lex_views(src);
        assert_eq!(v.raw.len(), src.len());
        assert_eq!(v.code.len(), src.len());
        assert_eq!(v.blanked.len(), src.len());
        assert_eq!(v.raw.lines().count(), v.code.lines().count());
    }

    #[test]
    fn raw_strings_blank_at_every_hash_depth() {
        for src in [
            "let a = r\"unsafe .unwrap()\";",
            "let a = r#\"unsafe .unwrap()\"#;",
            "let a = r##\"unsafe \"# .unwrap()\"##;",
            "let a = br#\"unsafe .unwrap()\"#;",
        ] {
            let v = lex_views(src);
            assert!(!v.blanked.contains("unwrap"), "{src} -> {}", v.blanked);
            assert!(!v.blanked.contains("unsafe"), "{src} -> {}", v.blanked);
            // The code view keeps string contents (only comments blank).
            assert!(v.code.contains("unwrap"), "{src} -> {}", v.code);
        }
    }

    #[test]
    fn nested_block_comments_blank_fully() {
        let src = "/* outer /* inner .unwrap() */ still comment */ fn f() {}";
        let v = lex_views(src);
        assert!(!v.blanked.contains("unwrap"), "{}", v.blanked);
        assert!(!v.code.contains("still comment"), "{}", v.code);
        assert!(v.blanked.contains("fn f()"), "{}", v.blanked);
    }

    #[test]
    fn comment_contains_rejects_markers_in_strings() {
        let src = "let j = \"SAFETY: smuggled\"; // SAFETY: real\n";
        let v = lex_views(src);
        let raw: Vec<&str> = v.raw.lines().collect();
        let code: Vec<&str> = v.code.lines().collect();
        // Raw has two occurrences, code keeps only the string one: the
        // surplus proves a comment occurrence exists.
        assert!(comment_contains(raw[0], code[0], "SAFETY:"));

        let src = "let j = r#\"SAFETY: smuggled\"#;\n";
        let v = lex_views(src);
        let raw: Vec<&str> = v.raw.lines().collect();
        let code: Vec<&str> = v.code.lines().collect();
        assert!(!comment_contains(raw[0], code[0], "SAFETY:"));
    }

    #[test]
    fn justified_window_sees_trailing_same_line_comment() {
        let src = "fn f(xs: &[f32]) -> f32 {\n    xs[0] // PANIC-FREE: len checked above\n}\n";
        let v = lex_views(src);
        let raw: Vec<&str> = v.raw.lines().collect();
        let code: Vec<&str> = v.code.lines().collect();
        assert!(justified_in_window(&raw, &code, 2, 4, &["PANIC-FREE:"]));
        assert!(!justified_in_window(&raw, &code, 1, 4, &["PANIC-FREE:"]));
    }

    #[test]
    fn fn_spans_carry_name_offsets() {
        let src = "fn a() { b(); }\npub fn b() {}\n";
        let spans = fn_spans(&lex_views(src).blanked);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "a");
        assert_eq!(spans[1].name, "b");
        assert!(spans[0].at < spans[1].at);
        assert!(spans[0].range.contains(&src.find("b();").unwrap()));
    }
}
