//! Hot-path panic-freedom and allocation-freedom: the `hot-panic` and
//! `hot-alloc` rules.
//!
//! Combines the [`crate::callgraph`] reachability sweep from the
//! declared entry points ([`crate::callgraph::HOT_ENTRY_POINTS`]) with
//! two lexical *site catalogs* over each reachable function body:
//!
//! * **Panic sources** — `.unwrap()` / `.expect(..)`, the panicking
//!   macros (`panic!`, `unreachable!`, `todo!`, `unimplemented!`,
//!   `assert!` / `assert_eq!` / `assert_ne!` — `debug_assert*` is
//!   exempt, it compiles out of release serving builds), slice/array
//!   indexing and slicing (`x[i]`, `&h[a..b]`), and `/` / `%` where the
//!   divisor is not a literal and neither operand is visibly a float
//!   (integer division by zero panics; float division cannot).
//! * **Allocation sources** — `Vec::new` / `with_capacity` / `vec![..]`
//!   / `.push(` / `.extend(` / `.resize(` / `.reserve(` / `.insert(` /
//!   `.append(`, `Box::new`, `String` constructors, `.to_string(` /
//!   `.to_owned(` / `.to_vec(`, `format!`, `.collect(` and `.clone(`.
//!
//! A site inside a function reachable from a hot entry point must carry
//! a `// PANIC-FREE:` (resp. `// HOT-ALLOC:`) comment within the
//! preceding [`JUSTIFY_WINDOW`] lines stating *why* the panic cannot
//! fire (resp. why the allocation is acceptable — warmup-only, pool
//! refill, enabled-path-only telemetry, per-request bounded). The
//! marker must be a real comment; smuggling it inside a string does not
//! count ([`crate::lex::comment_contains`]). Unjustified sites fail
//! `raal-lint`, subject to the shrink-only `hotpath-allowlist.tsv`
//! ratchet, which mirrors `lint-allowlist.tsv`.
//!
//! Both catalogs are heuristic and *biased toward over-reporting* —
//! soundness caveats (what the lexical scan can miss, e.g. arithmetic
//! overflow or a panicking callee hidden behind a trait object that
//! also has zero workspace implementors) are documented in DESIGN.md
//! §16. The dynamic witness for the same property is the counting
//! global allocator test in `crates/core/tests/hotpath_alloc.rs`.

use crate::callgraph::{CallGraph, HOT_ENTRY_POINTS};
use crate::lex::{self, Views};
use crate::lint::Violation;

/// Rule id: panic source reachable from a hot entry point.
pub const RULE_HOT_PANIC: &str = "hot-panic";
/// Rule id: allocation source reachable from a hot entry point.
pub const RULE_HOT_ALLOC: &str = "hot-alloc";

/// Justification marker for panic sources.
pub const PANIC_FREE_TAG: &str = "PANIC-FREE:";
/// Justification marker for allocation sources.
pub const HOT_ALLOC_TAG: &str = "HOT-ALLOC:";

/// How many preceding lines may hold the justification comment.
pub const JUSTIFY_WINDOW: usize = 8;

/// Macros whose expansion can panic.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Keywords that may directly precede `[` without it being an index
/// expression (`&mut [f32]`, `return [0; 4]`, …).
const NON_INDEX_WORDS: &[&str] = &[
    "as", "box", "break", "const", "continue", "dyn", "else", "enum", "extern", "fn", "for", "if",
    "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref", "return", "static",
    "struct", "trait", "type", "unsafe", "use", "where", "while",
];

/// Allocation patterns searched verbatim in the blanked view.
const ALLOC_PATTERNS: &[&str] = &[
    "Vec::new(",
    "Vec::with_capacity(",
    "Vec::from(",
    "Box::new(",
    "String::new(",
    "String::from(",
    "String::with_capacity(",
    ".push(",
    ".extend(",
    ".append(",
    ".insert(",
    ".reserve(",
    ".resize(",
    ".collect(",
    ".to_string(",
    ".to_owned(",
    ".to_vec(",
    ".clone(",
];

/// Macros that allocate.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// One panic or allocation source found in a file.
#[derive(Debug, Clone)]
pub struct Site {
    /// Byte offset in the blanked view.
    pub at: usize,
    /// 1-based line number.
    pub line: usize,
    /// What was found (`.unwrap()`, `panic!`, `slice index`, …).
    pub what: String,
    /// `true` for a panic source, `false` for an allocation source.
    pub is_panic: bool,
}

/// Scans one file for panic sources.
pub fn panic_sites(views: &Views, starts: &[usize]) -> Vec<Site> {
    let blanked = &views.blanked;
    let bytes = blanked.as_bytes();
    let mut out = Vec::new();
    for pat in [".unwrap()", ".expect("] {
        let mut from = 0;
        while let Some(pos) = blanked[from..].find(pat) {
            let at = from + pos;
            from = at + pat.len();
            out.push(Site {
                at,
                line: lex::line_of(starts, at),
                what: format!("`{}`", pat.trim_end_matches('(')),
                is_panic: true,
            });
        }
    }
    for mac in PANIC_MACROS {
        for at in lex::find_word(blanked, mac) {
            let next = bytes[at + mac.len()..].iter().find(|b| !b.is_ascii_whitespace());
            if next == Some(&b'!') {
                out.push(Site {
                    at,
                    line: lex::line_of(starts, at),
                    what: format!("`{mac}!`"),
                    is_panic: true,
                });
            }
        }
    }
    index_sites(blanked, starts, &mut out);
    divrem_sites(blanked, starts, &mut out);
    out.sort_by_key(|s| s.at);
    out
}

/// Scans one file for allocation sources.
pub fn alloc_sites(views: &Views, starts: &[usize]) -> Vec<Site> {
    let blanked = &views.blanked;
    let bytes = blanked.as_bytes();
    let mut out = Vec::new();
    for pat in ALLOC_PATTERNS {
        let mut from = 0;
        while let Some(pos) = blanked[from..].find(pat) {
            let at = from + pos;
            from = at + pat.len();
            // `Vec::new(` must not match inside `SmallVec::new(`.
            if !pat.starts_with('.') && at > 0 && lex::is_ident_byte(bytes[at - 1]) {
                continue;
            }
            out.push(Site {
                at,
                line: lex::line_of(starts, at),
                what: format!("`{}`", pat.trim_end_matches('(')),
                is_panic: false,
            });
        }
    }
    for mac in ALLOC_MACROS {
        for at in lex::find_word(blanked, mac) {
            let next = bytes[at + mac.len()..].iter().find(|b| !b.is_ascii_whitespace());
            if next == Some(&b'!') {
                out.push(Site {
                    at,
                    line: lex::line_of(starts, at),
                    what: format!("`{mac}!`"),
                    is_panic: false,
                });
            }
        }
    }
    out.sort_by_key(|s| s.at);
    out
}

/// Index/slice expressions: a `[` whose preceding token is a value
/// (identifier that is not a keyword or lifetime, `)`, or `]`).
fn index_sites(blanked: &str, starts: &[usize], out: &mut Vec<Site>) {
    let bytes = blanked.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' {
            continue;
        }
        let mut p = i;
        while p > 0 && bytes[p - 1].is_ascii_whitespace() {
            p -= 1;
        }
        if p == 0 {
            continue;
        }
        let prev = bytes[p - 1];
        let is_index = if prev == b')' || prev == b']' {
            true
        } else if lex::is_ident_byte(prev) {
            let mut q = p - 1;
            while q > 0 && lex::is_ident_byte(bytes[q - 1]) {
                q -= 1;
            }
            let word = &blanked[q..p];
            let lifetime = q > 0 && bytes[q - 1] == b'\'';
            !lifetime && !NON_INDEX_WORDS.contains(&word) && !word.as_bytes()[0].is_ascii_digit()
        } else {
            false
        };
        if is_index {
            out.push(Site {
                at: i,
                line: lex::line_of(starts, i),
                what: "slice/array index".to_string(),
                is_panic: true,
            });
        }
    }
}

/// The token directly before byte `p` (identifier bytes plus `.` so
/// float literals like `1.0` read whole), or `""`.
fn token_before(blanked: &str, mut p: usize) -> &str {
    let bytes = blanked.as_bytes();
    while p > 0 && bytes[p - 1].is_ascii_whitespace() {
        p -= 1;
    }
    let end = p;
    while p > 0 && (lex::is_ident_byte(bytes[p - 1]) || bytes[p - 1] == b'.') {
        p -= 1;
    }
    &blanked[p..end]
}

fn looks_float(token: &str) -> bool {
    (token.contains('.') && token.bytes().any(|b| b.is_ascii_digit()))
        || token.ends_with("f32")
        || token.ends_with("f64")
}

/// `/` and `%` where the divisor is not a literal and neither operand
/// is visibly floating-point. Integer div/rem by zero panics; the
/// float cases (`1.0 / x`, `x / n as f32`) are filtered out because
/// float division cannot.
fn divrem_sites(blanked: &str, starts: &[usize], out: &mut Vec<Site>) {
    let bytes = blanked.as_bytes();
    let n = bytes.len();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'/' && b != b'%' {
            continue;
        }
        // Not part of `//`, `/*`, `*/` (blanked anyway) or `::`-ish ops.
        if b == b'/' && (bytes.get(i + 1) == Some(&b'/') || (i > 0 && bytes[i - 1] == b'/')) {
            continue;
        }
        // Dividend must be a value expression.
        let mut p = i;
        while p > 0 && bytes[p - 1].is_ascii_whitespace() {
            p -= 1;
        }
        if p == 0
            || !(lex::is_ident_byte(bytes[p - 1]) || bytes[p - 1] == b')' || bytes[p - 1] == b']')
        {
            continue;
        }
        if looks_float(token_before(blanked, i)) {
            continue;
        }
        // Divisor: skip an op-assign `=` then leading whitespace/parens.
        let mut k = i + 1;
        if k < n && bytes[k] == b'=' {
            k += 1;
        }
        while k < n && (bytes[k].is_ascii_whitespace() || bytes[k] == b'(' || bytes[k] == b'-') {
            k += 1;
        }
        let dstart = k;
        while k < n && (lex::is_ident_byte(bytes[k]) || bytes[k] == b'.' || bytes[k] == b'_') {
            k += 1;
        }
        let divisor = &blanked[dstart..k];
        if divisor.is_empty() {
            continue; // `/ *ptr` or similar — too opaque, skip.
        }
        if looks_float(divisor) {
            continue;
        }
        if divisor.as_bytes()[0].is_ascii_digit() && !divisor.contains('.') {
            continue; // integer literal divisor, assumed nonzero
        }
        // `x / n as f32` parses as `x / (n as f32)`: a float division.
        let mut w = k;
        while w < n && bytes[w].is_ascii_whitespace() {
            w += 1;
        }
        if blanked[w..].starts_with("as f32") || blanked[w..].starts_with("as f64") {
            continue;
        }
        let op = b as char;
        out.push(Site {
            at: i,
            line: lex::line_of(starts, i),
            what: format!("`{op}` with non-literal divisor"),
            is_panic: true,
        });
    }
}

/// Runs the hot-path rules over `(relative path, source)` pairs:
/// builds the workspace call graph, sweeps reachability from
/// [`HOT_ENTRY_POINTS`], and reports every unjustified panic/alloc
/// site inside a reachable non-test function. Violations carry the
/// witness call chain from the entry point.
pub fn check_sources(sources: &[(String, String)]) -> Vec<Violation> {
    let graph = CallGraph::build(sources);
    let roots = graph.entry_indices(HOT_ENTRY_POINTS);
    let reach = graph.reachable_from(&roots);
    let mut out = Vec::new();

    for (file, (rel, source)) in sources.iter().enumerate() {
        // Nodes of this file, innermost-first attribution below.
        let nodes: Vec<usize> =
            (0..graph.fns.len()).filter(|&i| graph.fns[i].file == file).collect();
        if nodes.iter().all(|&i| !reach.reached[i] || graph.fns[i].is_test) {
            continue;
        }
        let views = lex::lex_views(source);
        let starts = lex::line_starts(source);
        let raw_lines: Vec<&str> = views.raw.lines().collect();
        let code_lines: Vec<&str> = views.code.lines().collect();
        let mut sites = panic_sites(&views, &starts);
        sites.extend(alloc_sites(&views, &starts));
        for site in sites {
            // Innermost function containing the site.
            let Some(&owner) = nodes
                .iter()
                .filter(|&&i| graph.fns[i].body.contains(&site.at))
                .min_by_key(|&&i| graph.fns[i].body.len())
            else {
                continue;
            };
            let f = &graph.fns[owner];
            if f.is_test || !reach.reached[owner] {
                continue;
            }
            let (tag, rule) = if site.is_panic {
                (PANIC_FREE_TAG, RULE_HOT_PANIC)
            } else {
                (HOT_ALLOC_TAG, RULE_HOT_ALLOC)
            };
            if lex::justified_in_window(&raw_lines, &code_lines, site.line, JUSTIFY_WINDOW, &[tag])
            {
                continue;
            }
            out.push(Violation {
                rule,
                path: rel.clone(),
                line: site.line,
                message: format!(
                    "{} in `{}`, reachable from hot entry point via {} — justify with \
                     `// {tag} ...` or remove it from the hot path",
                    site.what,
                    f.qualified(),
                    describe_chain(&graph.chain(&reach, owner)),
                ),
            });
        }
    }
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    out
}

/// `a → b → c`, elided in the middle when the chain is long.
fn describe_chain(chain: &[String]) -> String {
    if chain.len() <= 5 {
        chain.join(" → ")
    } else {
        format!("{} → … → {}", chain[0], chain[chain.len() - 3..].join(" → "))
    }
}

/// [`check_sources`] over every Rust file under `root`.
pub fn check_root(root: &std::path::Path) -> std::io::Result<Vec<Violation>> {
    Ok(check_sources(&crate::lint::collect_sources(root)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sites_of(src: &str) -> (Vec<Site>, Vec<Site>) {
        let views = lex::lex_views(src);
        let starts = lex::line_starts(src);
        (panic_sites(&views, &starts), alloc_sites(&views, &starts))
    }

    #[test]
    fn panic_catalog_finds_the_usual_suspects() {
        let src = "fn f(x: Option<u8>, xs: &[u8], a: usize, b: usize) -> u8 {\n\
                   let v = x.unwrap();\n\
                   assert!(b > 0);\n\
                   let w = xs[a];\n\
                   let q = a / b;\n\
                   if v == 0 { panic!(\"zero\"); }\n\
                   w + q as u8\n}\n";
        let (p, _) = sites_of(src);
        let whats: Vec<&str> = p.iter().map(|s| s.what.as_str()).collect();
        assert!(whats.contains(&"`.unwrap()`"), "{whats:?}");
        assert!(whats.contains(&"`assert!`"), "{whats:?}");
        assert!(whats.contains(&"slice/array index"), "{whats:?}");
        assert!(whats.contains(&"`/` with non-literal divisor"), "{whats:?}");
        assert!(whats.contains(&"`panic!`"), "{whats:?}");
    }

    #[test]
    fn debug_assert_and_float_division_are_exempt() {
        let src = "fn f(x: f32, n: usize) -> f32 {\n\
                   debug_assert!(n > 0);\n\
                   let a = 1.0 / x;\n\
                   let b = x / n as f32;\n\
                   let c = x / 2.0;\n\
                   a + b + c\n}\n";
        let (p, _) = sites_of(src);
        assert!(p.is_empty(), "{p:?}");
    }

    #[test]
    fn types_and_attributes_are_not_index_sites() {
        let src = "#[derive(Clone)]\nstruct S<'a> { xs: &'a [f32] }\n\
                   fn f(s: &S<'_>) -> [f32; 2] { let _v: &mut [f32] = &mut [0.0; 2]; [0.0, 1.0] }\n";
        let (p, _) = sites_of(src);
        assert!(p.is_empty(), "{p:?}");
    }

    #[test]
    fn integer_literal_divisor_is_exempt_but_identifier_is_not() {
        let (p, _) = sites_of("fn f(a: usize) -> usize { a / 2 }\n");
        assert!(p.is_empty(), "{p:?}");
        let (p, _) = sites_of("fn f(a: usize, len: usize) -> usize { a % len }\n");
        assert_eq!(p.len(), 1, "{p:?}");
        assert_eq!(p[0].what, "`%` with non-literal divisor");
    }

    #[test]
    fn alloc_catalog_finds_vec_string_and_macros() {
        let src = "fn f() {\n\
                   let mut v = Vec::with_capacity(4);\n\
                   v.push(1u8);\n\
                   let s = format!(\"{v:?}\");\n\
                   let t = s.clone();\n\
                   let b = Box::new(t);\n\
                   drop(b);\n}\n";
        let (_, a) = sites_of(src);
        let whats: Vec<&str> = a.iter().map(|s| s.what.as_str()).collect();
        for want in ["`Vec::with_capacity`", "`.push`", "`format!`", "`.clone`", "`Box::new`"] {
            assert!(whats.contains(&want), "missing {want}: {whats:?}");
        }
    }

    fn hot_world(extra_in_kernel: &str) -> Vec<(String, String)> {
        vec![
            (
                "crates/core/src/serving/mod.rs".to_string(),
                "pub struct ServingModel;\nimpl ServingModel {\n    \
                 pub fn predict(&self) { step(); }\n}\n\
                 fn step() { nn::kernel(); }\n"
                    .to_string(),
            ),
            (
                "crates/nn/src/infer.rs".to_string(),
                format!("pub fn matmul_into() {{ kernel(); }}\npub fn kernel() {{ {extra_in_kernel} }}\n"),
            ),
            (
                "crates/nn/src/cold.rs".to_string(),
                // Not reachable from any entry point: free to panic.
                "pub fn cold_path(x: Option<u8>) -> u8 { x.unwrap() }\n".to_string(),
            ),
        ]
    }

    #[test]
    fn unjustified_panic_in_reachable_fn_is_flagged_with_chain() {
        let v = check_sources(&hot_world("let x: Option<u8> = None; let _ = x.unwrap();"));
        let hot: Vec<_> = v.iter().filter(|v| v.rule == RULE_HOT_PANIC).collect();
        assert_eq!(hot.len(), 1, "{v:?}");
        assert!(hot[0].message.contains("kernel"), "{}", hot[0].message);
        assert!(hot[0].message.contains("→"), "witness chain expected: {}", hot[0].message);
        // The unreachable cold path is not flagged.
        assert!(v.iter().all(|v| v.path != "crates/nn/src/cold.rs"), "{v:?}");
    }

    #[test]
    fn justified_sites_pass_but_string_smuggling_does_not() {
        let v = check_sources(&hot_world(
            "let x: Option<u8> = Some(1);\n    // PANIC-FREE: x is Some by construction.\n    \
             let _ = x.unwrap();",
        ));
        assert!(v.iter().all(|v| v.rule != RULE_HOT_PANIC), "{v:?}");
        let v = check_sources(&hot_world(
            "let _j = \"PANIC-FREE: smuggled\"; let x: Option<u8> = Some(1); let _ = x.unwrap();",
        ));
        assert!(v.iter().any(|v| v.rule == RULE_HOT_PANIC), "{v:?}");
    }

    #[test]
    fn unjustified_alloc_in_reachable_fn_is_flagged() {
        let v = check_sources(&hot_world("let mut buf: Vec<f32> = Vec::new(); buf.push(0.0);"));
        let hot: Vec<_> = v.iter().filter(|v| v.rule == RULE_HOT_ALLOC).collect();
        assert_eq!(hot.len(), 2, "{v:?}"); // Vec::new and .push
    }

    #[test]
    fn test_functions_are_never_flagged() {
        let mut world = hot_world("");
        world.push((
            "crates/nn/src/infer_test_helpers.rs".to_string(),
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { \
             let v: Vec<u8> = Vec::new(); Some(1).unwrap(); drop(v); }\n}\n"
                .to_string(),
        ));
        let v = check_sources(&world);
        assert!(v.iter().all(|v| !v.path.contains("test_helpers")), "{v:?}");
    }
}
