//! Static guarantees for the RAAL workspace.
//!
//! This crate holds the checks that run *before* any data touches the
//! network or any query touches the simulator:
//!
//! * [`shape`] — symbolic shape inference over the cost-model
//!   architecture. A [`shape::ModelShapeSpec`] describes every layer's
//!   parameter tensors and the dataflow between them; [`shape::check`]
//!   propagates a symbolic `[seq, dim]` activation through the spec and
//!   rejects any dimension mismatch with an error naming the offending
//!   layer. `core` builds the spec from the *actual* parameter store, so
//!   tampered checkpoints and inconsistent configs are caught at
//!   construction / load time.
//! * [`dag`] — structural validation of encoded plan DAGs:
//!   acyclicity (children strictly precede parents in the bottom-up
//!   arena), single root, no shared children, and consistency of the
//!   signed adjacency rows (+1 child entries matched by a −1 parent
//!   entry) used by `encoding::plan_encoder`.
//! * [`lint`] — the `raal-lint` source scanner enforcing repo-wide
//!   rules the compiler cannot: `// SAFETY:` comments on `unsafe`,
//!   no `Instant::now` outside telemetry, no `unwrap()`/`expect()` in
//!   serving-path library code, telemetry names drawn from the
//!   [`telemetry::schema`] registry, lock-acquisition-order consistency
//!   across the workspace, and `// ORDERING:` justifications on relaxed
//!   atomics — with an allowlist ratchet for grandfathered sites.
//! * [`conc`] — concurrency correctness: the [`conc::LockOrderGraph`]
//!   behind the lock-order lint rule, plus a re-export of the
//!   `raal_sync` deterministic schedule explorer ([`conc::check`] /
//!   [`conc::explore`]) used by the workspace's model-check tests.
//!
//! Run the linter with `cargo run -p analysis --bin raal-lint`.

#![deny(missing_docs)]

pub mod conc;
pub mod dag;
pub mod lint;
pub mod shape;

pub use dag::{validate_children, validate_signed_rows, DagError};
pub use shape::{check, Dim, ModelShapeSpec, ShapeError, ShapeOp, ShapeReport, Stage, SymShape};
