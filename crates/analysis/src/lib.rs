//! Static guarantees for the RAAL workspace.
//!
//! This crate holds the checks that run *before* any data touches the
//! network or any query touches the simulator:
//!
//! * [`shape`] — symbolic shape inference over the cost-model
//!   architecture. A [`shape::ModelShapeSpec`] describes every layer's
//!   parameter tensors and the dataflow between them; [`shape::check`]
//!   propagates a symbolic `[seq, dim]` activation through the spec and
//!   rejects any dimension mismatch with an error naming the offending
//!   layer. `core` builds the spec from the *actual* parameter store, so
//!   tampered checkpoints and inconsistent configs are caught at
//!   construction / load time.
//! * [`dag`] — structural validation of encoded plan DAGs:
//!   acyclicity (children strictly precede parents in the bottom-up
//!   arena), single root, no shared children, and consistency of the
//!   signed adjacency rows (+1 child entries matched by a −1 parent
//!   entry) used by `encoding::plan_encoder`.
//! * [`lint`] — the `raal-lint` source scanner enforcing repo-wide
//!   rules the compiler cannot: `// SAFETY:` comments on `unsafe`,
//!   no `Instant::now` outside telemetry, no `unwrap()`/`expect()` in
//!   serving-path library code, telemetry names drawn from the
//!   [`telemetry::schema`] registry, lock-acquisition-order consistency
//!   across the workspace, and `// ORDERING:` justifications on relaxed
//!   atomics — with an allowlist ratchet for grandfathered sites.
//! * [`conc`] — concurrency correctness: the [`conc::LockOrderGraph`]
//!   behind the lock-order lint rule, plus a re-export of the
//!   `raal_sync` deterministic schedule explorer ([`conc::check`] /
//!   [`conc::explore`]) used by the workspace's model-check tests.
//! * [`lex`] — the shared hand lexer: comment/string-blanked views of a
//!   source file, function spans, test ranges, and comment-aware
//!   justification windows. Feeds [`lint`], [`callgraph`] and
//!   [`mod@panic`].
//! * [`callgraph`] — a whole-workspace lexical call-graph extractor:
//!   function definitions keyed by enclosing `impl` type, call-site
//!   resolution by receiver type where inferable, and conservative
//!   fan-out edges for unknown callees. Powers hot-path reachability.
//! * [`mod@panic`] — panic-source and allocation-source catalogs plus the
//!   `hot-panic` / `hot-alloc` rules: every panic or heap-allocation
//!   site reachable from a declared serving entry point must carry a
//!   `// PANIC-FREE:` / `// HOT-ALLOC:` justification or an entry in
//!   the shrink-only `hotpath-allowlist.tsv` ratchet.
//!
//! Run the linter with `cargo run -p analysis --bin raal-lint`.

#![deny(missing_docs)]

pub mod callgraph;
pub mod conc;
pub mod dag;
pub mod lex;
pub mod lint;
pub mod panic;
pub mod shape;

pub use dag::{validate_children, validate_signed_rows, DagError};
pub use shape::{check, Dim, ModelShapeSpec, ShapeError, ShapeOp, ShapeReport, Stage, SymShape};
