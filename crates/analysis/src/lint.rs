//! `raal-lint`: source-level enforcement of repo invariants.
//!
//! A zero-external-dependency linter that scans the workspace's Rust
//! sources and enforces rules the compiler cannot:
//!
//! * **`unsafe-safety`** — every `unsafe` keyword (block, fn, impl) is
//!   preceded by a `// SAFETY:` comment or a `# Safety` doc section
//!   within the preceding lines, so each unsafe site documents the
//!   preconditions it relies on.
//! * **`instant-now`** — no `Instant::now` outside `crates/telemetry`;
//!   all timing goes through the telemetry clock so event logs share one
//!   origin.
//! * **`unwrap-in-lib`** — no `.unwrap()` / `.expect(` in non-test
//!   library code of `sparksim`, `nn`, `core` and `encoding`; serving
//!   paths return typed errors instead of panicking.
//! * **`span-names`** — telemetry span/counter/histogram/event names in
//!   non-test code are drawn from the [`telemetry::schema`] registry, so
//!   downstream log consumers can rely on a closed vocabulary.
//! * **`i8-intrinsic-safety`** — every `_mm*epi8*` intrinsic call site
//!   (the int8 inference tier's widening loads and conversions) sits
//!   inside a block documented by a `SAFETY` comment within the
//!   preceding lines; `use` declarations are exempt.
//! * **`atomic-ordering`** — every `Ordering::Relaxed` in non-test code
//!   carries a `// ORDERING:` comment in the preceding lines justifying
//!   why relaxed semantics are sound at that site. Stronger orderings
//!   are self-documenting; `Relaxed` is where the bugs hide.
//! * **`lock-order`** — a cross-file pass: every function's lexical
//!   `.lock()` acquisition sequence feeds the workspace-wide
//!   [`crate::conc::LockOrderGraph`]; any cycle (two functions taking
//!   the same locks in opposite orders) is a potential deadlock and
//!   fails the lint with the witness sites around the cycle.
//!
//! Grandfathered sites live in `lint-allowlist.tsv` at the repo root:
//! one `rule<TAB>path<TAB>count` line per file. The linter fails when a
//! file *exceeds* its allowance (the list never grows) and, in
//! `--strict` mode, when an allowance is stale (the count can only
//! ratchet down).
//!
//! The scanner is deliberately lexical: it strips comments and string
//! literals with a small state machine rather than parsing Rust, which
//! is robust across editions and keeps the binary dependency-free.

use crate::conc::LockOrderGraph;
use crate::lex::{
    crate_of, find_word, fn_spans, in_ranges, is_ident_byte, is_test_path, justified_in_window,
    lex_views, line_of, line_starts, test_ranges, use_ranges, Views,
};
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::ops::Range;
use std::path::{Path, PathBuf};

/// Rule id: undocumented `unsafe`.
pub const RULE_UNSAFE: &str = "unsafe-safety";
/// Rule id: raw `Instant::now` outside the telemetry crate.
pub const RULE_INSTANT: &str = "instant-now";
/// Rule id: panicking accessor in library code.
pub const RULE_UNWRAP: &str = "unwrap-in-lib";
/// Rule id: unregistered telemetry name.
pub const RULE_SPAN: &str = "span-names";
/// Rule id: int8 intrinsic outside a SAFETY-documented block.
pub const RULE_EPI8: &str = "i8-intrinsic-safety";
/// Rule id: relaxed atomic without an `// ORDERING:` justification.
pub const RULE_ORDERING: &str = "atomic-ordering";
/// Rule id: lock-acquisition-order inversion across the workspace.
pub const RULE_LOCK_ORDER: &str = "lock-order";

/// Crates whose `src/` trees must not contain `.unwrap()` / `.expect(`.
const UNWRAP_CRATES: &[&str] = &["sparksim", "nn", "core", "encoding"];

/// How many preceding lines may hold the `SAFETY:` justification.
const SAFETY_WINDOW: usize = 8;

/// How many preceding lines may hold the `SAFETY` justification for an
/// `epi8` intrinsic. Wider than [`SAFETY_WINDOW`] because the intrinsics
/// sit deep inside kernel loop bodies, far below the block's `unsafe`
/// boundary where the justification lives.
const EPI8_WINDOW: usize = 40;

/// How many preceding lines may hold the `ORDERING:` justification for a
/// relaxed atomic operation.
const ORDERING_WINDOW: usize = 8;

/// One finding at a specific source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which rule fired.
    pub rule: &'static str,
    /// Path relative to the workspace root, forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)
    }
}

/// Recursively collects `.rs` files under `root`, skipping build
/// artefacts, vendored stand-ins and VCS metadata.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    const SKIP: &[&str] = &["target", "vendor", ".git", ".claude", "results", "node_modules"];
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP.contains(&name.as_ref()) {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Reads every Rust source under `root` as `(relative path, text)`
/// pairs, sorted by path — the common input of [`lint_sources`] and
/// [`crate::panic::check_sources`]. Exposed so tests can load the real
/// workspace, mutate a file in memory, and re-run an analysis.
pub fn collect_sources(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    collect_rs(root, &mut files)?;
    files.sort();
    let mut sources = Vec::with_capacity(files.len());
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, fs::read_to_string(path)?));
    }
    Ok(sources)
}

/// Lints every Rust source under `root`, returning findings sorted by
/// path and line.
pub fn lint_root(root: &Path) -> io::Result<Vec<Violation>> {
    Ok(lint_sources(&collect_sources(root)?))
}

/// Lints a set of `(relative path, source)` pairs: per-file rules first,
/// then the cross-file lock-order pass over the whole set. This is the
/// in-memory core of [`lint_root`], exposed so tests can lint a
/// fabricated multi-file workspace.
pub fn lint_sources(sources: &[(String, String)]) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (rel, source) in sources {
        lint_file(rel, source, &mut violations);
    }
    rule_lock_order(sources, &mut violations);
    violations.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    violations
}

/// Lints one file's source text (exposed for tests).
pub fn lint_file(rel: &str, source: &str, out: &mut Vec<Violation>) {
    let views = lex_views(source);
    let starts = line_starts(source);
    let tests = test_ranges(&views.blanked);
    let raw_lines: Vec<&str> = views.raw.lines().collect();
    let code_lines: Vec<&str> = views.code.lines().collect();
    let test_file = is_test_path(rel);
    let krate = crate_of(rel);

    rule_unsafe(rel, &views, &starts, &raw_lines, &code_lines, out);
    rule_instant(rel, &views, &starts, krate, out);
    if !test_file {
        rule_epi8(rel, &views, &starts, &raw_lines, &code_lines, &tests, out);
        rule_atomic_ordering(rel, &views, &starts, &raw_lines, &code_lines, &tests, out);
    }
    if !test_file && krate.is_some_and(|c| UNWRAP_CRATES.contains(&c)) && rel.contains("/src/") {
        rule_unwrap(rel, &views, &starts, &tests, out);
    }
    if !test_file && krate != Some("telemetry") {
        rule_span_names(rel, &views, &starts, &tests, out);
    }
}

/// `unsafe` must carry a nearby `SAFETY:` justification (or a `# Safety`
/// doc section for `unsafe fn` contracts). The justification must be a
/// real comment — the marker inside a string literal does not count
/// ([`crate::lex::comment_contains`]).
fn rule_unsafe(
    rel: &str,
    views: &Views,
    starts: &[usize],
    raw_lines: &[&str],
    code_lines: &[&str],
    out: &mut Vec<Violation>,
) {
    for at in find_word(&views.blanked, "unsafe") {
        let line = line_of(starts, at); // 1-based
        let documented = justified_in_window(
            raw_lines,
            code_lines,
            line,
            SAFETY_WINDOW,
            &["SAFETY:", "# Safety"],
        );
        if !documented {
            out.push(Violation {
                rule: RULE_UNSAFE,
                path: rel.to_string(),
                line,
                message: "`unsafe` without a `// SAFETY:` comment (or `# Safety` doc) \
                          in the preceding lines"
                    .to_string(),
            });
        }
    }
}

/// int8 intrinsics (`_mm*epi8*`) must sit under a documented `SAFETY`
/// justification: the widening i8 loads in the quantized kernels read
/// eight bytes through raw pointers, so each call site inherits pointer
/// validity preconditions the comment must state.
fn rule_epi8(
    rel: &str,
    views: &Views,
    starts: &[usize],
    raw_lines: &[&str],
    code_lines: &[&str],
    tests: &[Range<usize>],
    out: &mut Vec<Violation>,
) {
    let bytes = views.blanked.as_bytes();
    let uses = use_ranges(&views.blanked);
    let mut from = 0;
    while let Some(pos) = views.blanked[from..].find("_mm") {
        let at = from + pos;
        // Expand to the full identifier and move the cursor past it.
        let mut end = at;
        while end < bytes.len() && is_ident_byte(bytes[end]) {
            end += 1;
        }
        from = end.max(at + 3);
        if at > 0 && is_ident_byte(bytes[at - 1]) {
            continue;
        }
        let ident = &views.blanked[at..end];
        if !ident.contains("epi8") || in_ranges(tests, at) {
            continue;
        }
        // `use core::arch::x86_64::{..., _mm256_cvtepi8_epi32, ...};` is
        // a name import (possibly spanning lines), not a call site.
        if in_ranges(&uses, at) {
            continue;
        }
        let line = line_of(starts, at); // 1-based
        let documented =
            justified_in_window(raw_lines, code_lines, line, EPI8_WINDOW, &["SAFETY", "# Safety"]);
        if !documented {
            out.push(Violation {
                rule: RULE_EPI8,
                path: rel.to_string(),
                line,
                message: format!(
                    "`{ident}` without a `SAFETY` comment in the preceding {EPI8_WINDOW} lines — \
                     document the pointer preconditions of the int8 kernel"
                ),
            });
        }
    }
}

/// Timing outside the telemetry crate goes through `telemetry::clock_ns`.
fn rule_instant(
    rel: &str,
    views: &Views,
    starts: &[usize],
    krate: Option<&str>,
    out: &mut Vec<Violation>,
) {
    if krate == Some("telemetry") {
        return;
    }
    let mut from = 0;
    while let Some(pos) = views.blanked[from..].find("Instant::now") {
        let at = from + pos;
        from = at + "Instant::now".len();
        out.push(Violation {
            rule: RULE_INSTANT,
            path: rel.to_string(),
            line: line_of(starts, at),
            message: "Instant::now outside crates/telemetry — use telemetry::clock_ns() \
                      so all timings share one origin"
                .to_string(),
        });
    }
}

/// Library code in the serving path returns typed errors, not panics.
fn rule_unwrap(
    rel: &str,
    views: &Views,
    starts: &[usize],
    tests: &[Range<usize>],
    out: &mut Vec<Violation>,
) {
    for pat in [".unwrap()", ".expect("] {
        let mut from = 0;
        while let Some(pos) = views.blanked[from..].find(pat) {
            let at = from + pos;
            from = at + pat.len();
            if in_ranges(tests, at) {
                continue;
            }
            out.push(Violation {
                rule: RULE_UNWRAP,
                path: rel.to_string(),
                line: line_of(starts, at),
                message: format!(
                    "`{}` in non-test library code — convert to a typed Result error",
                    pat.trim_end_matches('(')
                ),
            });
        }
    }
}

/// Telemetry names come from the `telemetry::schema` registry.
fn rule_span_names(
    rel: &str,
    views: &Views,
    starts: &[usize],
    tests: &[Range<usize>],
    out: &mut Vec<Violation>,
) {
    use telemetry::schema;
    // (call pattern, membership test, registry name for the message).
    // Gauges are the one prefix-based vocabulary (per-class monitor
    // gauges), so membership is a function, not a slice.
    type NameCheck = (&'static str, fn(&str) -> bool, &'static str);
    let checks: [NameCheck; 6] = [
        ("telemetry::span(", |n| schema::SPAN_NAMES.contains(&n), "SPAN_NAMES"),
        ("telemetry::kernel_span(", |n| schema::SPAN_NAMES.contains(&n), "SPAN_NAMES"),
        (
            "telemetry::count(",
            schema::counter_is_registered,
            "COUNTER_NAMES/COUNTER_PREFIXES",
        ),
        (
            "telemetry::observe(",
            |n| schema::HISTOGRAM_NAMES.contains(&n),
            "HISTOGRAM_NAMES",
        ),
        ("telemetry::event(", |n| schema::EVENT_NAMES.contains(&n), "EVENT_NAMES"),
        ("telemetry::gauge(", schema::gauge_is_registered, "GAUGE_NAMES/GAUGE_PREFIXES"),
    ];
    for (pat, registered, registry_name) in checks {
        let mut from = 0;
        // Locate call sites in the blanked view (so the pattern inside a
        // string or comment never matches), then read the argument from
        // the string-preserving view.
        while let Some(pos) = views.blanked[from..].find(pat) {
            let at = from + pos;
            from = at + pat.len();
            if in_ranges(tests, at) {
                continue;
            }
            // First argument must be a string literal to be checkable.
            let rest = &views.code[at + pat.len()..];
            let trimmed = rest.trim_start();
            if !trimmed.starts_with('"') {
                continue;
            }
            let Some(end) = trimmed[1..].find('"') else {
                continue;
            };
            let name = &trimmed[1..1 + end];
            if !registered(name) {
                out.push(Violation {
                    rule: RULE_SPAN,
                    path: rel.to_string(),
                    line: line_of(starts, at),
                    message: format!(
                        "telemetry name \"{name}\" is not in telemetry::schema::{registry_name} — \
                         register it so log consumers see a closed vocabulary"
                    ),
                });
            }
        }
    }
}

/// Relaxed atomics need a written justification: `Ordering::Relaxed` in
/// non-test code must have an `// ORDERING:` comment within the
/// preceding lines explaining why no synchronisation is needed at that
/// site. (Doc comments and strings are invisible here — the word is
/// matched in the blanked view.)
fn rule_atomic_ordering(
    rel: &str,
    views: &Views,
    starts: &[usize],
    raw_lines: &[&str],
    code_lines: &[&str],
    tests: &[Range<usize>],
    out: &mut Vec<Violation>,
) {
    for at in find_word(&views.blanked, "Relaxed") {
        if in_ranges(tests, at) {
            continue;
        }
        let line = line_of(starts, at); // 1-based
        let justified =
            justified_in_window(raw_lines, code_lines, line, ORDERING_WINDOW, &["ORDERING:"]);
        if !justified {
            out.push(Violation {
                rule: RULE_ORDERING,
                path: rel.to_string(),
                line,
                message: format!(
                    "`Ordering::Relaxed` without an `// ORDERING:` justification in the \
                     preceding {ORDERING_WINDOW} lines — state why relaxed semantics are \
                     sound here or use a stronger ordering"
                ),
            });
        }
    }
}

/// The receiver expression of a `.lock()` call, walking backwards from
/// the `.`: identifier segments, `.` / `::` separators, empty `()` call
/// suffixes (so `state().lock()` keys as `state()`), and whitespace at a
/// `.` chain boundary (so a multiline builder chain still resolves).
/// Returns `None` for receivers this lexical scan cannot name (indexing,
/// non-empty calls) — those sites are skipped, not flagged.
fn lock_receiver(blanked: &str, dot: usize) -> Option<String> {
    let bytes = blanked.as_bytes();
    let mut i = dot;
    let mut rev: Vec<u8> = Vec::new();
    while i > 0 {
        let b = bytes[i - 1];
        if is_ident_byte(b) || b == b'.' || b == b':' {
            rev.push(b);
            i -= 1;
        } else if b == b')' && i >= 2 && bytes[i - 2] == b'(' {
            rev.push(b')');
            rev.push(b'(');
            i -= 2;
        } else if b.is_ascii_whitespace() {
            // Whitespace only continues the receiver at a chain
            // boundary: nothing collected yet (`foo\n    .lock()`) or a
            // leading `.` collected so far (`self\n    .st.lock()`).
            if rev.last().is_some_and(|&c| c != b'.') {
                break;
            }
            i -= 1;
        } else {
            break;
        }
    }
    let recv: String = rev.iter().rev().map(|&b| b as char).collect();
    let recv = recv.trim_matches(|c| c == '.' || c == ':');
    if recv.is_empty() || !recv.bytes().any(is_ident_byte) {
        None
    } else {
        Some(recv.to_string())
    }
}

/// Cross-file lock-order pass: build the workspace acquisition-order
/// graph from every non-test function's lexical `.lock()` sequence
/// (keyed `crate::receiver`) and flag each cycle as a potential
/// deadlock. Over-approximate by design — guard drops between
/// acquisitions are not modelled; a justified false positive earns an
/// allowlist entry, and the `raal_sync` model checker is the oracle for
/// whether a flagged order really deadlocks.
fn rule_lock_order(sources: &[(String, String)], out: &mut Vec<Violation>) {
    let mut graph = LockOrderGraph::new();
    for (rel, source) in sources {
        if is_test_path(rel) {
            continue;
        }
        let Some(krate) = crate_of(rel) else { continue };
        let views = lex_views(source);
        let starts = line_starts(source);
        let tests = test_ranges(&views.blanked);
        let spans = fn_spans(&views.blanked);
        let mut per_fn: BTreeMap<usize, Vec<(String, usize)>> = BTreeMap::new();
        let mut from = 0;
        while let Some(pos) = views.blanked[from..].find(".lock()") {
            let at = from + pos;
            from = at + ".lock()".len();
            if in_ranges(&tests, at) {
                continue;
            }
            let Some(recv) = lock_receiver(&views.blanked, at) else {
                continue;
            };
            // Innermost containing function wins (nested fns attribute
            // to the nested item, not its parent).
            let Some(fi) = spans
                .iter()
                .enumerate()
                .filter(|(_, s)| s.range.contains(&at))
                .min_by_key(|(_, s)| s.range.len())
                .map(|(i, _)| i)
            else {
                continue;
            };
            per_fn
                .entry(fi)
                .or_default()
                .push((format!("{krate}::{recv}"), line_of(&starts, at)));
        }
        for (fi, sites) in &per_fn {
            graph.add_sequence(&spans[*fi].name, rel, sites);
        }
    }
    for cycle in graph.cycles() {
        let n = cycle.nodes.len();
        let details: Vec<String> = cycle
            .witnesses
            .iter()
            .enumerate()
            .map(|(i, w)| {
                format!(
                    "`{}` acquires {} then {} ({}:{})",
                    w.function,
                    cycle.nodes[i],
                    cycle.nodes[(i + 1) % n],
                    w.path,
                    w.line
                )
            })
            .collect();
        let w = &cycle.witnesses[0];
        out.push(Violation {
            rule: RULE_LOCK_ORDER,
            path: w.path.clone(),
            line: w.line,
            message: format!(
                "potential lock-order inversion {}: {}",
                cycle.describe(),
                details.join("; ")
            ),
        });
    }
}

/// The grandfathered-site allowlist: `(rule, path) -> allowed count`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Allowlist {
    entries: BTreeMap<(String, String), usize>,
}

impl Allowlist {
    /// Parses the TSV format (`rule<TAB>path<TAB>count`, `#` comments).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = BTreeMap::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split('\t');
            let (Some(rule), Some(path), Some(count)) = (parts.next(), parts.next(), parts.next())
            else {
                return Err(format!("allowlist line {}: expected rule<TAB>path<TAB>count", i + 1));
            };
            let count: usize = count
                .trim()
                .parse()
                .map_err(|_| format!("allowlist line {}: bad count '{count}'", i + 1))?;
            entries.insert((rule.to_string(), path.to_string()), count);
        }
        Ok(Self { entries })
    }

    /// Loads from a file; a missing file is an empty allowlist.
    pub fn load(path: &Path) -> Result<Self, String> {
        match fs::read_to_string(path) {
            Ok(text) => Self::parse(&text),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Self::default()),
            Err(e) => Err(format!("reading {}: {e}", path.display())),
        }
    }

    /// Renders the TSV format, sorted, with a header comment.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# raal-lint allowlist: grandfathered violations, one `rule<TAB>path<TAB>count`\n\
             # per line. The build fails if a file exceeds its allowance; counts may only\n\
             # ratchet down (regenerate with `cargo run -p analysis --bin raal-lint -- --update`).\n",
        );
        for ((rule, path), count) in &self.entries {
            out.push_str(&format!("{rule}\t{path}\t{count}\n"));
        }
        out
    }

    /// Builds an allowlist that exactly covers `violations`.
    pub fn covering(violations: &[Violation]) -> Self {
        let mut entries: BTreeMap<(String, String), usize> = BTreeMap::new();
        for v in violations {
            *entries.entry((v.rule.to_string(), v.path.clone())).or_default() += 1;
        }
        Self { entries }
    }

    /// Total allowed count across all entries.
    pub fn total(&self) -> usize {
        self.entries.values().sum()
    }
}

/// Result of comparing actual findings against the allowlist.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Findings in files over (or absent from) their allowance. Fails
    /// the lint.
    pub over: Vec<Violation>,
    /// `(rule, path, allowed, actual)` where the allowance exceeds
    /// reality — the ratchet must be tightened.
    pub stale: Vec<(String, String, usize, usize)>,
    /// Findings covered by an exact allowance (grandfathered).
    pub grandfathered: usize,
}

/// Applies the ratchet: per `(rule, path)`, actual count must not exceed
/// the allowance; allowances above the actual count are reported stale.
pub fn apply_allowlist(violations: &[Violation], allow: &Allowlist) -> Outcome {
    let mut actual: BTreeMap<(String, String), Vec<&Violation>> = BTreeMap::new();
    for v in violations {
        actual
            .entry((v.rule.to_string(), v.path.clone()))
            .or_default()
            .push(v);
    }
    let mut outcome = Outcome::default();
    for (key, found) in &actual {
        let allowed = allow.entries.get(key).copied().unwrap_or(0);
        if found.len() > allowed {
            outcome.over.extend(found.iter().map(|v| (*v).clone()));
        } else {
            outcome.grandfathered += found.len();
            if found.len() < allowed {
                outcome
                    .stale
                    .push((key.0.clone(), key.1.clone(), allowed, found.len()));
            }
        }
    }
    for (key, &allowed) in &allow.entries {
        if !actual.contains_key(key) && allowed > 0 {
            outcome.stale.push((key.0.clone(), key.1.clone(), allowed, 0));
        }
    }
    outcome.stale.sort();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(rel: &str, src: &str) -> Vec<Violation> {
        let mut out = Vec::new();
        lint_file(rel, src, &mut out);
        out
    }

    #[test]
    fn undocumented_unsafe_is_flagged() {
        let v =
            lint_str("crates/nn/src/x.rs", "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RULE_UNSAFE);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn safety_comment_satisfies_the_rule() {
        let v = lint_str(
            "crates/nn/src/x.rs",
            "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    \
             unsafe { *p }\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn safety_marker_inside_raw_string_does_not_justify() {
        // The justification window reads the *comment* view; a SAFETY:
        // marker smuggled in via a raw string literal is data, not a
        // justification.
        let v = lint_str(
            "crates/nn/src/x.rs",
            "fn f(p: *const u8) -> u8 {\n    let _s = r#\"SAFETY: not a comment\"#;\n    \
             unsafe { *p }\n}\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RULE_UNSAFE);
    }

    #[test]
    fn safety_comment_inside_nested_block_comment_still_counts() {
        // Nested block comments are comments all the way down; the
        // marker is visible to the comment view wherever it sits.
        let v = lint_str(
            "crates/nn/src/x.rs",
            "fn f(p: *const u8) -> u8 {\n    /* outer /* inner */ SAFETY: fine */\n    \
             unsafe { *p }\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unwrap_inside_raw_string_is_not_flagged() {
        let v = lint_str(
            "crates/encoding/src/x.rs",
            "pub fn f() -> &'static str { r##\"x.unwrap() is just text\"## }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn safety_doc_section_satisfies_the_rule() {
        let v = lint_str(
            "crates/nn/src/x.rs",
            "/// # Safety\n/// `p` must be valid.\n#[inline]\npub unsafe fn f(p: *const u8) {}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unsafe_in_string_or_comment_is_ignored() {
        let v = lint_str(
            "crates/nn/src/x.rs",
            "// this mentions unsafe code\nfn f() { let _ = \"unsafe { }\"; }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn instant_now_flagged_outside_telemetry() {
        let src = "fn f() { let _t = std::time::Instant::now(); }\n";
        let v = lint_str("crates/core/src/x.rs", src);
        assert!(v.iter().any(|v| v.rule == RULE_INSTANT));
        let v = lint_str("crates/telemetry/src/lib.rs", src);
        assert!(v.iter().all(|v| v.rule != RULE_INSTANT));
    }

    #[test]
    fn unwrap_flagged_only_in_lib_code_of_listed_crates() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(lint_str("crates/sparksim/src/x.rs", src).len(), 1);
        // workloads is not on the no-panic list.
        assert!(lint_str("crates/workloads/src/x.rs", src).is_empty());
        // Integration tests are exempt.
        assert!(lint_str("crates/sparksim/tests/x.rs", src).is_empty());
    }

    #[test]
    fn unwrap_inside_cfg_test_module_is_exempt() {
        let src = "fn f() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { \
                   Some(1).unwrap(); }\n}\n";
        let v = lint_str("crates/nn/src/x.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn expect_outside_test_module_is_flagged() {
        let src = "pub fn f(x: Option<u8>) -> u8 { x.expect(\"set\") }\n\n\
                   #[cfg(test)]\nmod tests {}\n";
        let v = lint_str("crates/encoding/src/x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RULE_UNWRAP);
    }

    #[test]
    fn unregistered_span_name_is_flagged() {
        let v = lint_str(
            "crates/core/src/x.rs",
            "fn f() { let _s = telemetry::span(\"made.up.name\"); }\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RULE_SPAN);
        assert!(v[0].message.contains("made.up.name"));
    }

    #[test]
    fn registered_span_name_passes() {
        let v = lint_str(
            "crates/core/src/x.rs",
            "fn f() { let _s = telemetry::span(\"train.run\"); }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn gauge_names_check_exact_and_prefix_vocabularies() {
        // Exact name and a registered per-class prefix both pass.
        for name in ["train.loss", "monitor.mae.scan_join"] {
            let v = lint_str(
                "crates/core/src/x.rs",
                &format!("fn f() {{ telemetry::gauge(\"{name}\", 1.0); }}\n"),
            );
            assert!(v.is_empty(), "{name}: {v:?}");
        }
        // Unregistered names fail — including a prefix with no class.
        for name in ["made.up.gauge", "monitor.mae."] {
            let v = lint_str(
                "crates/core/src/x.rs",
                &format!("fn f() {{ telemetry::gauge(\"{name}\", 1.0); }}\n"),
            );
            assert_eq!(v.len(), 1, "{name}: {v:?}");
            assert_eq!(v[0].rule, RULE_SPAN);
        }
    }

    #[test]
    fn span_names_in_tests_are_unchecked() {
        let v = lint_str(
            "crates/core/src/x.rs",
            "#[cfg(test)]\nmod tests {\n    fn f() { let _s = telemetry::span(\"adhoc\"); }\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn dynamic_span_names_are_skipped() {
        let v = lint_str(
            "crates/core/src/x.rs",
            "fn f(name: &'static str) { let _s = telemetry::span(name); }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn multiline_event_name_is_checked() {
        let v = lint_str(
            "crates/core/src/x.rs",
            "fn f() {\n    telemetry::event(\n        \"not.a.real.event\",\n        &[],\n    );\n}\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn undocumented_epi8_intrinsic_is_flagged() {
        // SAFETY-less target_feature fn: the `unsafe` rule is satisfied
        // by the doc section, but the epi8 rule still needs "SAFETY".
        let src = "/// # Preconditions\npub fn f(p: *const i8) {\n    let _v = unsafe { \
                   _mm256_cvtepi8_epi32(_mm_loadl_epi64(p as *const __m128i)) };\n}\n";
        let v = lint_str("crates/nn/src/infer/quant.rs", src);
        assert!(v.iter().any(|v| v.rule == RULE_EPI8), "{v:?}");
        assert!(v.iter().any(|v| v.message.contains("_mm256_cvtepi8_epi32")), "{v:?}");
    }

    #[test]
    fn safety_comment_covers_epi8_intrinsics() {
        let src = "pub fn f(p: *const i8) {\n    // SAFETY: caller guarantees 8 readable bytes \
                   at p.\n    let _v = unsafe { _mm256_cvtepi8_epi32(core::mem::zeroed()) };\n}\n";
        let v = lint_str("crates/nn/src/infer/quant.rs", src);
        assert!(v.iter().all(|v| v.rule != RULE_EPI8), "{v:?}");
    }

    #[test]
    fn epi8_use_declaration_is_exempt() {
        let src = "use core::arch::x86_64::_mm256_cvtepi8_epi32;\n";
        let v = lint_str("crates/nn/src/infer/quant.rs", src);
        assert!(v.is_empty(), "{v:?}");
        // Grouped imports spanning lines are equally exempt.
        let src = "use core::arch::x86_64::{\n    __m256, _mm256_cvtepi8_epi32,\n    \
                   _mm256_fmadd_ps,\n};\n";
        let v = lint_str("crates/nn/src/infer/quant.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn safety_doc_section_covers_epi8_intrinsics() {
        let src = "/// # Safety\n/// `p..p+8` must be readable.\n#[target_feature(enable = \
                   \"avx2\")]\nunsafe fn f(p: *const i8) {\n    let _ = \
                   _mm256_cvtepi8_epi32(core::mem::zeroed());\n}\n";
        let v = lint_str("crates/nn/src/infer/quant.rs", src);
        assert!(v.iter().all(|v| v.rule != RULE_EPI8), "{v:?}");
    }

    #[test]
    fn epi8_in_tests_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let _ = \
                   unsafe { _mm256_cvtepi8_epi32(core::mem::zeroed()) }; }\n}\n";
        let v = lint_str("crates/nn/src/infer/quant.rs", src);
        assert!(v.iter().all(|v| v.rule != RULE_EPI8), "{v:?}");
    }

    #[test]
    fn non_epi8_intrinsics_are_not_flagged_by_epi8_rule() {
        let src = "fn f() {\n    // SAFETY: fine.\n    let _ = unsafe { \
                   _mm256_fmadd_ps(core::mem::zeroed(), core::mem::zeroed(), \
                   core::mem::zeroed()) };\n}\n";
        let v = lint_str("crates/nn/src/x.rs", src);
        assert!(v.iter().all(|v| v.rule != RULE_EPI8), "{v:?}");
    }

    #[test]
    fn relaxed_without_justification_is_flagged() {
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\n\
                   static N: AtomicU64 = AtomicU64::new(0);\n\
                   pub fn next() -> u64 { N.fetch_add(1, Ordering::Relaxed) }\n";
        let v = lint_str("crates/core/src/x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RULE_ORDERING);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn ordering_comment_satisfies_the_rule() {
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\n\
                   static N: AtomicU64 = AtomicU64::new(0);\n\
                   // ORDERING: Relaxed — unique-id counter, nothing else published.\n\
                   pub fn next() -> u64 { N.fetch_add(1, Ordering::Relaxed) }\n";
        let v = lint_str("crates/core/src/x.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn relaxed_in_tests_and_doc_comments_is_exempt() {
        // In a #[cfg(test)] module: unchecked.
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { \
                   N.load(std::sync::atomic::Ordering::Relaxed); }\n}\n";
        assert!(lint_str("crates/core/src/x.rs", src).is_empty());
        // In a doc comment: invisible to the blanked view.
        let src = "//! Mentions `Ordering::Relaxed` in prose only.\n";
        assert!(lint_str("crates/core/src/x.rs", src).is_empty());
        // In an integration test file: unchecked.
        let src = "fn t() { N.load(std::sync::atomic::Ordering::Relaxed); }\n";
        assert!(lint_str("crates/core/tests/x.rs", src).is_empty());
    }

    #[test]
    fn stronger_orderings_need_no_justification() {
        let src = "use std::sync::atomic::{AtomicBool, Ordering};\n\
                   static F: AtomicBool = AtomicBool::new(false);\n\
                   pub fn set() { F.store(true, Ordering::Release); }\n";
        assert!(lint_str("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn inverted_lock_order_across_files_is_flagged() {
        let sources = vec![
            (
                "crates/core/src/a.rs".to_string(),
                "pub fn forward() {\n    let _a = self.alpha.lock();\n    \
                 let _b = self.beta.lock();\n}\n"
                    .to_string(),
            ),
            (
                "crates/core/src/b.rs".to_string(),
                "pub fn backward() {\n    let _b = self.beta.lock();\n    \
                 let _a = self.alpha.lock();\n}\n"
                    .to_string(),
            ),
        ];
        let v = lint_sources(&sources);
        let cycles: Vec<_> = v.iter().filter(|v| v.rule == RULE_LOCK_ORDER).collect();
        assert_eq!(cycles.len(), 1, "{v:?}");
        assert!(cycles[0].message.contains("core::self.alpha"), "{}", cycles[0].message);
        assert!(cycles[0].message.contains("`forward`"), "{}", cycles[0].message);
        assert!(cycles[0].message.contains("`backward`"), "{}", cycles[0].message);
    }

    #[test]
    fn consistent_lock_order_passes() {
        let sources = vec![
            (
                "crates/core/src/a.rs".to_string(),
                "pub fn f() {\n    let _a = self.alpha.lock();\n    \
                 let _b = self.beta.lock();\n}\n"
                    .to_string(),
            ),
            (
                "crates/core/src/b.rs".to_string(),
                "pub fn g() {\n    let _a = self.alpha.lock();\n    \
                 let _b = self.beta.lock();\n}\n"
                    .to_string(),
            ),
        ];
        let v = lint_sources(&sources);
        assert!(v.iter().all(|v| v.rule != RULE_LOCK_ORDER), "{v:?}");
    }

    #[test]
    fn same_receiver_in_different_crates_does_not_collide() {
        // `state.lock()` in two crates, opposite relative order with a
        // second lock — but the keys are crate-qualified, so no cycle.
        let sources = vec![
            (
                "crates/core/src/a.rs".to_string(),
                "pub fn f() {\n    let _a = state.lock();\n    let _b = extra.lock();\n}\n"
                    .to_string(),
            ),
            (
                "crates/sparksim/src/b.rs".to_string(),
                "pub fn g() {\n    let _b = extra.lock();\n    let _a = state.lock();\n}\n"
                    .to_string(),
            ),
        ];
        let v = lint_sources(&sources);
        assert!(v.iter().all(|v| v.rule != RULE_LOCK_ORDER), "{v:?}");
    }

    #[test]
    fn lock_order_ignores_tests_and_repeat_acquisitions() {
        let sources = vec![
            (
                "crates/core/src/a.rs".to_string(),
                // Same lock twice: no self-edge. Inverted pair inside a
                // #[cfg(test)] module: exempt.
                "pub fn f() {\n    let _a = m.lock();\n    let _b = m.lock();\n}\n\
                 #[cfg(test)]\nmod tests {\n    fn t() {\n        let _b = beta.lock();\n        \
                 let _a = alpha.lock();\n    }\n}\n"
                    .to_string(),
            ),
            (
                "crates/core/src/b.rs".to_string(),
                "pub fn g() {\n    let _a = alpha.lock();\n    let _b = beta.lock();\n}\n"
                    .to_string(),
            ),
        ];
        let v = lint_sources(&sources);
        assert!(v.iter().all(|v| v.rule != RULE_LOCK_ORDER), "{v:?}");
    }

    #[test]
    fn multiline_chained_lock_receiver_resolves() {
        // `.lock()` on its own line still keys by the receiver above it.
        let sources = vec![(
            "crates/core/src/a.rs".to_string(),
            "pub fn f() {\n    self.alpha\n        .lock();\n    self.beta.lock();\n}\n\
             pub fn g() {\n    self.beta.lock();\n    self.alpha.lock();\n}\n"
                .to_string(),
        )];
        let v = lint_sources(&sources);
        assert!(v.iter().any(|v| v.rule == RULE_LOCK_ORDER), "{v:?}");
    }

    #[test]
    fn lock_receiver_extraction_cases() {
        let cases: &[(&str, Option<&str>)] = &[
            ("let g = state().lock();", Some("state()")),
            ("let g = self.q.lock();", Some("self.q")),
            ("let g = STATE.lock();", Some("STATE")),
            ("let g = crate::st::STATE.lock();", Some("crate::st::STATE")),
            ("self.0.lock();", Some("self.0")),
            // Unresolvable receivers are skipped, not misattributed.
            ("let g = chans[i].lock();", None),
            ("let g = get(i).lock();", None),
        ];
        for (src, want) in cases {
            let views = lex_views(src);
            let at = views.blanked.find(".lock()").unwrap();
            let got = lock_receiver(&views.blanked, at);
            assert_eq!(got.as_deref(), *want, "src: {src}");
        }
    }

    #[test]
    fn allowlist_ratchet_math() {
        let vs = vec![
            Violation {
                rule: RULE_UNWRAP,
                path: "crates/nn/src/a.rs".into(),
                line: 1,
                message: String::new(),
            },
            Violation {
                rule: RULE_UNWRAP,
                path: "crates/nn/src/a.rs".into(),
                line: 2,
                message: String::new(),
            },
        ];
        // Exact allowance: grandfathered.
        let allow = Allowlist::parse("unwrap-in-lib\tcrates/nn/src/a.rs\t2\n").unwrap();
        let o = apply_allowlist(&vs, &allow);
        assert!(o.over.is_empty());
        assert_eq!(o.grandfathered, 2);
        assert!(o.stale.is_empty());
        // Over allowance: fails.
        let allow = Allowlist::parse("unwrap-in-lib\tcrates/nn/src/a.rs\t1\n").unwrap();
        assert_eq!(apply_allowlist(&vs, &allow).over.len(), 2);
        // Stale allowance: ratchet must tighten.
        let allow = Allowlist::parse("unwrap-in-lib\tcrates/nn/src/a.rs\t5\n").unwrap();
        let o = apply_allowlist(&vs, &allow);
        assert!(o.over.is_empty());
        assert_eq!(o.stale, vec![("unwrap-in-lib".into(), "crates/nn/src/a.rs".into(), 5, 2)]);
        // Entry for a clean file: stale.
        let o = apply_allowlist(&[], &allow);
        assert_eq!(o.stale.len(), 1);
    }

    #[test]
    fn allowlist_round_trips() {
        let a =
            Allowlist::parse("unwrap-in-lib\tx.rs\t3\n# comment\nspan-names\ty.rs\t1\n").unwrap();
        let b = Allowlist::parse(&a.render()).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.total(), 4);
    }

    #[test]
    fn raw_strings_and_chars_lex_cleanly() {
        let v = lint_str(
            "crates/nn/src/x.rs",
            "fn f() { let _a = r#\"x.unwrap() unsafe\"#; let _b = '\"'; let _c: &'static str = \"ok\"; }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }
}
