//! Symbolic shape inference over the RAAL model family.
//!
//! The network threads `[seq, dim]` activations through embedding →
//! plan-feature layer (LSTM/CNN) → node-aware attention pooling →
//! resource-aware attention → stats concat → dense head. None of the
//! dimension couplings between those stages are visible to the Rust
//! compiler: the LSTM hidden width must equal the attention key
//! projections' input width, the resource-vector width must match the
//! resource-attention query projection, and the concatenated head input
//! must equal the first dense layer's declared `in_dim`. A mismatch
//! anywhere surfaces — at best — as a slice-length panic deep inside a
//! matmul kernel during the first forward pass, long after the mistake
//! was made (model construction, or deserialising a tampered
//! checkpoint).
//!
//! This module checks all of it *before any data touches the network*:
//! a [`ModelShapeSpec`] describes the stages with their declared
//! dimensions and the actual parameter-tensor shapes, and [`check`]
//! symbolically propagates a `[n, dim]` shape (sequence length stays the
//! symbol `n`) through every stage, rejecting the first inconsistency
//! with a [`ShapeError`] naming the offending layer.
//!
//! The spec is plain data, so the `nn` layers can describe themselves
//! (each layer exposes a `shape_stage` constructor) without this crate
//! depending on the tensor machinery.

use std::fmt;

/// A symbolic dimension: a known width or the free sequence length `n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dim {
    /// A statically known extent.
    Known(usize),
    /// The per-plan node count, unknown until a plan arrives.
    Seq,
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dim::Known(k) => write!(f, "{k}"),
            Dim::Seq => write!(f, "n"),
        }
    }
}

/// A symbolic `[rows, cols]` activation shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymShape {
    /// Row extent (the sequence axis for per-node activations).
    pub rows: Dim,
    /// Column extent (the feature axis).
    pub cols: Dim,
}

impl fmt::Display for SymShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.rows, self.cols)
    }
}

/// The actual shape of one registered parameter tensor, checked against
/// the shape the stage's declared dimensions require.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamShape {
    /// Parameter name as registered in the store (e.g. `plan.lstm.wx`).
    pub name: String,
    /// Tensor rows.
    pub rows: usize,
    /// Tensor cols.
    pub cols: usize,
}

impl ParamShape {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, rows: usize, cols: usize) -> Self {
        Self { name: name.into(), rows, cols }
    }
}

/// Shape of an int8 mirror of a registered parameter (a quantized
/// weight matrix plus its per-row scale vector), as produced by the
/// quantized inference tier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantParamShape {
    /// Name of the source parameter the codes mirror.
    pub name: String,
    /// Code-matrix rows.
    pub rows: usize,
    /// Code-matrix cols.
    pub cols: usize,
    /// Length of the per-row scale vector.
    pub scales: usize,
}

/// Checks that an int8 mirror structurally matches its f32 source: the
/// code matrix must have the source's exact shape and carry one
/// dequantization scale per row. This is how the shape checker "accepts
/// a quantized param store" — every mirror is validated against the
/// architecture's declared f32 shape before a quantized kernel may run.
pub fn check_quant_mirror(src: &ParamShape, mirror: &QuantParamShape) -> Result<(), ShapeError> {
    if src.name != mirror.name {
        return Err(ShapeError {
            layer: src.name.clone(),
            message: format!("int8 mirror is named '{}', expected '{}'", mirror.name, src.name),
        });
    }
    if (mirror.rows, mirror.cols) != (src.rows, src.cols) {
        return Err(ShapeError {
            layer: src.name.clone(),
            message: format!(
                "int8 mirror is {}x{}, expected the source shape {}x{}",
                mirror.rows, mirror.cols, src.rows, src.cols
            ),
        });
    }
    if mirror.scales != src.rows {
        return Err(ShapeError {
            layer: src.name.clone(),
            message: format!(
                "int8 mirror carries {} per-row scales for {} rows",
                mirror.scales, src.rows
            ),
        });
    }
    Ok(())
}

/// One stage of the model as seen by the shape checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShapeOp {
    /// LSTM plan-feature layer: `[n, in_dim] -> [n, hidden]`.
    /// Parameters: `wx : in_dim x 4*hidden`, `wh : hidden x 4*hidden`,
    /// `b : 1 x 4*hidden`.
    Lstm {
        /// Declared input width.
        in_dim: usize,
        /// Declared hidden width.
        hidden: usize,
    },
    /// Same-padded 1-D convolution (the RAAC ablation):
    /// `[n, in_dim] -> [n, out_dim]`. Parameters:
    /// `w : width*in_dim x out_dim`, `b : 1 x out_dim`. `width` must be
    /// odd for the symmetric window.
    Conv1d {
        /// Declared input width.
        in_dim: usize,
        /// Declared output channels.
        out_dim: usize,
        /// Kernel width in rows.
        width: usize,
    },
    /// Node-aware attention + mean pooling: `[n, hidden] -> [1, hidden]`.
    /// Parameters: `wq, wk : hidden x latent_k` (queries and keys must
    /// project to the same latent width).
    NodeAttention {
        /// Attention latent dimension K.
        latent_k: usize,
    },
    /// Plain mean pooling over the sequence axis: `[n, d] -> [1, d]`
    /// (the NA-LSTM ablation's substitute for node attention).
    MeanPool,
    /// Resource-aware attention: the resource vector queries the node
    /// hidden states; output is the `[1, hidden]` context `M`.
    /// Parameters: `wr : resource_dim x latent_k`,
    /// `wk : hidden x latent_k` — the two projections must agree on K,
    /// and `wk`'s input width must equal the plan layer's hidden width.
    ResourceAttention {
        /// Declared resource-vector width.
        resource_dim: usize,
        /// Attention latent dimension K.
        latent_k: usize,
        /// Hidden width of the node states being attended over.
        hidden: usize,
    },
    /// Column concatenation of named feature blocks into the head input:
    /// `-> [1, sum(widths)]`. The flowing shape entering the concat must
    /// match the first listed block.
    Concat {
        /// `(block name, width)` in concatenation order.
        parts: Vec<(String, usize)>,
    },
    /// Dense layer: `[r, in_dim] -> [r, out_dim]`. Parameters:
    /// `w : in_dim x out_dim`, `b : 1 x out_dim`.
    Dense {
        /// Declared input width.
        in_dim: usize,
        /// Declared output width.
        out_dim: usize,
    },
}

/// A named stage: the op plus the actual parameter tensor shapes pulled
/// from the parameter store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stage {
    /// Layer name used in error messages (e.g. `plan.lstm`, `head.1`).
    pub name: String,
    /// The stage's shape semantics.
    pub op: ShapeOp,
    /// Actual shapes of the stage's registered parameters.
    pub params: Vec<ParamShape>,
}

impl Stage {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, op: ShapeOp, params: Vec<ParamShape>) -> Self {
        Self { name: name.into(), op, params }
    }
}

/// A full model description for the checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelShapeSpec {
    /// Human-readable model name for error messages (e.g. `RAAL`).
    pub model: String,
    /// Per-node input feature width the encoder produces.
    pub node_input: usize,
    /// The stages in dataflow order.
    pub stages: Vec<Stage>,
}

/// A dimension mismatch, naming the offending layer precisely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// The layer at which inference failed.
    pub layer: String,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape error at layer '{}': {}", self.layer, self.message)
    }
}

impl std::error::Error for ShapeError {}

/// The per-stage resolved shapes of a successful check — useful for
/// debugging and for rendering the architecture in docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeReport {
    /// `(layer name, output shape)` for every stage, in order.
    pub stages: Vec<(String, SymShape)>,
}

impl fmt::Display for ShapeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, shape) in &self.stages {
            writeln!(f, "{name:<24} -> {shape}")?;
        }
        Ok(())
    }
}

fn err<T>(layer: &str, message: impl Into<String>) -> Result<T, ShapeError> {
    Err(ShapeError { layer: layer.to_string(), message: message.into() })
}

/// Looks up a parameter by suffix (names are `layer.param`) and checks
/// its actual shape against the required one.
fn check_param(
    stage: &Stage,
    suffix: &str,
    want_rows: usize,
    want_cols: usize,
) -> Result<(), ShapeError> {
    let p = stage
        .params
        .iter()
        .find(|p| p.name.ends_with(suffix) || p.name == suffix);
    match p {
        None => err(
            &stage.name,
            format!("missing parameter '{suffix}' (have: {:?})", param_names(stage)),
        ),
        Some(p) if (p.rows, p.cols) != (want_rows, want_cols) => err(
            &stage.name,
            format!(
                "parameter '{}' has shape {}x{}, expected {}x{}",
                p.name, p.rows, p.cols, want_rows, want_cols
            ),
        ),
        Some(_) => Ok(()),
    }
}

fn param_names(stage: &Stage) -> Vec<&str> {
    stage.params.iter().map(|p| p.name.as_str()).collect()
}

fn expect_cols(
    stage: &Stage,
    flowing: SymShape,
    want: usize,
    role: &str,
) -> Result<(), ShapeError> {
    if flowing.cols != Dim::Known(want) {
        return err(
            &stage.name,
            format!(
                "input width mismatch: {role} expects {want} columns, got {} from the previous stage",
                flowing.cols
            ),
        );
    }
    Ok(())
}

/// Propagates a symbolic `[n, node_input]` shape through every stage of
/// `spec`, verifying declared dimensions, parameter tensor shapes and
/// inter-stage couplings. Returns the resolved per-stage shapes, or the
/// first inconsistency as a [`ShapeError`] naming the offending layer.
///
/// The final stage must produce the scalar prediction `[1, 1]`.
pub fn check(spec: &ModelShapeSpec) -> Result<ShapeReport, ShapeError> {
    if spec.node_input == 0 {
        return err("input", "encoder node feature width is zero");
    }
    let mut flowing = SymShape { rows: Dim::Seq, cols: Dim::Known(spec.node_input) };
    let mut report = Vec::with_capacity(spec.stages.len());
    for stage in &spec.stages {
        flowing = apply(stage, flowing)?;
        report.push((stage.name.clone(), flowing));
    }
    let want = SymShape { rows: Dim::Known(1), cols: Dim::Known(1) };
    if flowing != want {
        let last = spec.stages.last().map_or("<empty>", |s| s.name.as_str());
        return err(
            last,
            format!("model output is {flowing}, expected the scalar prediction {want}"),
        );
    }
    Ok(ShapeReport { stages: report })
}

fn apply(stage: &Stage, flowing: SymShape) -> Result<SymShape, ShapeError> {
    match &stage.op {
        ShapeOp::Lstm { in_dim, hidden } => {
            if *hidden == 0 {
                return err(&stage.name, "hidden width is zero");
            }
            expect_cols(stage, flowing, *in_dim, "the LSTM input projection")?;
            check_param(stage, "wx", *in_dim, 4 * hidden)?;
            check_param(stage, "wh", *hidden, 4 * hidden)?;
            check_param(stage, "b", 1, 4 * hidden)?;
            Ok(SymShape { rows: flowing.rows, cols: Dim::Known(*hidden) })
        }
        ShapeOp::Conv1d { in_dim, out_dim, width } => {
            if *out_dim == 0 {
                return err(&stage.name, "output channel count is zero");
            }
            if width % 2 == 0 {
                return err(
                    &stage.name,
                    format!("kernel width {width} is even; same-padding needs a symmetric window"),
                );
            }
            expect_cols(stage, flowing, *in_dim, "the convolution window")?;
            check_param(stage, "w", width * in_dim, *out_dim)?;
            check_param(stage, "b", 1, *out_dim)?;
            Ok(SymShape { rows: flowing.rows, cols: Dim::Known(*out_dim) })
        }
        ShapeOp::NodeAttention { latent_k } => {
            if *latent_k == 0 {
                return err(&stage.name, "attention latent dimension K is zero");
            }
            let hidden = match flowing.cols {
                Dim::Known(h) => h,
                Dim::Seq => return err(&stage.name, "attention input width is unresolved"),
            };
            // Queries and keys both project the hidden states; their
            // input width must be the plan layer's hidden width and they
            // must agree on K, or the q·k dot products are undefined.
            check_param(stage, "wq", hidden, *latent_k)?;
            check_param(stage, "wk", hidden, *latent_k)?;
            Ok(SymShape { rows: Dim::Known(1), cols: Dim::Known(hidden) })
        }
        ShapeOp::MeanPool => Ok(SymShape { rows: Dim::Known(1), cols: flowing.cols }),
        ShapeOp::ResourceAttention { resource_dim, latent_k, hidden } => {
            if *resource_dim == 0 {
                return err(&stage.name, "resource vector width is zero");
            }
            expect_cols(stage, flowing, *hidden, "the pooled plan representation")?;
            // The resource query projection must consume exactly the
            // resource feature vector, and project to the same latent
            // width as the key projection over the hidden states.
            check_param(stage, "wr", *resource_dim, *latent_k)?;
            check_param(stage, "wk", *hidden, *latent_k)?;
            Ok(SymShape { rows: Dim::Known(1), cols: Dim::Known(*hidden) })
        }
        ShapeOp::Concat { parts } => {
            if parts.is_empty() {
                return err(&stage.name, "concat of zero blocks");
            }
            let (first_name, first_width) = &parts[0];
            expect_cols(stage, flowing, *first_width, &format!("concat block '{first_name}'"))?;
            let total: usize = parts.iter().map(|(_, w)| w).sum();
            Ok(SymShape { rows: Dim::Known(1), cols: Dim::Known(total) })
        }
        ShapeOp::Dense { in_dim, out_dim } => {
            if *out_dim == 0 {
                return err(&stage.name, "output width is zero");
            }
            expect_cols(stage, flowing, *in_dim, "the dense affine map")?;
            check_param(stage, "w", *in_dim, *out_dim)?;
            check_param(stage, "b", 1, *out_dim)?;
            Ok(SymShape { rows: flowing.rows, cols: Dim::Known(*out_dim) })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A well-formed RAAL spec with the paper's default widths.
    fn raal_spec() -> ModelShapeSpec {
        let (node, hidden, k, res, stats, head) = (132, 64, 32, 7, 8, 64);
        ModelShapeSpec {
            model: "RAAL".into(),
            node_input: node,
            stages: vec![
                Stage::new(
                    "plan.lstm",
                    ShapeOp::Lstm { in_dim: node, hidden },
                    vec![
                        ParamShape::new("plan.lstm.wx", node, 4 * hidden),
                        ParamShape::new("plan.lstm.wh", hidden, 4 * hidden),
                        ParamShape::new("plan.lstm.b", 1, 4 * hidden),
                    ],
                ),
                Stage::new(
                    "attn.node",
                    ShapeOp::NodeAttention { latent_k: k },
                    vec![
                        ParamShape::new("attn.node.wq", hidden, k),
                        ParamShape::new("attn.node.wk", hidden, k),
                    ],
                ),
                Stage::new(
                    "attn.res",
                    ShapeOp::ResourceAttention { resource_dim: res, latent_k: k, hidden },
                    vec![
                        ParamShape::new("attn.res.wr", res, k),
                        ParamShape::new("attn.res.wk", hidden, k),
                    ],
                ),
                Stage::new(
                    "head.concat",
                    ShapeOp::Concat {
                        parts: vec![
                            ("plan_pool".into(), hidden),
                            ("resource_ctx".into(), hidden),
                            ("resources".into(), res),
                            ("plan_stats".into(), stats),
                        ],
                    },
                    vec![],
                ),
                Stage::new(
                    "head.1",
                    ShapeOp::Dense { in_dim: 2 * hidden + res + stats, out_dim: head },
                    vec![
                        ParamShape::new("head.1.w", 2 * hidden + res + stats, head),
                        ParamShape::new("head.1.b", 1, head),
                    ],
                ),
                Stage::new(
                    "head.2",
                    ShapeOp::Dense { in_dim: head, out_dim: head / 2 },
                    vec![
                        ParamShape::new("head.2.w", head, head / 2),
                        ParamShape::new("head.2.b", 1, head / 2),
                    ],
                ),
                Stage::new(
                    "head.out",
                    ShapeOp::Dense { in_dim: head / 2, out_dim: 1 },
                    vec![
                        ParamShape::new("head.out.w", head / 2, 1),
                        ParamShape::new("head.out.b", 1, 1),
                    ],
                ),
            ],
        }
    }

    #[test]
    fn raal_spec_checks_clean() {
        let report = check(&raal_spec()).expect("well-formed RAAL must pass");
        assert_eq!(report.stages.len(), 7);
        // Sequence axis survives the plan layer, collapses at pooling.
        assert_eq!(report.stages[0].1, SymShape { rows: Dim::Seq, cols: Dim::Known(64) });
        assert_eq!(
            report.stages.last().unwrap().1,
            SymShape { rows: Dim::Known(1), cols: Dim::Known(1) }
        );
    }

    #[test]
    fn attention_key_dim_mismatch_names_the_layer() {
        let mut spec = raal_spec();
        // Resource-attention keys project from 48, but the LSTM emits 64.
        spec.stages[2].params[1] = ParamShape::new("attn.res.wk", 48, 32);
        let e = check(&spec).unwrap_err();
        assert_eq!(e.layer, "attn.res");
        assert!(e.message.contains("attn.res.wk"), "{e}");
        assert!(e.message.contains("48x32") && e.message.contains("64x32"), "{e}");
    }

    #[test]
    fn resource_width_mismatch_is_rejected() {
        let mut spec = raal_spec();
        // The query projection consumes a 9-wide resource vector the
        // model will never be fed (ResourceConfig produces 7 features).
        spec.stages[2].params[0] = ParamShape::new("attn.res.wr", 9, 32);
        let e = check(&spec).unwrap_err();
        assert_eq!(e.layer, "attn.res");
        assert!(e.message.contains("attn.res.wr"), "{e}");
    }

    #[test]
    fn stats_concat_width_mismatch_hits_the_head() {
        let mut spec = raal_spec();
        // Drop the plan-stats block: the concat is 8 columns short of
        // what head.1 declares.
        if let ShapeOp::Concat { parts } = &mut spec.stages[3].op {
            parts.pop();
        }
        let e = check(&spec).unwrap_err();
        assert_eq!(e.layer, "head.1");
        assert!(e.message.contains("expects 143"), "{e}");
    }

    #[test]
    fn lstm_input_width_mismatch_names_the_lstm() {
        let mut spec = raal_spec();
        spec.node_input = 130; // encoder and LSTM disagree
        let e = check(&spec).unwrap_err();
        assert_eq!(e.layer, "plan.lstm");
        assert!(e.message.contains("132") && e.message.contains("130"), "{e}");
    }

    #[test]
    fn tampered_lstm_recurrence_is_rejected() {
        let mut spec = raal_spec();
        spec.stages[0].params[1] = ParamShape::new("plan.lstm.wh", 64, 128);
        let e = check(&spec).unwrap_err();
        assert_eq!(e.layer, "plan.lstm");
        assert!(e.message.contains("plan.lstm.wh"), "{e}");
    }

    #[test]
    fn missing_parameter_is_reported() {
        let mut spec = raal_spec();
        spec.stages[0].params.remove(0);
        let e = check(&spec).unwrap_err();
        assert_eq!(e.layer, "plan.lstm");
        assert!(e.message.contains("missing parameter 'wx'"), "{e}");
    }

    #[test]
    fn non_scalar_output_is_rejected() {
        let mut spec = raal_spec();
        spec.stages.pop();
        let e = check(&spec).unwrap_err();
        assert_eq!(e.layer, "head.2");
        assert!(e.message.contains("expected the scalar prediction"), "{e}");
    }

    #[test]
    fn even_conv_width_is_rejected() {
        let spec = ModelShapeSpec {
            model: "RAAC".into(),
            node_input: 10,
            stages: vec![Stage::new(
                "plan.cnn",
                ShapeOp::Conv1d { in_dim: 10, out_dim: 8, width: 4 },
                vec![ParamShape::new("plan.cnn.w", 40, 8), ParamShape::new("plan.cnn.b", 1, 8)],
            )],
        };
        let e = check(&spec).unwrap_err();
        assert_eq!(e.layer, "plan.cnn");
        assert!(e.message.contains("even"), "{e}");
    }

    #[test]
    fn mean_pool_variant_checks() {
        // NA-LSTM: no node attention, pooled directly.
        let mut spec = raal_spec();
        spec.stages[1] = Stage::new("pool.mean", ShapeOp::MeanPool, vec![]);
        check(&spec).expect("NA-LSTM shape is consistent");
    }

    #[test]
    fn zero_width_input_is_rejected() {
        let mut spec = raal_spec();
        spec.node_input = 0;
        let e = check(&spec).unwrap_err();
        assert_eq!(e.layer, "input");
    }

    #[test]
    fn report_renders_every_stage() {
        let report = check(&raal_spec()).unwrap();
        let text = report.to_string();
        assert!(text.contains("plan.lstm") && text.contains("[n, 64]"), "{text}");
        assert!(text.contains("head.out") && text.contains("[1, 1]"), "{text}");
    }

    #[test]
    fn quant_mirror_with_matching_shape_is_accepted() {
        let src = ParamShape::new("plan.lstm.wx", 132, 256);
        let mirror = QuantParamShape {
            name: "plan.lstm.wx".into(),
            rows: 132,
            cols: 256,
            scales: 132,
        };
        check_quant_mirror(&src, &mirror).expect("structurally identical mirror");
    }

    #[test]
    fn quant_mirror_name_drift_is_rejected() {
        let src = ParamShape::new("attn.node.wq", 64, 32);
        let mirror = QuantParamShape {
            name: "attn.node.wk".into(),
            rows: 64,
            cols: 32,
            scales: 64,
        };
        let e = check_quant_mirror(&src, &mirror).unwrap_err();
        assert_eq!(e.layer, "attn.node.wq");
        assert!(e.message.contains("named 'attn.node.wk'"), "{e}");
    }

    #[test]
    fn quant_mirror_shape_drift_is_rejected() {
        let src = ParamShape::new("head.1.w", 143, 64);
        let mirror = QuantParamShape {
            name: "head.1.w".into(),
            rows: 64,
            cols: 143,
            scales: 64,
        };
        let e = check_quant_mirror(&src, &mirror).unwrap_err();
        assert_eq!(e.layer, "head.1.w");
        assert!(e.message.contains("64x143") && e.message.contains("143x64"), "{e}");
    }

    #[test]
    fn quant_mirror_scale_count_mismatch_is_rejected() {
        let src = ParamShape::new("head.out.w", 32, 1);
        // A per-column scale vector (or a truncated one) must be refused:
        // dequantization folds exactly one scale per contraction row.
        let mirror = QuantParamShape {
            name: "head.out.w".into(),
            rows: 32,
            cols: 1,
            scales: 1,
        };
        let e = check_quant_mirror(&src, &mirror).unwrap_err();
        assert_eq!(e.layer, "head.out.w");
        assert!(e.message.contains("1 per-row scales for 32 rows"), "{e}");
    }
}
