//! A whole-workspace lexical call-graph extractor.
//!
//! Built on the [`crate::lex`] hand lexer — no rustc, no syn — so it
//! shares `raal-lint`'s zero-dependency posture and its soundness
//! model: the graph is an *over-approximation* of the real call graph
//! wherever the lexical scan cannot resolve a callee precisely, and the
//! few places it can under-approximate are documented (DESIGN.md §16).
//!
//! **Definitions.** Every `fn` item in every workspace source becomes a
//! [`FnNode`], keyed by crate, enclosing `impl` type (when the `fn` sits
//! inside an `impl Ty { .. }` or `impl Trait for Ty { .. }` block) and
//! name. Test code (`#[cfg(test)]` modules, `tests/`, `benches/`) is
//! carried but marked, so hot-path analyses can skip it.
//!
//! **Call resolution**, from most to least precise:
//!
//! * `self.name(..)` / `Self::name(..)` — resolved to the method `name`
//!   of the enclosing impl type when it exists, else falls through to
//!   the by-name rule.
//! * `Qual::name(..)` — when `Qual` is a known workspace impl type, the
//!   edge goes to that type's `name` method; when `Qual` is anything
//!   else (a module path, an external type), the edge goes to every
//!   workspace *free* function called `name`, else every function
//!   called `name`.
//! * `recv.name(..)` with an opaque receiver — the **unknown-callee**
//!   rule: conservative edges to *every* workspace function named
//!   `name`, whatever its impl type. This is what makes reachability an
//!   over-approximation rather than a guess.
//! * `name(..)` — every workspace free function named `name`.
//!
//! Call names that match no workspace function at all (std and vendored
//! callees such as `Vec::push` or `iter().map(..)`) resolve to no edge;
//! they are recorded per node in [`CallGraph::external`] for
//! diagnostics. Panic/alloc behaviour of std callees is instead covered
//! by the *site* catalogs in [`crate::panic`], which look at the caller
//! text — so an unresolved `.unwrap()` still counts as a panic site in
//! the function that wrote it.
//!
//! Macro bodies are scanned as text (a call inside `format!(..)` still
//! produces an edge); macro *invocations* themselves (`name!(..)`) are
//! not call edges.

use crate::lex::{self, FnSpan, Views};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

/// Rust keywords and keyword-like tokens that can precede `(` without
/// being a call.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "static", "struct", "super", "trait", "true", "type", "unsafe",
    "use", "where", "while", "yield",
];

/// Method names from the std prelude vocabulary (Iterator / Option /
/// Result / collections / Default / Clone / Display). A dotted call
/// with one of these names almost always targets std — linking
/// `predict_packed_with`'s `.collect()` to an unrelated
/// `Collector::collect` three crates away, or a kernel's
/// `.enumerate()` to `Planner::enumerate`, would drag entire crates
/// into hot-path reachability. These names are therefore treated as
/// *external* at unknown-receiver call sites: no fan-out edge. The
/// cost is a documented under-approximation — a workspace method that
/// shadows a std name is only resolved when the receiver type is
/// inferable (`self.`, `Type::`). Sync vocabulary (`lock`, `send`,
/// `recv`, `wait`) is included deliberately: in production builds the
/// `raal_sync` primitives are std re-exports, and the `checked` shims
/// they shadow are compiled only under `cfg(raal_model_check)`, so a
/// dotted `.send(` in serving code targets std, not the model-check
/// scheduler.
const STD_METHODS: &[&str] = &[
    "abs",
    "add",
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "borrow",
    "borrow_mut",
    "ceil",
    "chain",
    "chunks",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "copied",
    "count",
    "default",
    "drain",
    "entry",
    "enumerate",
    "ends_with",
    "eq",
    "exp",
    "extend",
    "filter",
    "filter_map",
    "find",
    "first",
    "flat_map",
    "flatten",
    "floor",
    "flush",
    "fmt",
    "fold",
    "from_iter",
    "get",
    "get_mut",
    "hash",
    "index",
    "insert",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "ln",
    "load",
    "lock",
    "map",
    "max",
    "max_by",
    "max_by_key",
    "min",
    "min_by",
    "min_by_key",
    "mul_add",
    "next",
    "notify_all",
    "notify_one",
    "nth",
    "offset",
    "ok_or",
    "ok_or_else",
    "or_else",
    "parse",
    "partial_cmp",
    "peek",
    "pop",
    "position",
    "powf",
    "powi",
    "product",
    "push",
    "read",
    "recv",
    "recv_timeout",
    "remove",
    "replace",
    "reserve",
    "resize",
    "retain",
    "rev",
    "round",
    "send",
    "skip",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "split",
    "sqrt",
    "starts_with",
    "step_by",
    "store",
    "sub",
    "sum",
    "swap",
    "take",
    "tanh",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "try_recv",
    "values",
    "wait",
    "wait_timeout",
    "windows",
    "write",
    "zip",
];

/// One function definition found in the workspace.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Index of the defining file in the source list passed to
    /// [`CallGraph::build`].
    pub file: usize,
    /// Workspace-relative path of the defining file.
    pub path: String,
    /// Crate name (`crates/<name>/...`), or `""` outside `crates/`.
    pub krate: String,
    /// Enclosing `impl` type, when the fn is a method / associated fn.
    pub self_ty: Option<String>,
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Byte range of the body braces in the defining file.
    pub body: Range<usize>,
    /// Whether the fn lives in test code (cfg(test) module, tests/ or
    /// benches/ path).
    pub is_test: bool,
}

impl FnNode {
    /// `Type::name` or plain `name`, for messages.
    pub fn qualified(&self) -> String {
        match &self.self_ty {
            Some(ty) => format!("{ty}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A declared hot entry point, matched against [`FnNode`]s by crate,
/// impl type and name.
#[derive(Debug, Clone, Copy)]
pub struct EntryPoint {
    /// Crate the entry point lives in.
    pub krate: &'static str,
    /// Impl type for methods, `None` for free functions.
    pub self_ty: Option<&'static str>,
    /// Function name.
    pub name: &'static str,
}

/// The serving-path entry points whose transitive callees must be
/// panic-free and allocation-free (or justified). Kept here — next to
/// the resolution rules — so the list is versioned with the analyzer.
///
/// The set covers the three layers of the latency path: the serving
/// facade (`ServingModel::predict*` and the frozen snapshot it hands to
/// its worker), the model fast paths (`CostModel` / `FrozenModel`
/// context planning and packed prediction), the `nn` inference kernel
/// set, and the telemetry record calls those paths are allowed to make.
/// `CostModel::predict_batch` is deliberately absent: it spawns scoped
/// threads per call, which is a throughput API, not the steady-state
/// latency path.
pub const HOT_ENTRY_POINTS: &[EntryPoint] = &[
    EntryPoint {
        krate: "core",
        self_ty: Some("ServingModel"),
        name: "predict",
    },
    EntryPoint {
        krate: "core",
        self_ty: Some("ServingModel"),
        name: "predict_many",
    },
    // The sharded service's client side and its per-shard dispatcher
    // loop: both run per-request in steady state, so the whole
    // queue/coalesce/settle path is held to the same standard.
    EntryPoint {
        krate: "core",
        self_ty: Some("ShardedServing"),
        name: "predict",
    },
    EntryPoint {
        krate: "core",
        self_ty: Some("ShardedServing"),
        name: "predict_many",
    },
    EntryPoint {
        krate: "core",
        self_ty: None,
        name: "dispatch_loop",
    },
    EntryPoint {
        krate: "core",
        self_ty: Some("FrozenModel"),
        name: "predict_seconds",
    },
    EntryPoint {
        krate: "core",
        self_ty: Some("FrozenModel"),
        name: "predict_with_context",
    },
    EntryPoint {
        krate: "core",
        self_ty: Some("FrozenModel"),
        name: "plan_context",
    },
    EntryPoint {
        krate: "core",
        self_ty: Some("FrozenModel"),
        name: "predict_packed",
    },
    EntryPoint {
        krate: "core",
        self_ty: Some("CostModel"),
        name: "predict_seconds",
    },
    EntryPoint {
        krate: "core",
        self_ty: Some("CostModel"),
        name: "predict_seconds_quant",
    },
    EntryPoint {
        krate: "core",
        self_ty: Some("CostModel"),
        name: "predict_with_context",
    },
    EntryPoint {
        krate: "core",
        self_ty: Some("CostModel"),
        name: "plan_context",
    },
    EntryPoint {
        krate: "core",
        self_ty: Some("CostModel"),
        name: "predict_packed",
    },
    EntryPoint { krate: "nn", self_ty: None, name: "matmul_into" },
    EntryPoint { krate: "nn", self_ty: None, name: "matmul_q8_into" },
    EntryPoint {
        krate: "nn",
        self_ty: None,
        name: "softmax_inplace",
    },
    EntryPoint { krate: "nn", self_ty: None, name: "sigmoid_slice" },
    EntryPoint { krate: "nn", self_ty: None, name: "tanh_slice" },
    EntryPoint { krate: "nn", self_ty: None, name: "activate" },
    EntryPoint { krate: "nn", self_ty: None, name: "dot" },
    EntryPoint { krate: "nn", self_ty: None, name: "axpy" },
    EntryPoint { krate: "telemetry", self_ty: None, name: "count" },
    EntryPoint { krate: "telemetry", self_ty: None, name: "observe" },
    EntryPoint { krate: "telemetry", self_ty: None, name: "gauge" },
];

/// The workspace call graph: nodes, adjacency, and the unresolved
/// (external) callee names per node.
pub struct CallGraph {
    /// All function definitions, in file order.
    pub fns: Vec<FnNode>,
    edges: Vec<Vec<usize>>,
    /// Per node, callee names that matched no workspace function.
    pub external: Vec<BTreeSet<String>>,
}

/// Result of a reachability sweep: which nodes are reachable and, for
/// each, the caller that first reached it (for witness chains).
pub struct Reachability {
    /// `reached[i]` — node `i` is transitively callable from a root.
    pub reached: Vec<bool>,
    /// BFS parent of each reached node (`None` for roots).
    pub parent: Vec<Option<usize>>,
}

impl CallGraph {
    /// Extracts the call graph from `(relative path, source)` pairs.
    pub fn build(sources: &[(String, String)]) -> CallGraph {
        let mut fns: Vec<FnNode> = Vec::new();
        let mut views: Vec<Views> = Vec::with_capacity(sources.len());
        let mut spans_per_file: Vec<Vec<FnSpan>> = Vec::with_capacity(sources.len());
        for (file, (rel, source)) in sources.iter().enumerate() {
            let v = lex::lex_views(source);
            let starts = lex::line_starts(source);
            let tests = lex::test_ranges(&v.blanked);
            let impls = impl_blocks(&v.blanked);
            let spans = lex::fn_spans(&v.blanked);
            let test_file = lex::is_test_path(rel);
            for s in &spans {
                // Innermost enclosing impl block claims the fn.
                let self_ty = impls
                    .iter()
                    .filter(|(r, _)| r.contains(&s.at))
                    .min_by_key(|(r, _)| r.len())
                    .map(|(_, ty)| ty.clone());
                fns.push(FnNode {
                    file,
                    path: rel.clone(),
                    krate: lex::crate_of(rel).unwrap_or("").to_string(),
                    self_ty,
                    name: s.name.clone(),
                    line: lex::line_of(&starts, s.at),
                    body: s.range.clone(),
                    is_test: test_file || lex::in_ranges(&tests, s.at),
                });
            }
            views.push(v);
            spans_per_file.push(spans);
        }

        // Name indices over the collected nodes.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut known_tys: BTreeSet<&str> = BTreeSet::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(&f.name).or_default().push(i);
            match &f.self_ty {
                Some(ty) => {
                    methods.entry((ty, &f.name)).or_default().push(i);
                    known_tys.insert(ty);
                }
                None => free_by_name.entry(&f.name).or_default().push(i),
            }
        }

        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
        let mut external: Vec<BTreeSet<String>> = vec![BTreeSet::new(); fns.len()];
        for (i, f) in fns.iter().enumerate() {
            if f.is_test {
                // Test code never seeds or propagates hot-path
                // reachability; leaving its edges out keeps a fan-out
                // that happens to hit a test helper from dragging the
                // whole test module into the reachable set.
                continue;
            }
            let blanked = &views[f.file].blanked;
            // A nested fn's body is inside ours; its calls are its own.
            let inner: Vec<Range<usize>> = spans_per_file[f.file]
                .iter()
                .filter(|s| s.range.start > f.body.start && s.range.end <= f.body.end)
                .map(|s| s.range.clone())
                .collect();
            // Fan-out candidate set for a callee we cannot type: every
            // same-named fn — except std prelude vocabulary, which is
            // assumed external (see [`STD_METHODS`]).
            let fan_out = |name: &str| -> Vec<usize> {
                if STD_METHODS.contains(&name) {
                    return Vec::new();
                }
                by_name.get(name).cloned().unwrap_or_default()
            };
            for call in call_sites(blanked, f.body.clone()) {
                if lex::in_ranges(&inner, call.at) {
                    continue;
                }
                let mut targets: Vec<usize> = Vec::new();
                match call.kind {
                    CallKind::SelfMethod => {
                        let own = f
                            .self_ty
                            .as_deref()
                            .and_then(|ty| methods.get(&(ty, call.name.as_str())));
                        match own {
                            Some(list) => targets.extend_from_slice(list),
                            // A trait-provided or derived method: fall
                            // back to the fan-out set.
                            None => targets.extend(fan_out(&call.name)),
                        }
                    }
                    CallKind::Qualified(ref qual) => {
                        let qual: &str = match qual.as_str() {
                            "Self" | "self" => f.self_ty.as_deref().unwrap_or(""),
                            q => q,
                        };
                        if known_tys.contains(qual) {
                            match methods.get(&(qual, call.name.as_str())) {
                                Some(list) => targets.extend_from_slice(list),
                                None => targets.extend(fan_out(&call.name)),
                            }
                        } else if let Some(list) = free_by_name.get(call.name.as_str()) {
                            // Module-qualified free fn (`infer::dot(..)`).
                            targets.extend_from_slice(list);
                        }
                        // An unknown qualifier with no free-fn match is an
                        // external type (`String::from`, `StdRng::..`):
                        // no edge, recorded below.
                    }
                    CallKind::Method => {
                        // Unknown receiver: conservative fan-out to every
                        // same-named (crate-filtered for std vocabulary)
                        // workspace fn.
                        targets.extend(fan_out(&call.name));
                    }
                    CallKind::Free => {
                        targets.extend(free_by_name.get(call.name.as_str()).into_iter().flatten());
                    }
                }
                if targets.is_empty() {
                    external[i].insert(call.name);
                } else {
                    edges[i].extend(targets);
                }
            }
            edges[i].sort_unstable();
            edges[i].dedup();
        }
        CallGraph { fns, edges, external }
    }

    /// The callee indices of node `i`.
    pub fn edges_of(&self, i: usize) -> &[usize] {
        &self.edges[i]
    }

    /// Indices of the nodes matching `(krate, self_ty, name)`.
    pub fn find(&self, krate: &str, self_ty: Option<&str>, name: &str) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                f.krate == krate && f.name == name && f.self_ty.as_deref() == self_ty && !f.is_test
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of all nodes matching the declared hot entry points.
    pub fn entry_indices(&self, entries: &[EntryPoint]) -> Vec<usize> {
        let mut out: Vec<usize> = entries
            .iter()
            .flat_map(|e| self.find(e.krate, e.self_ty, e.name))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// BFS from `roots`, following call edges.
    pub fn reachable_from(&self, roots: &[usize]) -> Reachability {
        let n = self.fns.len();
        let mut reached = vec![false; n];
        let mut parent = vec![None; n];
        let mut queue: std::collections::VecDeque<usize> = roots
            .iter()
            .copied()
            .filter(|&r| {
                let fresh = !reached[r];
                reached[r] = true;
                fresh
            })
            .collect();
        while let Some(u) = queue.pop_front() {
            for &v in &self.edges[u] {
                if !reached[v] {
                    reached[v] = true;
                    parent[v] = Some(u);
                    queue.push_back(v);
                }
            }
        }
        Reachability { reached, parent }
    }

    /// The witness chain root → … → `i` as `Type::name` strings.
    pub fn chain(&self, reach: &Reachability, i: usize) -> Vec<String> {
        let mut rev = vec![i];
        let mut cur = i;
        while let Some(p) = reach.parent[cur] {
            rev.push(p);
            cur = p;
        }
        rev.iter().rev().map(|&j| self.fns[j].qualified()).collect()
    }
}

/// Pure reachability over an explicit edge list — the algorithm behind
/// [`CallGraph::reachable_from`], exposed for property tests (e.g.
/// monotonicity under edge addition).
pub fn reachable(n: usize, edges: &[(usize, usize)], roots: &[usize]) -> Vec<bool> {
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(u, v) in edges {
        if u < n && v < n {
            adj[u].push(v);
        }
    }
    let mut reached = vec![false; n];
    let mut queue: std::collections::VecDeque<usize> =
        Vec::from(roots).into_iter().filter(|&r| r < n).collect();
    for &r in queue.iter() {
        reached[r] = true;
    }
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u] {
            if !reached[v] {
                reached[v] = true;
                queue.push_back(v);
            }
        }
    }
    reached
}

/// `impl` block body ranges with the cleaned self-type name.
fn impl_blocks(blanked: &str) -> Vec<(Range<usize>, String)> {
    let bytes = blanked.as_bytes();
    let n = bytes.len();
    let mut out = Vec::new();
    for at in lex::find_word(blanked, "impl") {
        let mut i = at + 4;
        while i < n && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        // Skip the generic parameter list of `impl<..>`.
        if i < n && bytes[i] == b'<' {
            let mut depth = 1i32;
            i += 1;
            while i < n && depth > 0 {
                match bytes[i] {
                    b'<' => depth += 1,
                    b'>' => depth -= 1,
                    _ => {}
                }
                i += 1;
            }
        }
        // Header runs to the block `{` at angle depth 0. Track the
        // first top-level ` for ` separating trait from self type.
        let hdr_start = i;
        let mut depth = 0i32;
        let mut for_at: Option<usize> = None;
        let mut open = None;
        while i < n {
            match bytes[i] {
                b'<' => depth += 1,
                b'>' => depth = (depth - 1).max(0),
                b'{' if depth == 0 => {
                    open = Some(i);
                    break;
                }
                b';' if depth == 0 => break,
                b'f' if depth == 0
                    && for_at.is_none()
                    && blanked[i..].starts_with("for")
                    && (i == 0 || !lex::is_ident_byte(bytes[i - 1]))
                    && !lex::is_ident_byte(*bytes.get(i + 3).unwrap_or(&b' ')) =>
                {
                    for_at = Some(i);
                }
                _ => {}
            }
            i += 1;
        }
        let Some(open) = open else { continue };
        let ty_txt = match for_at {
            Some(p) => &blanked[p + 3..open],
            None => &blanked[hdr_start..open],
        };
        let Some(ty) = clean_type_name(ty_txt) else {
            continue;
        };
        out.push((open..lex::match_brace(bytes, open), ty));
    }
    out
}

/// The head identifier of a self-type expression: strips references,
/// `mut` / `dyn`, lifetimes and a leading path, truncates at generics.
/// `&'a mut crate::serving::Handoff<Req, Resp>` → `Handoff`.
fn clean_type_name(txt: &str) -> Option<String> {
    let mut t = txt.trim();
    loop {
        let before = t;
        t = t.trim_start_matches(['&', '(']).trim_start();
        if let Some(rest) = t.strip_prefix('\'') {
            // Lifetime: skip the identifier after the tick.
            t = rest
                .trim_start_matches(|c: char| c.is_alphanumeric() || c == '_')
                .trim_start();
        }
        for kw in ["mut ", "dyn ", "where "] {
            t = t.strip_prefix(kw).unwrap_or(t).trim_start();
        }
        if t == before {
            break;
        }
    }
    let head: &str = t
        .split(|c: char| c == '<' || c == '(' || c.is_whitespace())
        .next()
        .unwrap_or("");
    let name = head.rsplit("::").next().unwrap_or("").trim();
    if name.is_empty() || !name.bytes().all(lex::is_ident_byte) {
        None
    } else {
        Some(name.to_string())
    }
}

/// How a call site names its callee.
enum CallKind {
    /// `self.name(..)`.
    SelfMethod,
    /// `Qual::name(..)` — the last path segment before the name.
    Qualified(String),
    /// `recv.name(..)` with an opaque receiver.
    Method,
    /// Plain `name(..)`.
    Free,
}

struct CallSite {
    at: usize,
    name: String,
    kind: CallKind,
}

/// Lexical call sites inside `body` of the blanked view: an identifier
/// followed (modulo whitespace and a turbofish) by `(`, that is neither
/// a keyword, a macro invocation, nor a `fn` definition header.
fn call_sites(blanked: &str, body: Range<usize>) -> Vec<CallSite> {
    let bytes = blanked.as_bytes();
    let n = body.end.min(bytes.len());
    let mut out = Vec::new();
    let mut i = body.start;
    while i < n {
        if !lex::is_ident_byte(bytes[i]) || (i > 0 && lex::is_ident_byte(bytes[i - 1])) {
            i += 1;
            continue;
        }
        let at = i;
        let mut j = i;
        while j < n && lex::is_ident_byte(bytes[j]) {
            j += 1;
        }
        i = j;
        let name = &blanked[at..j];
        if name.as_bytes()[0].is_ascii_digit() || KEYWORDS.contains(&name) {
            continue;
        }
        // Optional turbofish, then `(` makes it a call; `!` a macro.
        let mut k = j;
        while k < n && bytes[k].is_ascii_whitespace() {
            k += 1;
        }
        if blanked[k..].starts_with("::<") {
            let mut depth = 1i32;
            k += 3;
            while k < n && depth > 0 {
                match bytes[k] {
                    b'<' => depth += 1,
                    b'>' => depth -= 1,
                    _ => {}
                }
                k += 1;
            }
            while k < n && bytes[k].is_ascii_whitespace() {
                k += 1;
            }
        }
        if k >= n || bytes[k] != b'(' {
            continue;
        }
        // Context before the identifier decides the call kind.
        let mut p = at;
        while p > body.start && bytes[p - 1].is_ascii_whitespace() {
            p -= 1;
        }
        let kind = if p >= 2 && &blanked[p - 2..p] == "::" {
            // Walk back over the qualifying path segment.
            let mut q = p - 2;
            while q > body.start && lex::is_ident_byte(bytes[q - 1]) {
                q -= 1;
            }
            let qual = &blanked[q..p - 2];
            if qual.is_empty() {
                CallKind::Free // leading `::name(..)`
            } else {
                CallKind::Qualified(qual.to_string())
            }
        } else if p >= 1 && bytes[p - 1] == b'.' {
            // Receiver directly before the dot: `self.name(..)` only
            // when the whole receiver is the `self` token.
            let mut q = p - 1;
            while q > body.start && lex::is_ident_byte(bytes[q - 1]) {
                q -= 1;
            }
            let recv = &blanked[q..p - 1];
            let deeper = q > body.start && matches!(bytes[q - 1], b'.' | b')' | b']');
            if recv == "self" && !deeper {
                CallKind::SelfMethod
            } else {
                CallKind::Method
            }
        } else {
            // `fn name(` is a definition, not a call. (`fn` is the
            // preceding word; attributes/visibility cannot intervene
            // between `fn` and the name.)
            let mut q = p;
            while q > body.start && lex::is_ident_byte(bytes[q - 1]) {
                q -= 1;
            }
            if &blanked[q..p] == "fn" {
                continue;
            }
            CallKind::Free
        };
        out.push(CallSite { at, name: name.to_string(), kind });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let sources: Vec<(String, String)> =
            files.iter().map(|(p, s)| (p.to_string(), s.to_string())).collect();
        CallGraph::build(&sources)
    }

    fn idx(g: &CallGraph, ty: Option<&str>, name: &str) -> usize {
        g.fns
            .iter()
            .position(|f| f.self_ty.as_deref() == ty && f.name == name)
            .unwrap_or_else(|| panic!("no fn {ty:?}::{name}"))
    }

    #[test]
    fn self_method_resolves_to_own_impl_only() {
        let g = graph(&[(
            "crates/core/src/a.rs",
            "pub struct A;\npub struct B;\n\
             impl A {\n    pub fn go(&self) { self.step(); }\n    fn step(&self) {}\n}\n\
             impl B {\n    fn step(&self) {}\n}\n",
        )]);
        let go = idx(&g, Some("A"), "go");
        let a_step = idx(&g, Some("A"), "step");
        let b_step = idx(&g, Some("B"), "step");
        assert_eq!(g.edges_of(go), &[a_step]);
        assert_ne!(a_step, b_step);
    }

    #[test]
    fn opaque_receiver_fans_out_to_every_same_named_fn() {
        let g = graph(&[(
            "crates/core/src/a.rs",
            "pub struct A;\npub struct B;\n\
             impl A {\n    fn step(&self) {}\n}\n\
             impl B {\n    fn step(&self) {}\n}\n\
             pub fn drive(x: &A) { x.step(); }\n",
        )]);
        let drive = idx(&g, None, "drive");
        let mut want = vec![idx(&g, Some("A"), "step"), idx(&g, Some("B"), "step")];
        want.sort_unstable();
        assert_eq!(g.edges_of(drive), want.as_slice(), "unknown receiver must be conservative");
    }

    #[test]
    fn qualified_type_call_resolves_by_receiver_type() {
        let g = graph(&[(
            "crates/core/src/a.rs",
            "pub struct A;\npub struct B;\n\
             impl A {\n    pub fn make() -> A { A }\n}\n\
             impl B {\n    pub fn make() -> B { B }\n}\n\
             pub fn build() { let _ = A::make(); }\n",
        )]);
        let build = idx(&g, None, "build");
        assert_eq!(g.edges_of(build), &[idx(&g, Some("A"), "make")]);
    }

    #[test]
    fn module_qualified_free_fn_resolves_across_crates() {
        let g = graph(&[
            (
                "crates/core/src/a.rs",
                "pub fn predict() { infer::dot(); telemetry::count(); }\n",
            ),
            ("crates/nn/src/infer.rs", "pub fn dot() {}\n"),
            ("crates/telemetry/src/lib.rs", "pub fn count() {}\n"),
        ]);
        let predict = idx(&g, None, "predict");
        let mut want = vec![idx(&g, None, "dot"), idx(&g, None, "count")];
        want.sort_unstable();
        assert_eq!(g.edges_of(predict), want.as_slice());
    }

    #[test]
    fn external_calls_make_no_edges_but_are_recorded() {
        let g = graph(&[(
            "crates/core/src/a.rs",
            "pub fn f(v: &mut Vec<u32>) { v.push(1); String::from(\"x\"); }\n",
        )]);
        let f = idx(&g, None, "f");
        assert!(g.edges_of(f).is_empty());
        assert!(g.external[f].contains("push"), "{:?}", g.external[f]);
        assert!(g.external[f].contains("from"), "{:?}", g.external[f]);
    }

    #[test]
    fn plain_call_does_not_link_methods() {
        // An unqualified `step()` cannot be a method call; only free
        // fns are candidates.
        let g = graph(&[(
            "crates/core/src/a.rs",
            "pub struct A;\nimpl A {\n    fn step(&self) {}\n}\n\
             pub fn step_free() {}\npub fn f() { step_free(); }\n",
        )]);
        let f = idx(&g, None, "f");
        assert_eq!(g.edges_of(f), &[idx(&g, None, "step_free")]);
    }

    #[test]
    fn impl_trait_for_type_keys_methods_by_the_type() {
        let g = graph(&[(
            "crates/core/src/a.rs",
            "pub struct W;\npub trait Work { fn work(&self); }\n\
             impl Work for W {\n    fn work(&self) { helper(); }\n}\n\
             fn helper() {}\n\
             pub fn run() { W::work(&W); }\n",
        )]);
        let run = idx(&g, None, "run");
        let work = idx(&g, Some("W"), "work");
        assert_eq!(g.edges_of(run), &[work]);
        assert_eq!(g.edges_of(work), &[idx(&g, None, "helper")]);
    }

    #[test]
    fn generic_impl_headers_resolve_their_type_name() {
        let g = graph(&[(
            "crates/core/src/a.rs",
            "pub struct H<Q, R> { q: Q, r: R }\n\
             impl<Q: Send, R> H<Q, R> {\n    pub fn go(&self) {}\n}\n\
             impl<'a> std::fmt::Display for &'a H<u8, u8> {\n\
                 fn fmt(&self, _f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { todo!() }\n\
             }\n",
        )]);
        assert!(g
            .fns
            .iter()
            .any(|f| f.self_ty.as_deref() == Some("H") && f.name == "go"));
        assert!(g
            .fns
            .iter()
            .any(|f| f.self_ty.as_deref() == Some("H") && f.name == "fmt"));
    }

    #[test]
    fn test_code_is_marked() {
        let g = graph(&[
            (
                "crates/core/src/a.rs",
                "pub fn lib_fn() {}\n#[cfg(test)]\nmod tests {\n    fn t() { lib_fn(); }\n}\n",
            ),
            ("crates/core/tests/x.rs", "fn integration() {}\n"),
        ]);
        assert!(!g.fns[idx(&g, None, "lib_fn")].is_test);
        assert!(g.fns[idx(&g, None, "t")].is_test);
        assert!(g.fns[idx(&g, None, "integration")].is_test);
    }

    #[test]
    fn macro_invocations_are_not_call_edges() {
        let g = graph(&[(
            "crates/core/src/a.rs",
            "pub fn assert_eq() {}\npub fn f() { assert_eq!(1, 1); }\n",
        )]);
        let f = idx(&g, None, "f");
        assert!(g.edges_of(f).is_empty(), "macro must not alias the fn of the same name");
    }

    #[test]
    fn turbofish_calls_still_resolve() {
        let g = graph(&[(
            "crates/core/src/a.rs",
            "pub fn make() {}\npub fn f() { make::<>(); parse::<u32>(); }\n",
        )]);
        let f = idx(&g, None, "f");
        assert_eq!(g.edges_of(f), &[idx(&g, None, "make")]);
        assert!(g.external[f].contains("parse"));
    }

    #[test]
    fn entry_points_and_chains() {
        let g = graph(&[
            (
                "crates/core/src/serving/mod.rs",
                "pub struct ServingModel;\nimpl ServingModel {\n    \
                 pub fn predict(&self) { self.inner(); }\n    \
                 fn inner(&self) { nn::matmul_into(); }\n}\n",
            ),
            ("crates/nn/src/infer.rs", "pub fn matmul_into() { helper(); }\nfn helper() {}\n"),
        ]);
        let roots = g.entry_indices(HOT_ENTRY_POINTS);
        assert!(!roots.is_empty());
        let reach = g.reachable_from(&roots);
        let helper = idx(&g, None, "helper");
        assert!(reach.reached[helper]);
        let chain = g.chain(&reach, helper);
        assert_eq!(chain.last().map(String::as_str), Some("helper"));
        assert!(chain.len() >= 2, "{chain:?}");
    }

    #[test]
    fn reachability_helper_matches_graph_bfs() {
        let edges = [(0usize, 1usize), (1, 2), (3, 4)];
        let r = reachable(5, &edges, &[0]);
        assert_eq!(r, vec![true, true, true, false, false]);
        let r = reachable(5, &edges, &[3]);
        assert_eq!(r, vec![false, false, false, true, true]);
    }
}
