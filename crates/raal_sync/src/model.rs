//! Deterministic schedule exploration for concurrent code (loom-style).
//!
//! [`check`] runs a closure repeatedly, once per distinct thread
//! interleaving, with every context switch decided by a DFS over the
//! tree of scheduling choices. Threads are real OS threads, but exactly
//! one runs at a time: each operation on a [`checked`](crate::checked)
//! primitive (lock, channel op, atomic access, spawn, join) is a
//! *switch point* where the explorer may hand control to another
//! runnable thread.
//!
//! The search is bounded two ways:
//!
//! * **context-switch bounding** — at most [`Config::max_preemptions`]
//!   *voluntary* preemptions per schedule (switching away from a thread
//!   that could have continued). Forced switches — the current thread
//!   blocked on a lock, an empty channel, a condvar or a join — are
//!   free. Most concurrency bugs manifest within two or three
//!   preemptions (the CHESS observation: Musuvathi & Qadeer, PLDI
//!   2007), so a small bound explores the interesting schedules without
//!   the exponential tail.
//! * **schedule and step caps** — [`Config::max_schedules`] /
//!   [`Config::max_steps`] are safety valves against state-space or
//!   livelock blowups; hitting them is reported, never silent.
//!
//! A failing schedule — deadlock, a panic in any model thread, or a
//! step-limit livelock — is reported with a printable **seed** encoding
//! the exact decision sequence. [`replay`] re-executes that one
//! schedule deterministically, so a CI failure reproduces locally with
//! no search. [`explore`] (the `assert!`-style wrapper used by tests)
//! panics with the seed in the message and honours the `RAAL_MC_SEED`
//! environment variable for replay under a test harness.
//!
//! ## What the model guarantees
//!
//! Within the preemption bound, a closure that passes [`check`] has no
//! schedule that deadlocks (including lost condvar wakeups — a missed
//! notify leaves the waiter blocked forever, which the idle detector
//! reports), no schedule that panics, and no schedule that livelocks
//! past the step cap. Timed waits (`recv_timeout`-style) are modelled
//! as a nondeterministic branch — the timeout either fires or the wait
//! continues — so serving-code deadline paths are explored, and a
//! timed wait alone never counts as a deadlock (its timeout would fire
//! in reality).
//!
//! Atomics are modelled sequentially consistent regardless of the
//! `Ordering` argument (every access is still a switch point). Weaker
//! orderings therefore cannot produce model-only failures here; the
//! static side of the audit — `raal-lint`'s `atomic-ordering` rule —
//! demands a written justification for every `Relaxed` site instead.

use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// Search bounds for [`check`].
#[derive(Debug, Clone)]
pub struct Config {
    /// Maximum voluntary preemptions per schedule (forced switches are
    /// free). The state space grows combinatorially with this; 2–3
    /// catches most real interleaving bugs.
    pub max_preemptions: usize,
    /// Hard cap on the number of schedules explored; exceeding it makes
    /// the run incomplete ([`Report::complete`]), not a failure.
    pub max_schedules: usize,
    /// Hard cap on switch points within one schedule; exceeding it is
    /// reported as a livelock ([`FailureKind::StepLimit`]).
    pub max_steps: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            max_preemptions: 2,
            max_schedules: 100_000,
            max_steps: 50_000,
        }
    }
}

/// Why a schedule failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// No thread can run: every live thread is blocked on a lock,
    /// condvar, channel or join. The strings describe each thread.
    Deadlock(Vec<String>),
    /// A model thread panicked; carries the payload's message.
    Panic(String),
    /// One schedule exceeded [`Config::max_steps`] switch points.
    StepLimit,
    /// A replay seed did not match the execution (wrong seed, or the
    /// closure is nondeterministic beyond scheduling).
    ReplayDiverged(String),
}

/// A failed exploration: the kind, the seed that reproduces it, and how
/// many schedules had passed before it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// What went wrong.
    pub kind: FailureKind,
    /// Decision-sequence seed; feed to [`replay`] (or `RAAL_MC_SEED`)
    /// to re-execute exactly this schedule.
    pub seed: String,
    /// 0-based index of the failing schedule in DFS order.
    pub schedule: usize,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            FailureKind::Deadlock(states) => {
                writeln!(f, "deadlock in schedule {} — thread states:", self.schedule)?;
                for s in states {
                    writeln!(f, "  {s}")?;
                }
            }
            FailureKind::Panic(msg) => {
                writeln!(f, "panic in schedule {}: {msg}", self.schedule)?;
            }
            FailureKind::StepLimit => {
                writeln!(f, "schedule {} exceeded the step limit (livelock?)", self.schedule)?;
            }
            FailureKind::ReplayDiverged(why) => {
                writeln!(f, "replay diverged: {why}")?;
            }
        }
        write!(f, "replay with seed {}", self.seed)
    }
}

/// A completed exploration.
#[derive(Debug, Clone)]
pub struct Report {
    /// Schedules executed.
    pub schedules: usize,
    /// True when the bounded search space was exhausted; false when
    /// [`Config::max_schedules`] stopped the search early.
    pub complete: bool,
}

// ------------------------------------------------------------------ seeds

const SEED_PREFIX: &str = "mc1:";

fn encode_seed(choices: &[usize]) -> String {
    let body: Vec<String> = choices.iter().map(|c| c.to_string()).collect();
    format!("{SEED_PREFIX}{}", body.join("."))
}

fn decode_seed(seed: &str) -> Result<Vec<usize>, String> {
    let body = seed
        .strip_prefix(SEED_PREFIX)
        .ok_or_else(|| format!("seed must start with '{SEED_PREFIX}'"))?;
    if body.is_empty() {
        return Ok(Vec::new());
    }
    body.split('.')
        .map(|tok| tok.parse::<usize>().map_err(|_| format!("bad seed token '{tok}'")))
        .collect()
}

// --------------------------------------------------------- scheduler state

/// Panic payload used to unwind model threads during teardown; never
/// reported as a user failure.
pub(crate) struct Abort;

/// What a blocked model thread is waiting for. Resource ids are the
/// addresses of the owning primitive (stable for the object's lifetime,
/// which is all the bookkeeping needs — the maps reset per schedule).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Reason {
    /// Waiting to acquire the lock with this id.
    Lock(u64),
    /// Waiting on the condvar with this id.
    Condvar(u64),
    /// Waiting for data on the channel with this id.
    Recv(u64),
    /// Waiting for the thread with this index to finish.
    Join(usize),
}

impl Reason {
    /// Renders the reason using first-touch ordinals (`ords`) rather
    /// than raw addresses, so the text is identical across runs and a
    /// replayed failure prints the same states as the original.
    fn describe(self, ords: &HashMap<u64, usize>) -> String {
        let ord = |id: u64| ords.get(&id).map_or_else(|| "?".to_string(), |o| o.to_string());
        match self {
            Reason::Lock(id) => format!("blocked acquiring lock r{}", ord(id)),
            Reason::Condvar(id) => format!("waiting on condvar r{}", ord(id)),
            Reason::Recv(id) => format!("receiving on channel r{}", ord(id)),
            Reason::Join(t) => format!("joining thread {t}"),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TState {
    Runnable,
    Blocked { reason: Reason, timeoutable: bool },
    Finished,
}

struct LockSt {
    owner: Option<usize>,
    poisoned: bool,
}

struct St {
    threads: Vec<TState>,
    names: Vec<String>,
    current: usize,
    preemptions_left: usize,
    steps: usize,
    max_steps: usize,
    /// Decision indices to replay before exploring (DFS prefix or a
    /// user-supplied seed).
    prefix: Vec<usize>,
    cursor: usize,
    /// Every decision taken this schedule where more than one
    /// alternative existed: `(chosen, alternatives)`.
    trace: Vec<(usize, usize)>,
    /// In replay mode the execution must follow the seed exactly;
    /// needing a decision past its end is a divergence.
    strict_replay: bool,
    failure: Option<FailureKind>,
    aborting: bool,
    locks: HashMap<u64, LockSt>,
    /// FIFO wait queues per condvar id.
    cv_waiters: HashMap<u64, Vec<usize>>,
    /// Threads whose last block ended in a modelled timeout (set by the
    /// idle rescue, consumed when the thread resumes).
    timed_out: HashMap<usize, bool>,
    /// Resource id → first-touch ordinal; keeps printed thread states
    /// stable across runs (the ids themselves are addresses).
    res_ords: HashMap<u64, usize>,
    /// OS wrapper threads still live; the driver waits for zero before
    /// starting the next schedule.
    live_os: usize,
}

pub(crate) struct Sched {
    st: Mutex<St>,
    cv: Condvar,
}

type Guard<'a> = std::sync::MutexGuard<'a, St>;

impl Sched {
    fn new(cfg: &Config, prefix: Vec<usize>, strict_replay: bool) -> Self {
        Sched {
            st: Mutex::new(St {
                threads: vec![TState::Runnable],
                names: vec!["main".to_string()],
                current: 0,
                preemptions_left: cfg.max_preemptions,
                steps: 0,
                max_steps: cfg.max_steps,
                prefix,
                cursor: 0,
                trace: Vec::new(),
                strict_replay,
                failure: None,
                aborting: false,
                locks: HashMap::new(),
                cv_waiters: HashMap::new(),
                timed_out: HashMap::new(),
                res_ords: HashMap::new(),
                live_os: 0,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> Guard<'_> {
        self.st.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records a failure and unwinds every model thread. The caller is a
    /// model thread itself and unwinds via the panic.
    fn fail(&self, st: &mut St, kind: FailureKind) -> ! {
        if st.failure.is_none() {
            st.failure = Some(kind);
        }
        st.aborting = true;
        self.cv.notify_all();
        panic::panic_any(Abort);
    }

    fn abort_unwind(&self, st: Guard<'_>) -> ! {
        drop(st);
        panic::panic_any(Abort);
    }

    /// Picks one of `options` alternatives: the next prefix entry while
    /// replaying, alternative 0 once exploring. Single-option decisions
    /// are taken silently so seeds stay short.
    fn decide(&self, st: &mut St, options: usize) -> usize {
        debug_assert!(options > 0);
        st.steps += 1;
        if st.steps > st.max_steps {
            self.fail(st, FailureKind::StepLimit);
        }
        if options == 1 {
            return 0;
        }
        // PANIC-FREE: cursor < prefix.len() is checked on the line
        // above; this is explorer bookkeeping that only exists under
        // --cfg raal_model_check, never in a production serving build.
        // HOT-ALLOC: ditto — the replay-divergence messages and the
        // decision trace are model-check-only diagnostics.
        let chosen = if st.cursor < st.prefix.len() {
            let c = st.prefix[st.cursor];
            if c >= options {
                let why = format!("decision {} chose alternative {c} of {options}", st.cursor);
                self.fail(st, FailureKind::ReplayDiverged(why));
            }
            c
        } else if st.strict_replay {
            // HOT-ALLOC: model-check-only diagnostic (see above).
            let why = format!("execution needed a decision past the seed's {} entries", st.cursor);
            self.fail(st, FailureKind::ReplayDiverged(why));
        } else {
            0
        };
        st.cursor += 1;
        // HOT-ALLOC: model-check-only decision trace (see above).
        st.trace.push((chosen, options));
        chosen
    }

    /// Assigns `id` its first-touch ordinal if it has none yet.
    fn touch_res(st: &mut St, id: u64) {
        let n = st.res_ords.len();
        st.res_ords.entry(id).or_insert(n);
    }

    fn runnable(st: &St) -> Vec<usize> {
        // PANIC-FREE: t ranges over 0..threads.len(). HOT-ALLOC: the
        // explorer's runnable set — model-check-only code, never in a
        // production serving build.
        (0..st.threads.len())
            .filter(|&t| st.threads[t] == TState::Runnable)
            .collect()
    }

    /// Parks the calling thread until it is scheduled (current and
    /// runnable), unwinding if the model is torn down meanwhile.
    fn park_until_scheduled<'a>(&'a self, mut st: Guard<'a>, me: usize) -> Guard<'a> {
        loop {
            if st.aborting {
                self.abort_unwind(st);
            }
            // PANIC-FREE: me is a registered thread index; explorer
            // bookkeeping only compiled under --cfg raal_model_check.
            if st.current == me && st.threads[me] == TState::Runnable {
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// A switch point for a still-runnable thread: the explorer may
    /// preempt it (budget permitting) in favour of any runnable peer.
    pub(crate) fn switch_point(&self, me: usize) {
        let mut st = self.lock();
        if st.aborting {
            self.abort_unwind(st);
        }
        debug_assert_eq!(st.current, me, "switch point from a descheduled thread");
        // HOT-ALLOC: the explorer's preemption-candidate set —
        // model-check-only code, never in a production serving build.
        let others: Vec<usize> = Self::runnable(&st).into_iter().filter(|&t| t != me).collect();
        let options = if st.preemptions_left == 0 || others.is_empty() {
            1 // continue running `me`
        } else {
            1 + others.len()
        };
        let chosen = self.decide(&mut st, options);
        if chosen > 0 {
            st.preemptions_left -= 1;
            // PANIC-FREE: decide() returns < 1 + others.len(), so
            // chosen - 1 indexes others in bounds.
            st.current = others[chosen - 1];
            self.cv.notify_all();
            let st = self.park_until_scheduled(st, me);
            drop(st);
        }
    }

    /// A nondeterministic `arms`-way branch (e.g. timeout fires / does
    /// not); returns the chosen arm.
    pub(crate) fn nondet(&self, me: usize, arms: usize) -> usize {
        let mut st = self.lock();
        if st.aborting {
            self.abort_unwind(st);
        }
        debug_assert_eq!(st.current, me);
        self.decide(&mut st, arms)
    }

    /// Hands control to some runnable thread after the current one
    /// stopped being runnable (blocked or finished). Forced — costs no
    /// preemption. If nothing can run: wake timeoutable waiters (their
    /// deadlines would fire in reality); if there are none, it is a
    /// deadlock (or, with all threads finished, the end of the run).
    fn schedule_other(&self, st: &mut St) {
        let mut runnable = Self::runnable(st);
        if runnable.is_empty() {
            let mut rescued = false;
            for t in 0..st.threads.len() {
                if matches!(st.threads[t], TState::Blocked { timeoutable: true, .. }) {
                    st.threads[t] = TState::Runnable;
                    st.timed_out.insert(t, true);
                    rescued = true;
                }
            }
            if rescued {
                runnable = Self::runnable(st);
            }
        }
        if runnable.is_empty() {
            if st.threads.iter().all(|t| *t == TState::Finished) {
                self.cv.notify_all(); // wake the driver
                return;
            }
            let states: Vec<String> = st
                .threads
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    let name = &st.names[i];
                    match t {
                        TState::Runnable => format!("thread {i} ({name}): runnable"),
                        TState::Blocked { reason, .. } => {
                            format!("thread {i} ({name}): {}", reason.describe(&st.res_ords))
                        }
                        TState::Finished => format!("thread {i} ({name}): finished"),
                    }
                })
                .collect();
            self.fail(st, FailureKind::Deadlock(states));
        }
        let chosen = self.decide(st, runnable.len());
        st.current = runnable[chosen];
        self.cv.notify_all();
    }

    /// Blocks the calling thread on `reason` until woken; returns true
    /// when the wake was a modelled timeout (only possible with
    /// `timeoutable`). Wakes are granted by [`Sched::wake`],
    /// [`Sched::release`], [`Sched::cv_notify`] or the idle rescue.
    pub(crate) fn block_on(&self, me: usize, reason: Reason, timeoutable: bool) -> bool {
        let mut st = self.lock();
        if st.aborting {
            self.abort_unwind(st);
        }
        debug_assert_eq!(st.current, me);
        match reason {
            Reason::Lock(id) | Reason::Condvar(id) | Reason::Recv(id) => {
                Self::touch_res(&mut st, id);
            }
            Reason::Join(_) => {}
        }
        st.threads[me] = TState::Blocked { reason, timeoutable };
        self.schedule_other(&mut st);
        let mut st = self.park_until_scheduled(st, me);
        let timed_out = st.timed_out.remove(&me).unwrap_or(false);
        drop(st);
        timed_out
    }

    /// Marks blocked threads matching `pred` runnable (they still run
    /// only when a later decision schedules them).
    pub(crate) fn wake(&self, pred: impl Fn(Reason) -> bool) {
        let mut st = self.lock();
        Self::wake_where(&mut st, pred);
        self.cv.notify_all();
    }

    fn wake_where(st: &mut St, pred: impl Fn(Reason) -> bool) {
        // PANIC-FREE: t ranges over 0..threads.len(); explorer
        // bookkeeping only compiled under --cfg raal_model_check.
        for t in 0..st.threads.len() {
            if let TState::Blocked { reason, .. } = st.threads[t] {
                if pred(reason) {
                    st.threads[t] = TState::Runnable;
                }
            }
        }
    }

    // ------------------------------------------------- lock bookkeeping

    /// Attempts to take `lock_id` for `me`. Returns `(acquired,
    /// poisoned)`.
    pub(crate) fn try_acquire(&self, me: usize, lock_id: u64) -> (bool, bool) {
        let mut st = self.lock();
        if st.aborting {
            self.abort_unwind(st);
        }
        Self::touch_res(&mut st, lock_id);
        let entry = st
            .locks
            .entry(lock_id)
            .or_insert(LockSt { owner: None, poisoned: false });
        if entry.owner.is_none() {
            entry.owner = Some(me);
            (true, entry.poisoned)
        } else {
            (false, entry.poisoned)
        }
    }

    /// Releases `lock_id`, optionally poisoning it, and wakes acquire
    /// waiters. Runs during unwinds too, so it never makes decisions.
    pub(crate) fn release(&self, lock_id: u64, poison: bool) {
        let mut st = self.lock();
        if let Some(entry) = st.locks.get_mut(&lock_id) {
            entry.owner = None;
            entry.poisoned |= poison;
        }
        Self::wake_where(&mut st, |r| r == Reason::Lock(lock_id));
        self.cv.notify_all();
    }

    // ---------------------------------------------- condvar bookkeeping

    /// Registers `me` in the condvar's FIFO queue (call before
    /// releasing the paired mutex, so no notify can slip between).
    pub(crate) fn cv_enqueue(&self, me: usize, cv_id: u64) {
        let mut st = self.lock();
        Self::touch_res(&mut st, cv_id);
        st.cv_waiters.entry(cv_id).or_default().push(me);
    }

    /// Removes `me` from the queue (timeout path); false means a notify
    /// already claimed the slot.
    pub(crate) fn cv_dequeue(&self, me: usize, cv_id: u64) -> bool {
        let mut st = self.lock();
        let q = st.cv_waiters.entry(cv_id).or_default();
        match q.iter().position(|&t| t == me) {
            Some(i) => {
                q.remove(i);
                true
            }
            None => false,
        }
    }

    /// Wakes up to `n` waiters in FIFO order; woken threads proceed to
    /// re-acquire their mutex inside the wait loop. Notifying with no
    /// waiters is a no-op — exactly the lost-wakeup semantics whose
    /// consequences (a later waiter blocking forever) the deadlock
    /// detector reports.
    pub(crate) fn cv_notify(&self, cv_id: u64, n: usize) {
        let mut st = self.lock();
        let woken: Vec<usize> = {
            let q = st.cv_waiters.entry(cv_id).or_default();
            let take = n.min(q.len());
            q.drain(..take).collect()
        };
        for t in woken {
            let waiting_here = matches!(
                st.threads[t],
                TState::Blocked { reason: Reason::Condvar(id), .. } if id == cv_id
            );
            if waiting_here {
                st.threads[t] = TState::Runnable;
            }
        }
        self.cv.notify_all();
    }

    // ----------------------------------------------- thread bookkeeping

    /// Registers a new model thread (runnable, not yet scheduled);
    /// returns its id.
    pub(crate) fn register_thread(&self, name: String) -> usize {
        let mut st = self.lock();
        let tid = st.threads.len();
        st.threads.push(TState::Runnable);
        st.names.push(name);
        st.live_os += 1;
        tid
    }

    pub(crate) fn is_finished(&self, tid: usize) -> bool {
        self.lock().threads[tid] == TState::Finished
    }

    fn finish_thread(&self, me: usize) {
        let mut st = self.lock();
        st.threads[me] = TState::Finished;
        Self::wake_where(&mut st, |r| r == Reason::Join(me));
        if !st.aborting {
            self.schedule_other(&mut st);
        } else {
            self.cv.notify_all();
        }
    }

    fn record_panic(&self, msg: String) {
        let mut st = self.lock();
        if st.failure.is_none() {
            st.failure = Some(FailureKind::Panic(msg));
        }
        st.aborting = true;
        self.cv.notify_all();
    }

    fn os_thread_done(&self) {
        let mut st = self.lock();
        st.live_os = st.live_os.saturating_sub(1);
        self.cv.notify_all();
    }
}

// ------------------------------------------------------- thread-local ctx

/// Handle from a model thread back to its scheduler.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) sched: Arc<Sched>,
    pub(crate) tid: usize,
}

thread_local! {
    static CTX: std::cell::RefCell<Option<Ctx>> = const { std::cell::RefCell::new(None) };
}

/// Whether the calling thread is executing inside a model run. The
/// checked primitives delegate straight to std when this is false.
pub fn active() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

pub(crate) fn ctx() -> Option<Ctx> {
    // HOT-ALLOC: Arc refcount bump of the model-run context —
    // model-check-only code, never in a production serving build.
    CTX.with(|c| c.borrow().clone())
}

fn set_ctx(ctx: Option<Ctx>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

/// Entry shim for every model thread (including thread 0): parks until
/// first scheduled, runs `f`, converts panics into model failures and
/// swallows teardown unwinds.
pub(crate) fn run_model_thread<F: FnOnce()>(sched: Arc<Sched>, tid: usize, f: F) {
    set_ctx(Some(Ctx { sched: sched.clone(), tid }));
    let parked = panic::catch_unwind(AssertUnwindSafe(|| {
        let st = sched.lock();
        let st = sched.park_until_scheduled(st, tid);
        drop(st);
    }));
    if parked.is_ok() {
        match panic::catch_unwind(AssertUnwindSafe(f)) {
            Ok(()) => sched.finish_thread(tid),
            Err(payload) => {
                if payload.downcast_ref::<Abort>().is_none() {
                    // `&*payload` derefs the Box so the inner payload is
                    // downcast, not the Box itself.
                    sched.record_panic(panic_message(&*payload));
                }
                // Finishing during teardown: bookkeeping only.
                let mut st = sched.lock();
                st.threads[tid] = TState::Finished;
                sched.cv.notify_all();
                drop(st);
            }
        }
    }
    set_ctx(None);
    sched.os_thread_done();
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// ------------------------------------------------------------------ driver

struct RunResult {
    trace: Vec<(usize, usize)>,
    failure: Option<FailureKind>,
}

fn run_once(
    cfg: &Config,
    prefix: Vec<usize>,
    strict_replay: bool,
    f: Arc<dyn Fn() + Send + Sync>,
) -> RunResult {
    let sched = Arc::new(Sched::new(cfg, prefix, strict_replay));
    sched.lock().live_os = 1; // thread 0
    let s2 = sched.clone();
    let spawned = std::thread::Builder::new()
        .name("raal-mc-0".to_string())
        .spawn(move || run_model_thread(s2, 0, move || f()));
    let t0 = match spawned {
        Ok(handle) => handle,
        Err(e) => {
            return RunResult {
                trace: Vec::new(),
                failure: Some(FailureKind::Panic(format!("spawn failed: {e}"))),
            }
        }
    };
    // Wait until every model thread finished (or the run aborted) and
    // every OS wrapper exited, so schedules never overlap.
    {
        let mut st = sched.lock();
        loop {
            let all_done = st.threads.iter().all(|t| *t == TState::Finished);
            if (all_done || st.aborting) && st.live_os == 0 {
                break;
            }
            st = sched.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
    let _ = t0.join();
    let mut st = sched.lock();
    RunResult {
        trace: std::mem::take(&mut st.trace),
        failure: st.failure.take(),
    }
}

/// The next DFS prefix after `trace`, or `None` when the space is
/// exhausted: backtrack to the deepest decision with an untried
/// alternative.
fn next_prefix(trace: &[(usize, usize)]) -> Option<Vec<usize>> {
    for i in (0..trace.len()).rev() {
        let (chosen, alts) = trace[i];
        if chosen + 1 < alts {
            let mut prefix: Vec<usize> = trace[..i].iter().map(|&(c, _)| c).collect();
            prefix.push(chosen + 1);
            return Some(prefix);
        }
    }
    None
}

/// Explores every schedule of `f` within `cfg`'s bounds. Returns the
/// exploration report, or the first failing schedule with its seed.
pub fn check<F>(cfg: Config, f: F) -> Result<Report, Failure>
where
    F: Fn() + Send + Sync + 'static,
{
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let mut prefix = Vec::new();
    let mut schedules = 0usize;
    loop {
        let result = run_once(&cfg, prefix.clone(), false, f.clone());
        if let Some(kind) = result.failure {
            let choices: Vec<usize> = result.trace.iter().map(|&(c, _)| c).collect();
            return Err(Failure {
                kind,
                seed: encode_seed(&choices),
                schedule: schedules,
            });
        }
        schedules += 1;
        match next_prefix(&result.trace) {
            Some(p) => prefix = p,
            None => return Ok(Report { schedules, complete: true }),
        }
        if schedules >= cfg.max_schedules {
            return Ok(Report { schedules, complete: false });
        }
    }
}

/// Re-executes exactly the schedule encoded in `seed` (from a
/// [`Failure`]); returns the failure it reproduces, or `Ok(())` if the
/// schedule now passes (e.g. after a fix).
pub fn replay<F>(cfg: Config, seed: &str, f: F) -> Result<(), Failure>
where
    F: Fn() + Send + Sync + 'static,
{
    let prefix = decode_seed(seed).map_err(|why| Failure {
        kind: FailureKind::ReplayDiverged(why),
        seed: seed.to_string(),
        schedule: 0,
    })?;
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let result = run_once(&cfg, prefix, true, f);
    match result.failure {
        Some(kind) => Err(Failure { kind, seed: seed.to_string(), schedule: 0 }),
        None => Ok(()),
    }
}

/// Test-harness entry point: explores `f` (or, when `RAAL_MC_SEED` is
/// set, replays that one schedule) and panics with the reproducing seed
/// on any failure. `name` labels the check in messages.
pub fn explore<F>(name: &str, cfg: Config, f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    if let Ok(seed) = std::env::var("RAAL_MC_SEED") {
        if let Err(fail) = replay(cfg, &seed, f) {
            panic!("model check '{name}' (replay): {fail}");
        }
        return;
    }
    match check(cfg, f) {
        Ok(report) => {
            if !report.complete {
                eprintln!(
                    "model check '{name}': schedule cap hit after {} schedules (incomplete)",
                    report.schedules
                );
            }
        }
        Err(fail) => panic!("model check '{name}': {fail}"),
    }
}
