//! Model-check-aware synchronisation primitives.
//!
//! Every type here mirrors its `std::sync` counterpart's API. Outside a
//! model run ([`model::active`] false) each operation delegates
//! straight to std. Inside [`model::check`], every
//! operation becomes a *switch point* where the schedule explorer may
//! preempt the thread, and blocking is mediated by the explorer's
//! scheduler instead of the OS — which is what lets the explorer
//! enumerate interleavings and detect deadlocks deterministically.
//!
//! The workspace never names this module directly: code imports from
//! [`crate::sync`], [`crate::mpsc`], [`crate::atomic`] and
//! [`crate::thread`], which alias std in normal builds and these types
//! under `cfg(raal_model_check)`.
//!
//! Two std facilities are deliberately *not* shimmed: `Once`/`OnceLock`
//! (init-once values — no interesting interleavings once initialised,
//! and the explorer's own driver relies on them being dependable) and
//! `RwLock` (nothing in the workspace uses one yet; add it here first
//! if that changes).

use crate::model::{self, Ctx, Reason};
use std::collections::VecDeque;
use std::mem::ManuallyDrop;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};
use std::sync::{Arc, LockResult, PoisonError, TryLockError, TryLockResult};
use std::time::Duration;

/// Address-derived id for model bookkeeping: stable for the object's
/// lifetime, which is all the per-schedule maps need.
fn addr_id<T: ?Sized>(p: *const T) -> u64 {
    p as *const () as usize as u64
}

// ------------------------------------------------------------------ sync

/// Model-check-aware `std::sync::Mutex`.
pub mod sync {
    use super::*;

    /// A mutual-exclusion lock; API-compatible with [`std::sync::Mutex`].
    /// Under a model run, acquisition order is decided by the schedule
    /// explorer and contention is bookkept so deadlocks are detected.
    pub struct Mutex<T: ?Sized> {
        inner: std::sync::Mutex<T>,
    }

    impl<T> Mutex<T> {
        /// Creates the lock (usable in statics, like std's).
        pub const fn new(value: T) -> Self {
            Self { inner: std::sync::Mutex::new(value) }
        }

        /// Consumes the lock, returning the inner value.
        pub fn into_inner(self) -> LockResult<T> {
            self.inner.into_inner()
        }
    }

    impl<T: ?Sized> Mutex<T> {
        fn id(&self) -> u64 {
            addr_id(&self.inner)
        }

        /// Takes the underlying std guard once model bookkeeping has
        /// granted exclusivity (so it cannot block among model threads).
        fn grab_std_guard(&self) -> std::sync::MutexGuard<'_, T> {
            match self.inner.try_lock() {
                Ok(g) => g,
                Err(TryLockError::Poisoned(p)) => p.into_inner(),
                // A non-model thread holds it; fall back to an OS wait.
                Err(TryLockError::WouldBlock) => {
                    self.inner.lock().unwrap_or_else(|e| e.into_inner())
                }
            }
        }

        /// Acquires the lock, blocking (schedule-wise under a model)
        /// until it is free. Poisoning mirrors std: a panic while the
        /// lock was held poisons it.
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            match model::ctx() {
                Some(ctx) => {
                    ctx.sched.switch_point(ctx.tid);
                    let poisoned = loop {
                        let (acquired, poisoned) = ctx.sched.try_acquire(ctx.tid, self.id());
                        if acquired {
                            break poisoned;
                        }
                        ctx.sched.block_on(ctx.tid, Reason::Lock(self.id()), false);
                    };
                    let guard = MutexGuard {
                        inner: ManuallyDrop::new(self.grab_std_guard()),
                        lock: self,
                        model: Some(ctx),
                    };
                    if poisoned {
                        Err(PoisonError::new(guard))
                    } else {
                        Ok(guard)
                    }
                }
                None => match self.inner.lock() {
                    Ok(g) => Ok(MutexGuard {
                        inner: ManuallyDrop::new(g),
                        lock: self,
                        model: None,
                    }),
                    Err(p) => Err(PoisonError::new(MutexGuard {
                        inner: ManuallyDrop::new(p.into_inner()),
                        lock: self,
                        model: None,
                    })),
                },
            }
        }

        /// Attempts the lock without blocking.
        pub fn try_lock(&self) -> TryLockResult<MutexGuard<'_, T>> {
            match model::ctx() {
                Some(ctx) => {
                    ctx.sched.switch_point(ctx.tid);
                    let (acquired, poisoned) = ctx.sched.try_acquire(ctx.tid, self.id());
                    if !acquired {
                        return Err(TryLockError::WouldBlock);
                    }
                    let guard = MutexGuard {
                        inner: ManuallyDrop::new(self.grab_std_guard()),
                        lock: self,
                        model: Some(ctx),
                    };
                    if poisoned {
                        Err(TryLockError::Poisoned(PoisonError::new(guard)))
                    } else {
                        Ok(guard)
                    }
                }
                None => match self.inner.try_lock() {
                    Ok(g) => Ok(MutexGuard {
                        inner: ManuallyDrop::new(g),
                        lock: self,
                        model: None,
                    }),
                    Err(TryLockError::Poisoned(p)) => {
                        Err(TryLockError::Poisoned(PoisonError::new(MutexGuard {
                            inner: ManuallyDrop::new(p.into_inner()),
                            lock: self,
                            model: None,
                        })))
                    }
                    Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
                },
            }
        }

        /// Mutable access without locking (exclusive borrow proves
        /// no contention).
        pub fn get_mut(&mut self) -> LockResult<&mut T> {
            self.inner.get_mut()
        }
    }

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Self {
            Self::new(T::default())
        }
    }

    impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            self.inner.fmt(f)
        }
    }

    /// Guard for [`Mutex`]; releasing it (drop) wakes model threads
    /// blocked on the lock.
    pub struct MutexGuard<'a, T: ?Sized> {
        inner: ManuallyDrop<std::sync::MutexGuard<'a, T>>,
        lock: &'a Mutex<T>,
        model: Option<Ctx>,
    }

    impl<'a, T: ?Sized> MutexGuard<'a, T> {
        /// Dismantles the guard without running its `Drop` (the caller
        /// takes over release bookkeeping — used by [`Condvar::wait`]).
        fn into_parts(mut self) -> (std::sync::MutexGuard<'a, T>, &'a Mutex<T>, Option<Ctx>) {
            // SAFETY: `self` is forgotten immediately after, so the std
            // guard is moved out exactly once and our Drop never runs.
            let inner = unsafe { ManuallyDrop::take(&mut self.inner) };
            let lock = self.lock;
            let model = self.model.take();
            std::mem::forget(self);
            (inner, lock, model)
        }
    }

    impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    impl<T: ?Sized> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            // SAFETY: the guard is dropped exactly once here; into_parts
            // forgets `self` so the two paths cannot both run.
            unsafe { ManuallyDrop::drop(&mut self.inner) };
            if let Some(ctx) = &self.model {
                ctx.sched.release(self.lock.id(), std::thread::panicking());
            }
        }
    }

    /// Result of a [`Condvar::wait_timeout`]; mirrors
    /// `std::sync::WaitTimeoutResult` (which has no public constructor,
    /// hence this twin).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct WaitTimeoutResult(pub(super) bool);

    impl WaitTimeoutResult {
        /// True when the wait ended by timeout rather than notify.
        pub fn timed_out(&self) -> bool {
            self.0
        }
    }

    /// Model-check-aware `std::sync::Condvar`. Notifying with no
    /// waiters is a no-op — the lost-wakeup behaviour whose downstream
    /// deadlock the explorer reports.
    pub struct Condvar {
        inner: std::sync::Condvar,
    }

    impl Condvar {
        /// Creates the condvar (usable in statics).
        pub const fn new() -> Self {
            Self { inner: std::sync::Condvar::new() }
        }

        fn id(&self) -> u64 {
            addr_id(&self.inner)
        }

        /// Releases the guard's mutex, waits for a notification, then
        /// re-acquires. A waiter that is never notified deadlocks the
        /// model (that is the point).
        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            match guard.model.clone() {
                Some(ctx) => {
                    // Enqueue before releasing the mutex so a notify
                    // between release and block cannot be lost.
                    ctx.sched.cv_enqueue(ctx.tid, self.id());
                    let lock = guard.lock;
                    drop(guard);
                    ctx.sched.block_on(ctx.tid, Reason::Condvar(self.id()), false);
                    lock.lock()
                }
                None => {
                    let (std_guard, lock, _) = guard.into_parts();
                    match self.inner.wait(std_guard) {
                        Ok(g) => Ok(MutexGuard { inner: ManuallyDrop::new(g), lock, model: None }),
                        Err(p) => Err(PoisonError::new(MutexGuard {
                            inner: ManuallyDrop::new(p.into_inner()),
                            lock,
                            model: None,
                        })),
                    }
                }
            }
        }

        /// [`Condvar::wait`] with a deadline. Under a model the timeout
        /// is a nondeterministic branch: it may fire immediately (even
        /// if a notify was coming) and it fires whenever the model would
        /// otherwise be idle — so a timed wait never deadlocks.
        pub fn wait_timeout<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
            dur: Duration,
        ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
            match guard.model.clone() {
                Some(ctx) => {
                    let lock = guard.lock;
                    if ctx.sched.nondet(ctx.tid, 2) == 1 {
                        // Timeout fires before the wait even starts.
                        drop(guard);
                        return pack(lock.lock(), WaitTimeoutResult(true));
                    }
                    ctx.sched.cv_enqueue(ctx.tid, self.id());
                    drop(guard);
                    let timed_out = ctx.sched.block_on(ctx.tid, Reason::Condvar(self.id()), true);
                    if timed_out {
                        // The notify may have raced the timeout; if we
                        // are no longer queued it claimed us first.
                        ctx.sched.cv_dequeue(ctx.tid, self.id());
                    }
                    pack(lock.lock(), WaitTimeoutResult(timed_out))
                }
                None => {
                    let (std_guard, lock, _) = guard.into_parts();
                    match self.inner.wait_timeout(std_guard, dur) {
                        Ok((g, t)) => Ok((
                            MutexGuard { inner: ManuallyDrop::new(g), lock, model: None },
                            WaitTimeoutResult(t.timed_out()),
                        )),
                        Err(p) => {
                            let (g, t) = p.into_inner();
                            Err(PoisonError::new((
                                MutexGuard { inner: ManuallyDrop::new(g), lock, model: None },
                                WaitTimeoutResult(t.timed_out()),
                            )))
                        }
                    }
                }
            }
        }

        /// Wakes one waiter (FIFO under a model).
        pub fn notify_one(&self) {
            match model::ctx() {
                Some(ctx) => {
                    ctx.sched.switch_point(ctx.tid);
                    ctx.sched.cv_notify(self.id(), 1);
                }
                None => self.inner.notify_one(),
            }
        }

        /// Wakes every waiter.
        pub fn notify_all(&self) {
            match model::ctx() {
                Some(ctx) => {
                    ctx.sched.switch_point(ctx.tid);
                    ctx.sched.cv_notify(self.id(), usize::MAX);
                }
                None => self.inner.notify_all(),
            }
        }
    }

    impl Default for Condvar {
        fn default() -> Self {
            Self::new()
        }
    }

    fn pack<'a, T>(
        lr: LockResult<MutexGuard<'a, T>>,
        t: WaitTimeoutResult,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        match lr {
            Ok(g) => Ok((g, t)),
            Err(p) => Err(PoisonError::new((p.into_inner(), t))),
        }
    }
}

// ------------------------------------------------------------------ mpsc

/// Model-check-aware `std::sync::mpsc` (unbounded channels only, which
/// is all the workspace uses). Error types are std's own, so calling
/// code matches on the same enums either way.
pub mod mpsc {
    use super::*;
    use crate::model::Sched;

    struct Chan<T> {
        q: std::sync::Mutex<VecDeque<T>>,
        senders: std::sync::atomic::AtomicUsize,
        recv_alive: std::sync::atomic::AtomicBool,
        /// The scheduler of the model the channel was created in; wakes
        /// must reach it even from threads outside the model.
        sched: Arc<Sched>,
    }

    impl<T> Chan<T> {
        fn id(&self) -> u64 {
            addr_id(self)
        }
    }

    enum SenderInner<T> {
        Std(std::sync::mpsc::Sender<T>),
        Model(Arc<Chan<T>>),
    }

    enum ReceiverInner<T> {
        Std(std::sync::mpsc::Receiver<T>),
        Model(Arc<Chan<T>>),
    }

    /// Sending half; clonable like std's.
    pub struct Sender<T> {
        inner: SenderInner<T>,
    }

    /// Receiving half.
    pub struct Receiver<T> {
        inner: ReceiverInner<T>,
    }

    /// Creates a channel: std's outside a model, an explorer-mediated
    /// queue inside one.
    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        match model::ctx() {
            Some(ctx) => {
                let chan = Arc::new(Chan {
                    q: std::sync::Mutex::new(VecDeque::new()),
                    senders: std::sync::atomic::AtomicUsize::new(1),
                    recv_alive: std::sync::atomic::AtomicBool::new(true),
                    sched: ctx.sched,
                });
                (
                    Sender { inner: SenderInner::Model(chan.clone()) },
                    Receiver { inner: ReceiverInner::Model(chan) },
                )
            }
            None => {
                let (tx, rx) = std::sync::mpsc::channel();
                (
                    Sender { inner: SenderInner::Std(tx) },
                    Receiver { inner: ReceiverInner::Std(rx) },
                )
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a value; errs (returning it) once the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.inner {
                SenderInner::Std(tx) => tx.send(value),
                SenderInner::Model(chan) => {
                    if let Some(ctx) = model::ctx() {
                        ctx.sched.switch_point(ctx.tid);
                    }
                    if !chan.recv_alive.load(Ordering::SeqCst) {
                        return Err(SendError(value));
                    }
                    chan.q.lock().unwrap_or_else(|e| e.into_inner()).push_back(value);
                    let id = chan.id();
                    chan.sched.wake(move |r| r == Reason::Recv(id));
                    Ok(())
                }
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match &self.inner {
                SenderInner::Std(tx) => Sender { inner: SenderInner::Std(tx.clone()) },
                SenderInner::Model(chan) => {
                    chan.senders.fetch_add(1, Ordering::SeqCst);
                    Sender { inner: SenderInner::Model(chan.clone()) }
                }
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if let SenderInner::Model(chan) = &self.inner {
                if chan.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                    // Last sender gone: blocked receivers must observe
                    // the disconnect.
                    let id = chan.id();
                    chan.sched.wake(move |r| r == Reason::Recv(id));
                }
            }
        }
    }

    /// The model context, which receive paths require (a model-created
    /// channel cannot block a non-model thread).
    fn recv_ctx() -> Ctx {
        match model::ctx() {
            Some(ctx) => ctx,
            None => panic!("model-channel receive from outside the model run"),
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value or disconnection.
        pub fn recv(&self) -> Result<T, RecvError> {
            match &self.inner {
                ReceiverInner::Std(rx) => rx.recv(),
                ReceiverInner::Model(chan) => {
                    let ctx = recv_ctx();
                    ctx.sched.switch_point(ctx.tid);
                    loop {
                        if let Some(v) =
                            chan.q.lock().unwrap_or_else(|e| e.into_inner()).pop_front()
                        {
                            return Ok(v);
                        }
                        if chan.senders.load(Ordering::SeqCst) == 0 {
                            return Err(RecvError);
                        }
                        ctx.sched.block_on(ctx.tid, Reason::Recv(chan.id()), false);
                    }
                }
            }
        }

        /// Blocks with a deadline. Under a model the timeout is a
        /// nondeterministic branch (fires now / keeps waiting) and also
        /// fires whenever the model would otherwise be idle — timed
        /// receives never deadlock, matching reality.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            match &self.inner {
                ReceiverInner::Std(rx) => rx.recv_timeout(timeout),
                ReceiverInner::Model(chan) => {
                    let ctx = recv_ctx();
                    ctx.sched.switch_point(ctx.tid);
                    loop {
                        if let Some(v) =
                            chan.q.lock().unwrap_or_else(|e| e.into_inner()).pop_front()
                        {
                            return Ok(v);
                        }
                        if chan.senders.load(Ordering::SeqCst) == 0 {
                            return Err(RecvTimeoutError::Disconnected);
                        }
                        if ctx.sched.nondet(ctx.tid, 2) == 1 {
                            return Err(RecvTimeoutError::Timeout);
                        }
                        if ctx.sched.block_on(ctx.tid, Reason::Recv(chan.id()), true) {
                            return Err(RecvTimeoutError::Timeout);
                        }
                    }
                }
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            match &self.inner {
                ReceiverInner::Std(rx) => rx.try_recv(),
                ReceiverInner::Model(chan) => {
                    if let Some(ctx) = model::ctx() {
                        ctx.sched.switch_point(ctx.tid);
                    }
                    if let Some(v) = chan.q.lock().unwrap_or_else(|e| e.into_inner()).pop_front() {
                        return Ok(v);
                    }
                    if chan.senders.load(Ordering::SeqCst) == 0 {
                        Err(TryRecvError::Disconnected)
                    } else {
                        Err(TryRecvError::Empty)
                    }
                }
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if let ReceiverInner::Model(chan) = &self.inner {
                chan.recv_alive.store(false, Ordering::SeqCst);
            }
        }
    }
}

// ---------------------------------------------------------------- atomic

/// Model-check-aware atomics. Under a model every access is a switch
/// point and executes sequentially consistent regardless of the
/// requested ordering (see the [`model`] docs); outside a
/// model the requested ordering is used verbatim.
pub mod atomic {
    use super::*;
    pub use std::sync::atomic::Ordering;

    fn touch() {
        if let Some(ctx) = model::ctx() {
            ctx.sched.switch_point(ctx.tid);
        }
    }

    fn eff(order: Ordering) -> Ordering {
        if model::active() {
            Ordering::SeqCst
        } else {
            order
        }
    }

    /// Failure ordering compatible with `compare_exchange`'s success
    /// ordering rules (no Release/AcqRel on loads).
    fn eff_fail(order: Ordering) -> Ordering {
        if model::active() {
            Ordering::SeqCst
        } else {
            order
        }
    }

    macro_rules! atomic_int {
        ($(#[$doc:meta])* $name:ident, $std:ty, $prim:ty) => {
            $(#[$doc])*
            #[derive(Debug, Default)]
            pub struct $name {
                v: $std,
            }

            impl $name {
                /// Creates the atomic (usable in statics).
                pub const fn new(v: $prim) -> Self {
                    Self { v: <$std>::new(v) }
                }

                /// Atomic load (a switch point under a model).
                pub fn load(&self, order: Ordering) -> $prim {
                    touch();
                    self.v.load(eff(order))
                }

                /// Atomic store (a switch point under a model).
                pub fn store(&self, val: $prim, order: Ordering) {
                    touch();
                    self.v.store(val, eff(order));
                }

                /// Atomic swap.
                pub fn swap(&self, val: $prim, order: Ordering) -> $prim {
                    touch();
                    self.v.swap(val, eff(order))
                }

                /// Atomic add, returning the previous value.
                pub fn fetch_add(&self, val: $prim, order: Ordering) -> $prim {
                    touch();
                    self.v.fetch_add(val, eff(order))
                }

                /// Atomic subtract, returning the previous value.
                pub fn fetch_sub(&self, val: $prim, order: Ordering) -> $prim {
                    touch();
                    self.v.fetch_sub(val, eff(order))
                }

                /// Atomic compare-exchange.
                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    touch();
                    self.v.compare_exchange(current, new, eff(success), eff_fail(failure))
                }
            }
        };
    }

    atomic_int!(
        /// Model-check-aware `AtomicU64`.
        AtomicU64,
        std::sync::atomic::AtomicU64,
        u64
    );
    atomic_int!(
        /// Model-check-aware `AtomicUsize`.
        AtomicUsize,
        std::sync::atomic::AtomicUsize,
        usize
    );
    atomic_int!(
        /// Model-check-aware `AtomicU32`.
        AtomicU32,
        std::sync::atomic::AtomicU32,
        u32
    );

    /// Model-check-aware `AtomicBool`.
    #[derive(Debug, Default)]
    pub struct AtomicBool {
        v: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        /// Creates the atomic (usable in statics).
        pub const fn new(v: bool) -> Self {
            Self { v: std::sync::atomic::AtomicBool::new(v) }
        }

        /// Atomic load (a switch point under a model).
        pub fn load(&self, order: Ordering) -> bool {
            touch();
            self.v.load(eff(order))
        }

        /// Atomic store (a switch point under a model).
        pub fn store(&self, val: bool, order: Ordering) {
            touch();
            self.v.store(val, eff(order));
        }

        /// Atomic swap.
        pub fn swap(&self, val: bool, order: Ordering) -> bool {
            touch();
            self.v.swap(val, eff(order))
        }

        /// Atomic compare-exchange.
        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            touch();
            self.v.compare_exchange(current, new, eff(success), eff_fail(failure))
        }
    }
}

// ---------------------------------------------------------------- thread

/// Model-check-aware `std::thread` (spawn/join plus the two yield-ish
/// free functions the workspace uses).
pub mod thread {
    use super::*;
    use crate::model::Sched;

    enum HandleInner<T> {
        Std(std::thread::JoinHandle<T>),
        Model {
            sched: Arc<Sched>,
            tid: usize,
            result: Arc<std::sync::Mutex<Option<T>>>,
            os: Option<std::thread::JoinHandle<()>>,
        },
    }

    /// Join handle; API-compatible with [`std::thread::JoinHandle`].
    pub struct JoinHandle<T> {
        inner: HandleInner<T>,
    }

    /// Spawns a thread: an OS thread normally, a model thread (run only
    /// when the explorer schedules it) inside a model run.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match model::ctx() {
            Some(ctx) => {
                let tid = ctx.sched.register_thread(format!("spawned-{}", ctx.tid));
                let result: Arc<std::sync::Mutex<Option<T>>> =
                    Arc::new(std::sync::Mutex::new(None));
                let (sched2, result2) = (ctx.sched.clone(), result.clone());
                let os = std::thread::Builder::new()
                    .name(format!("raal-mc-{tid}"))
                    .spawn(move || {
                        crate::model::run_model_thread(sched2, tid, move || {
                            let v = f();
                            *result2.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
                        });
                    })
                    .unwrap_or_else(|e| panic!("model thread spawn failed: {e}"));
                // Spawning is itself a switch point: the child may run
                // immediately or the parent may continue.
                ctx.sched.switch_point(ctx.tid);
                JoinHandle {
                    inner: HandleInner::Model { sched: ctx.sched, tid, result, os: Some(os) },
                }
            }
            None => JoinHandle { inner: HandleInner::Std(std::thread::spawn(f)) },
        }
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread to finish and returns its value. Model
        /// threads cannot return a panic (any model-thread panic fails
        /// the whole run), so the `Err` arm there is unreachable in
        /// passing schedules.
        pub fn join(self) -> std::thread::Result<T> {
            match self.inner {
                HandleInner::Std(h) => h.join(),
                HandleInner::Model { sched, tid, result, os } => {
                    if let Some(ctx) = model::ctx() {
                        ctx.sched.switch_point(ctx.tid);
                        while !sched.is_finished(tid) {
                            ctx.sched.block_on(ctx.tid, Reason::Join(tid), false);
                        }
                    }
                    if let Some(os) = os {
                        let _ = os.join();
                    }
                    match result.lock().unwrap_or_else(|e| e.into_inner()).take() {
                        Some(v) => Ok(v),
                        None => Err(Box::new("model thread produced no value (aborted run)")
                            as Box<dyn std::any::Any + Send>),
                    }
                }
            }
        }
    }

    /// Yield: a plain switch point under a model.
    pub fn yield_now() {
        match model::ctx() {
            Some(ctx) => ctx.sched.switch_point(ctx.tid),
            None => std::thread::yield_now(),
        }
    }

    /// Sleep: modelled time does not pass, so under a model this is
    /// just a switch point (deadlines are explored via the timed-wait
    /// branches instead).
    pub fn sleep(dur: Duration) {
        match model::ctx() {
            Some(ctx) => ctx.sched.switch_point(ctx.tid),
            None => std::thread::sleep(dur),
        }
    }
}
