//! `raal_sync` — the workspace's synchronisation shim.
//!
//! Code that wants concurrency primitives imports them from here
//! instead of `std::sync` / `std::thread`:
//!
//! ```rust
//! use raal_sync::sync::{Mutex, Condvar};
//! use raal_sync::mpsc;
//! use raal_sync::atomic::{AtomicBool, Ordering};
//! use raal_sync::thread;
//! ```
//!
//! In a normal build these modules re-export std wholesale — zero cost,
//! zero behaviour change. Compiled with `--cfg raal_model_check`
//! (`RUSTFLAGS="--cfg raal_model_check"`), they instead export the
//! instrumented twins in [`checked`], whose every operation reports to
//! the deterministic schedule explorer in [`model`]. A test then wraps
//! the concurrent scenario in [`model::explore`], which runs it once per
//! distinct thread interleaving (bounded by context-switch count) and
//! panics with a replayable seed on any deadlock, lost wakeup, or
//! panic. Outside [`model::check`] the instrumented types delegate to
//! std, so the `--cfg` build still runs ordinary tests correctly.
//!
//! The explorer itself ([`model`]) and the instrumented types
//! ([`checked`]) are compiled unconditionally — their own unit tests run
//! under plain `cargo test` — only the *aliases* below switch.
//!
//! See `DESIGN.md` §14 for the exploration algorithm, its bounding
//! guarantees, and a guide to writing model-check tests.

pub mod checked;
pub mod model;

/// `Mutex` / `Condvar` (std's, or the checked twins under
/// `cfg(raal_model_check)`).
pub mod sync {
    #[cfg(not(raal_model_check))]
    pub use std::sync::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};

    #[cfg(raal_model_check)]
    pub use crate::checked::sync::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};
}

/// Unbounded channels (std's `std::sync::mpsc`, or the checked twins).
/// Error types are always std's, so `match` arms are identical in both
/// builds.
pub mod mpsc {
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    #[cfg(not(raal_model_check))]
    pub use std::sync::mpsc::{channel, Receiver, Sender};

    #[cfg(raal_model_check)]
    pub use crate::checked::mpsc::{channel, Receiver, Sender};
}

/// Atomics (std's, or the checked twins). `Ordering` is always std's.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    #[cfg(not(raal_model_check))]
    pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize};

    #[cfg(raal_model_check)]
    pub use crate::checked::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize};
}

/// Thread spawn/join and yields (std's, or model threads under the
/// explorer).
pub mod thread {
    #[cfg(not(raal_model_check))]
    pub use std::thread::{sleep, spawn, yield_now, JoinHandle};

    #[cfg(raal_model_check)]
    pub use crate::checked::thread::{sleep, spawn, yield_now, JoinHandle};
}
