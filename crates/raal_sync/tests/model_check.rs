//! Semantics tests for the schedule explorer: it must *find* classic
//! concurrency bugs (deadlock, lost wakeup, atomicity violation), must
//! *pass* correct code, and its seeds must replay deterministically.
//!
//! These use `raal_sync::checked` types directly — they route through
//! the explorer whenever a model is active, so the suite runs under
//! plain `cargo test` with no special cfg.

use raal_sync::checked::atomic::{AtomicU64, Ordering};
use raal_sync::checked::mpsc;
use raal_sync::checked::sync::{Condvar, Mutex};
use raal_sync::checked::thread;
use raal_sync::model::{self, Config, FailureKind};
use std::sync::Arc;
use std::time::Duration;

fn cfg() -> Config {
    Config {
        max_preemptions: 2,
        max_schedules: 200_000,
        max_steps: 10_000,
    }
}

// ------------------------------------------------------------- passing code

#[test]
fn mutex_counter_is_exclusive() {
    let report = model::check(cfg(), || {
        let n = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = n.clone();
                thread::spawn(move || {
                    let mut g = n.lock().unwrap();
                    let v = *g;
                    *g = v + 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*n.lock().unwrap(), 2);
    })
    .expect("no failing schedule");
    assert!(report.complete, "bounded space should be exhausted");
    assert!(report.schedules > 1, "exploration should try several interleavings");
}

#[test]
fn channel_delivers_across_all_interleavings() {
    model::check(cfg(), || {
        let (tx, rx) = mpsc::channel();
        let sender = thread::spawn(move || {
            tx.send(7u32).unwrap();
        });
        assert_eq!(rx.recv().unwrap(), 7);
        sender.join().unwrap();
    })
    .expect("send/recv must never deadlock");
}

#[test]
fn receiver_sees_disconnect_not_deadlock() {
    model::check(cfg(), || {
        let (tx, rx) = mpsc::channel::<u32>();
        let sender = thread::spawn(move || drop(tx));
        assert!(rx.recv().is_err());
        sender.join().unwrap();
    })
    .expect("dropping the last sender must unblock recv");
}

#[test]
fn condvar_handoff_with_predicate_loop_passes() {
    model::check(cfg(), || {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let setter = thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock().unwrap() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock().unwrap();
        // Predicate loop: robust to the notify landing before the wait.
        while !*ready {
            ready = cv.wait(ready).unwrap();
        }
        drop(ready);
        setter.join().unwrap();
    })
    .expect("predicate-loop condvar use must never lose the wakeup");
}

#[test]
fn timed_recv_never_deadlocks_without_sender_activity() {
    model::check(cfg(), || {
        let (_tx, rx) = mpsc::channel::<u32>();
        // Sender never sends; only the modelled timeout can end this.
        let r = rx.recv_timeout(Duration::from_millis(10));
        assert!(r.is_err());
    })
    .expect("a timed wait alone must not count as deadlock");
}

#[test]
fn atomics_are_switch_points() {
    // With SeqCst modelling, two increments via load+store (a classic
    // non-atomic read-modify-write) CAN lose an update under some
    // interleaving — the explorer must find the schedule where both
    // threads load before either stores.
    let err = model::check(cfg(), || {
        let n = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = n.clone();
                thread::spawn(move || {
                    let v = n.load(Ordering::SeqCst);
                    n.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
    })
    .expect_err("explorer must find the lost-update interleaving");
    assert!(matches!(err.kind, FailureKind::Panic(_)), "got {:?}", err.kind);
}

// ------------------------------------------------------------ failing code

#[test]
fn lock_order_inversion_deadlocks() {
    let err = model::check(cfg(), || {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (a.clone(), b.clone());
        let t = thread::spawn(move || {
            let _g1 = b2.lock().unwrap();
            let _g2 = a2.lock().unwrap();
        });
        let _g1 = a.lock().unwrap();
        let _g2 = b.lock().unwrap();
        drop((_g1, _g2));
        t.join().unwrap();
    })
    .expect_err("AB/BA locking must deadlock in some schedule");
    match &err.kind {
        FailureKind::Deadlock(states) => {
            assert!(states.iter().any(|s| s.contains("acquiring lock")), "states: {states:?}");
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn lost_wakeup_is_detected() {
    // No predicate loop and the notify can fire before the wait starts:
    // the waiter then blocks forever. The explorer must surface it.
    let err = model::check(cfg(), || {
        let pair = Arc::new((Mutex::new(()), Condvar::new()));
        let p2 = pair.clone();
        let waiter = thread::spawn(move || {
            let (m, cv) = &*p2;
            let g = m.lock().unwrap();
            // BUG: unconditional wait — if the notify already happened,
            // nothing will ever wake this thread.
            let _g = cv.wait(g).unwrap();
        });
        let (_m, cv) = &*pair;
        cv.notify_one();
        waiter.join().unwrap();
    })
    .expect_err("unconditional wait must lose the early notify");
    assert!(matches!(err.kind, FailureKind::Deadlock(_)), "got {:?}", err.kind);
}

#[test]
fn panic_in_spawned_thread_is_reported_with_seed() {
    let err = model::check(cfg(), || {
        let t = thread::spawn(|| panic!("boom in model thread"));
        let _ = t.join();
    })
    .expect_err("the panic must fail the check");
    match &err.kind {
        FailureKind::Panic(msg) => assert!(msg.contains("boom"), "msg: {msg}"),
        other => panic!("expected panic failure, got {other:?}"),
    }
    assert!(err.seed.starts_with("mc1:"), "seed: {}", err.seed);
}

// ------------------------------------------------- determinism and replay

#[test]
fn failing_seed_replays_deterministically() {
    fn scenario() -> impl Fn() + Send + Sync + 'static {
        || {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (a.clone(), b.clone());
            let t = thread::spawn(move || {
                let _g1 = b2.lock().unwrap();
                let _g2 = a2.lock().unwrap();
            });
            let _g1 = a.lock().unwrap();
            let _g2 = b.lock().unwrap();
            drop((_g1, _g2));
            t.join().unwrap();
        }
    }
    let first = model::check(cfg(), scenario()).expect_err("deadlock expected");
    let second = model::check(cfg(), scenario()).expect_err("deadlock expected");
    assert_eq!(first.seed, second.seed, "exploration order must be deterministic");
    assert_eq!(first.schedule, second.schedule);

    // Replaying the seed reproduces exactly the same failure, without
    // any search.
    let replayed = model::replay(cfg(), &first.seed, scenario())
        .expect_err("seed must reproduce the deadlock");
    assert_eq!(replayed.kind, first.kind);

    // A garbage seed is rejected, not silently explored.
    let bad = model::replay(cfg(), "not-a-seed", scenario()).expect_err("bad seed");
    assert!(matches!(bad.kind, FailureKind::ReplayDiverged(_)));
}

#[test]
fn preemption_bound_caps_the_schedule_count() {
    fn run(preemptions: usize) -> usize {
        let cfg = Config { max_preemptions: preemptions, ..cfg() };
        model::check(cfg, || {
            let n = Arc::new(AtomicU64::new(0));
            let n2 = n.clone();
            let t = thread::spawn(move || {
                n2.fetch_add(1, Ordering::SeqCst);
                n2.fetch_add(1, Ordering::SeqCst);
            });
            n.fetch_add(1, Ordering::SeqCst);
            t.join().unwrap();
        })
        .expect("no failure")
        .schedules
    }
    let zero = run(0);
    let two = run(2);
    assert!(zero <= two, "larger bound must explore at least as much ({zero} vs {two})");
    assert!(zero >= 1 && two > zero, "bounding must actually vary coverage");
}

#[test]
fn schedule_cap_reports_incomplete_instead_of_hanging() {
    let tight = Config {
        max_preemptions: 3,
        max_schedules: 2,
        max_steps: 10_000,
    };
    let report = model::check(tight, || {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = n.clone();
        let t = thread::spawn(move || {
            for _ in 0..4 {
                n2.fetch_add(1, Ordering::SeqCst);
            }
        });
        for _ in 0..4 {
            n.fetch_add(1, Ordering::SeqCst);
        }
        t.join().unwrap();
    })
    .expect("capped run still succeeds");
    assert!(!report.complete, "cap of 2 schedules cannot exhaust this space");
    assert_eq!(report.schedules, 2);
}

#[test]
fn checked_types_delegate_to_std_outside_a_model() {
    assert!(!model::active());
    // Plain use, no model: everything must behave like std.
    let m = Mutex::new(5u32);
    *m.lock().unwrap() += 1;
    assert_eq!(*m.lock().unwrap(), 6);

    let (tx, rx) = mpsc::channel();
    tx.send(3u8).unwrap();
    assert_eq!(rx.recv().unwrap(), 3);
    assert!(rx.recv_timeout(Duration::from_millis(1)).is_err());

    let n = AtomicU64::new(1);
    assert_eq!(n.fetch_add(1, Ordering::Relaxed), 1);

    let t = thread::spawn(|| 40 + 2);
    assert_eq!(t.join().unwrap(), 42);
}
