//! Property tests for the fault-injection layer.
//!
//! The contract under test:
//! * any seeded [`FaultPlan`] run terminates with a report or a typed
//!   [`FaultError`] — never a hang, never a panic;
//! * the zero plan is bit-identical to the fault-free simulator path;
//! * the same `(fault plan, run seed)` pair reproduces the same report
//!   *and* the same telemetry event sequence;
//! * saturated fault rates exhaust the bounded recovery budget and
//!   surface as the matching typed error.

use proptest::prelude::*;
use sparksim::catalog::Catalog;
use sparksim::engine::Engine;
use sparksim::fault::{FaultError, FaultPlan};
use sparksim::resource::{ClusterConfig, ResourceConfig};
use sparksim::schema::{ColumnDef, TableSchema};
use sparksim::storage::{Column, ColumnData, Table};
use sparksim::types::DataType;

/// Two joinable tables, big enough that every stage has nonzero work.
fn engine() -> Engine {
    let n = 4_000i64;
    let mut catalog = Catalog::new();
    catalog.register(Table::new(
        TableSchema::new(
            "ta",
            vec![
                ColumnDef::new("id", DataType::Int, false),
                ColumnDef::new("x", DataType::Int, false),
            ],
        ),
        vec![
            Column::non_null(ColumnData::Int((0..n).collect())),
            Column::non_null(ColumnData::Int((0..n).map(|i| (i * 7) % 100).collect())),
        ],
    ));
    catalog.register(Table::new(
        TableSchema::new(
            "tb",
            vec![
                ColumnDef::new("a_id", DataType::Int, false),
                ColumnDef::new("y", DataType::Int, false),
            ],
        ),
        vec![
            Column::non_null(ColumnData::Int((0..n).map(|i| i % 500).collect())),
            Column::non_null(ColumnData::Int((0..n).map(|i| (i * 3) % 40).collect())),
        ],
    ));
    Engine::new(catalog)
}

const JOIN_SQL: &str = "SELECT ta.x, COUNT(*) FROM ta, tb WHERE ta.id = tb.a_id GROUP BY ta.x";

fn resources(executors: usize, cores: usize) -> ResourceConfig {
    ResourceConfig {
        executors,
        cores_per_executor: cores,
        ..ResourceConfig::default_for(&ClusterConfig::default())
    }
}

/// Pulls the event-name sequence out of a captured JSONL log: the
/// deterministic skeleton of a run (timestamps and durations are not).
fn event_names(lines: &[String]) -> Vec<String> {
    lines
        .iter()
        .filter(|l| l.contains("\"type\":\"event\""))
        .filter_map(|l| {
            let start = l.find("\"name\":\"")? + "\"name\":\"".len();
            let end = l[start..].find('"')? + start;
            Some(l[start..end].to_string())
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Any seeded fault plan terminates: either a finite positive
    /// report or a typed error. (The retry budget is the termination
    /// proof; this exercises it across the whole intensity range.)
    #[test]
    fn seeded_fault_runs_terminate(
        intensity in 0.0f64..1.0,
        fault_seed in 0u64..u64::MAX,
        run_seed in 0u64..u64::MAX,
        executors in 1usize..8,
        cores in 1usize..4,
    ) {
        let engine = engine();
        let plan = &engine.plan_candidates(JOIN_SQL).unwrap()[0];
        let result = engine.execute_plan(plan).unwrap();
        let faults = FaultPlan::chaos(fault_seed, intensity);
        let res = resources(executors, cores);
        match engine.resimulate_with_faults(plan, &result, &res, run_seed, &faults) {
            Ok(fr) => {
                prop_assert!(fr.report.seconds.is_finite());
                prop_assert!(fr.report.seconds > 0.0);
                prop_assert!(fr.faults.extra_seconds >= 0.0);
            }
            Err(
                FaultError::TaskRetriesExhausted { .. }
                | FaultError::StageAttemptsExhausted { .. },
            ) => {}
        }
    }

    /// The zero plan is bit-identical to the fault-free path: same
    /// `SimReport`, field for field, and an all-zero fault summary.
    #[test]
    fn zero_fault_runs_match_plain_simulation_exactly(
        run_seed in 0u64..u64::MAX,
        fault_seed in 0u64..u64::MAX,
        executors in 1usize..8,
        cores in 1usize..4,
    ) {
        let engine = engine();
        let plan = &engine.plan_candidates(JOIN_SQL).unwrap()[0];
        let result = engine.execute_plan(plan).unwrap();
        let res = resources(executors, cores);
        let base = engine.resimulate(plan, &result, &res, run_seed);
        for zero in [FaultPlan::none(), FaultPlan::chaos(fault_seed, 0.0)] {
            prop_assert!(zero.is_zero());
            let fr = engine
                .resimulate_with_faults(plan, &result, &res, run_seed, &zero)
                .unwrap();
            prop_assert_eq!(&fr.report, &base);
            prop_assert!(!fr.faults.any());
        }
    }

    /// Same `(fault plan, run seed)` pair, same report — across plans
    /// and resource points.
    #[test]
    fn fault_reports_are_deterministic(
        intensity in 0.0f64..0.6,
        fault_seed in 0u64..u64::MAX,
        run_seed in 0u64..u64::MAX,
    ) {
        let engine = engine();
        let plan = &engine.plan_candidates(JOIN_SQL).unwrap()[0];
        let result = engine.execute_plan(plan).unwrap();
        let faults = FaultPlan::chaos(fault_seed, intensity);
        let res = resources(4, 2);
        let a = engine.resimulate_with_faults(plan, &result, &res, run_seed, &faults);
        let b = engine.resimulate_with_faults(plan, &result, &res, run_seed, &faults);
        prop_assert_eq!(a, b);
    }
}

/// The determinism contract extends to the event log: the same seeds
/// produce the same event-name sequence (the ISSUE's "same seed → same
/// event log" requirement, minus wall-clock fields).
#[test]
fn same_seed_same_event_log() {
    let engine = engine();
    let plan = &engine.plan_candidates(JOIN_SQL).unwrap()[0];
    let result = engine.execute_plan(plan).unwrap();
    let res = resources(4, 2);
    for fault_seed in [1u64, 99, 12345] {
        let faults = FaultPlan::chaos(fault_seed, 0.35);
        let run = || {
            telemetry::testing::capture(|| {
                let _ = engine.resimulate_with_faults(plan, &result, &res, 7, &faults);
            })
        };
        let first = event_names(&run());
        let second = event_names(&run());
        assert_eq!(first, second, "fault_seed={fault_seed}");
        // All emitted event names must be registered in the schema.
        for name in &first {
            assert!(
                telemetry::schema::EVENT_NAMES.contains(&name.as_str()),
                "unregistered event name {name:?}"
            );
        }
    }
}

/// A certain executor failure exhausts the per-task retry budget and
/// surfaces as the matching typed error — not a hang, not a panic.
#[test]
fn saturated_executor_failures_exhaust_retries() {
    let engine = engine();
    let plan = &engine.plan_candidates("SELECT COUNT(*) FROM ta").unwrap()[0];
    let result = engine.execute_plan(plan).unwrap();
    let faults = FaultPlan { executor_failure_rate: 1.0, ..FaultPlan::none() };
    let err = engine
        .resimulate_with_faults(plan, &result, &resources(4, 2), 7, &faults)
        .unwrap_err();
    assert!(matches!(err, FaultError::TaskRetriesExhausted { .. }), "{err}");
}

/// A certain fetch failure exhausts the stage re-attempt budget on any
/// shuffle-fed stage.
#[test]
fn saturated_fetch_failures_exhaust_stage_attempts() {
    let engine = engine();
    let plan = &engine.plan_candidates(JOIN_SQL).unwrap()[0];
    let result = engine.execute_plan(plan).unwrap();
    let faults = FaultPlan { fetch_failure_rate: 1.0, ..FaultPlan::none() };
    let err = engine
        .resimulate_with_faults(plan, &result, &resources(4, 2), 7, &faults)
        .unwrap_err();
    assert!(matches!(err, FaultError::StageAttemptsExhausted { .. }), "{err}");
}

/// Fault cost is monotone on average: heavy chaos should not be cheaper
/// than no faults for the runs that survive.
#[test]
fn surviving_faulty_runs_are_never_faster() {
    let engine = engine();
    let plan = &engine.plan_candidates(JOIN_SQL).unwrap()[0];
    let result = engine.execute_plan(plan).unwrap();
    let res = resources(4, 2);
    for run_seed in 0..20u64 {
        let base = engine.resimulate(plan, &result, &res, run_seed).seconds;
        let faults = FaultPlan::chaos(run_seed, 0.3);
        if let Ok(fr) = engine.resimulate_with_faults(plan, &result, &res, run_seed, &faults) {
            assert!(
                fr.report.seconds >= base - 1e-9,
                "seed {run_seed}: faulty {} < clean {}",
                fr.report.seconds,
                base
            );
        }
    }
}
