//! Property tests on individual sparksim components: histograms, LIKE
//! matching, sorting, and simulator invariants.

use proptest::prelude::*;
use sparksim::batch::Batch;
use sparksim::exec::sort_batch;
use sparksim::expr::like_match;
use sparksim::schema::ColumnRef;
use sparksim::stats::Histogram;
use sparksim::storage::{Column, ColumnData};

/// Slow-but-obviously-correct LIKE matcher (backtracking over `%`).
fn like_reference(s: &str, pattern: &str) -> bool {
    fn rec(s: &[u8], p: &[u8]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some(b'%') => (0..=s.len()).any(|k| rec(&s[k..], &p[1..])),
            Some(&c) => s.first() == Some(&c) && rec(&s[1..], &p[1..]),
        }
    }
    rec(s.as_bytes(), pattern.as_bytes())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn histogram_selectivity_is_monotone_and_bounded(
        mut values in prop::collection::vec(-1000.0f64..1000.0, 1..300),
        probes in prop::collection::vec(-1200.0f64..1200.0, 1..20),
    ) {
        values.iter_mut().for_each(|v| *v = v.round());
        let h = Histogram::build(values.clone(), 16).unwrap();
        let mut sorted_probes = probes;
        sorted_probes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for &p in &sorted_probes {
            let s = h.selectivity_lt(p);
            prop_assert!((0.0..=1.0).contains(&s), "selectivity {s} out of range");
            prop_assert!(s + 1e-9 >= prev, "selectivity must be monotone");
            prev = s;
        }
        // Exact bounds.
        let (min, max) = h.min_max();
        prop_assert_eq!(h.selectivity_lt(min - 1.0), 0.0);
        prop_assert_eq!(h.selectivity_lt(max + 1.0), 1.0);
    }

    #[test]
    fn histogram_tracks_true_selectivity_roughly(
        values in prop::collection::vec(0.0f64..100.0, 50..400),
        probe in 0.0f64..100.0,
    ) {
        let h = Histogram::build(values.clone(), 32).unwrap();
        let actual = values.iter().filter(|&&v| v < probe).count() as f64
            / values.len() as f64;
        let est = h.selectivity_lt(probe);
        // Equi-depth with 32 buckets: within ~2 buckets of truth.
        prop_assert!((est - actual).abs() < 0.1, "est {est} vs actual {actual}");
    }

    #[test]
    fn like_match_agrees_with_backtracking_reference(
        s in "[a-c]{0,8}",
        pattern in "[a-c%]{0,6}",
    ) {
        prop_assert_eq!(
            like_match(&s, &pattern),
            like_reference(&s, &pattern),
            "s={:?} pattern={:?}", s, pattern
        );
    }

    #[test]
    fn sort_batch_is_an_ordered_permutation(
        values in prop::collection::vec(-100i64..100, 0..100),
    ) {
        let re = ColumnRef::new("t", "v");
        let mut b = Batch::new();
        b.push(re.clone(), Column::non_null(ColumnData::Int(values.clone())));
        let sorted = sort_batch(&b, &[(re.clone(), true)]);
        let col = sorted.column(&re).unwrap();
        let out: Vec<i64> = (0..sorted.num_rows())
            .map(|i| col.value(i).as_i64().unwrap())
            .collect();
        // Ordered...
        prop_assert!(out.windows(2).all(|w| w[0] <= w[1]));
        // ...and a permutation.
        let mut expected = values;
        expected.sort_unstable();
        prop_assert_eq!(out, expected);
    }
}

mod simulator_props {
    use super::*;
    use sparksim::exec::NodeMetrics;
    use sparksim::plan::physical::{AggMode, PhysicalOp, PhysicalPlan};
    use sparksim::plan::spec::AggSpec;
    use sparksim::sql::ast::AggFunc;
    use sparksim::{ClusterConfig, CostSimulator, ResourceConfig, SimulatorConfig};

    fn plan_and_metrics(rows: f64) -> (PhysicalPlan, Vec<NodeMetrics>) {
        let mut p = PhysicalPlan::new();
        let scan = p.add(
            PhysicalOp::FileScan {
                binding: "t".into(),
                table: "t".into(),
                output: vec![ColumnRef::new("t", "id")],
                pushed_filter: None,
            },
            vec![],
            rows,
            rows * 8.0,
        );
        let aggs = vec![AggSpec { func: AggFunc::Count, arg: None }];
        let pa = p.add(
            PhysicalOp::HashAggregate {
                mode: AggMode::Partial,
                group_by: vec![],
                aggs: aggs.clone(),
            },
            vec![scan],
            1.0,
            8.0,
        );
        let ex = p.add(PhysicalOp::ExchangeSingle, vec![pa], 1.0, 8.0);
        p.add(
            PhysicalOp::HashAggregate { mode: AggMode::Final, group_by: vec![], aggs },
            vec![ex],
            1.0,
            8.0,
        );
        let m = vec![
            NodeMetrics {
                rows_out: rows,
                bytes_out: rows * 8.0,
                rows_in: rows,
                bytes_in: rows * 8.0,
            },
            NodeMetrics {
                rows_out: 1.0,
                bytes_out: 8.0,
                rows_in: rows,
                bytes_in: rows * 8.0,
            },
            NodeMetrics {
                rows_out: 1.0,
                bytes_out: 8.0,
                rows_in: 1.0,
                bytes_in: 8.0,
            },
            NodeMetrics {
                rows_out: 1.0,
                bytes_out: 8.0,
                rows_in: 1.0,
                bytes_in: 8.0,
            },
        ];
        (p, m)
    }

    fn sim() -> CostSimulator {
        CostSimulator::new(
            ClusterConfig::default(),
            SimulatorConfig { noise_sigma: 0.0, ..SimulatorConfig::default() },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn time_is_positive_and_finite(
            rows in 1.0f64..1e9,
            executors in 1usize..8,
            cores in 1usize..4,
            mem in 1.0f64..12.0,
        ) {
            let (p, m) = plan_and_metrics(rows);
            let res = ResourceConfig {
                executors,
                cores_per_executor: cores,
                memory_per_executor_gb: mem,
                network_throughput_mbps: 120.0,
                disk_throughput_mbps: 200.0,
            };
            let t = sim().simulate(&p, &m, &res, 0);
            prop_assert!(t.is_finite() && t > 0.0, "t={t}");
        }

        #[test]
        fn more_data_never_runs_disproportionately_faster(
            rows in 1.0f64..1e8,
            factor in 1.5f64..20.0,
        ) {
            let res = ResourceConfig {
                executors: 2,
                cores_per_executor: 2,
                memory_per_executor_gb: 4.0,
                network_throughput_mbps: 120.0,
                disk_throughput_mbps: 200.0,
            };
            let (p1, m1) = plan_and_metrics(rows);
            let (p2, m2) = plan_and_metrics(rows * factor);
            let t1 = sim().simulate(&p1, &m1, &res, 0);
            let t2 = sim().simulate(&p2, &m2, &res, 0);
            // Growing the input may legitimately *reduce* time when it
            // crosses an input-split boundary and unlocks parallelism
            // (more concurrent tasks, more aggregate bandwidth) — exactly
            // as in Spark. Bound the allowed speedup by the concurrency
            // gain; beyond that, bigger inputs must not be faster.
            let split = SimulatorConfig::default().bytes_per_partition;
            let slots = res.total_slots() as f64;
            let conc = |r: f64| ((r * 8.0 / split).ceil().max(1.0)).min(slots);
            let allowed = conc(rows) / conc(rows * factor); // <= 1
            prop_assert!(
                t2 + 1e-9 >= t1 * allowed * 0.99,
                "bigger input too fast: {t1} -> {t2} (allowed factor {allowed})"
            );
        }

        #[test]
        fn faster_disk_never_hurts(
            rows in 1e5f64..1e8,
            disk in 50.0f64..400.0,
        ) {
            let (p, m) = plan_and_metrics(rows);
            let mk = |d: f64| ResourceConfig {
                executors: 2,
                cores_per_executor: 2,
                memory_per_executor_gb: 4.0,
                network_throughput_mbps: 120.0,
                disk_throughput_mbps: d,
            };
            let slow = sim().simulate(&p, &m, &mk(disk), 0);
            let fast = sim().simulate(&p, &m, &mk(disk * 2.0), 0);
            prop_assert!(fast <= slow + 1e-9);
        }
    }
}

mod simplify_props {
    use super::*;
    use sparksim::expr::{CmpOp, Expr};
    use sparksim::plan::simplify::simplify;
    use sparksim::types::Value;

    /// Random expression trees over one int column and boolean/int literals.
    fn arb_expr() -> impl Strategy<Value = Expr> {
        let col = ColumnRef::new("t", "v");
        let leaf = prop_oneof![
            (-20i64..20).prop_map({
                let col = col.clone();
                move |v| Expr::cmp(col.clone(), CmpOp::Lt, Value::Int(v))
            }),
            (-20i64..20).prop_map({
                let col = col.clone();
                move |v| Expr::cmp(col.clone(), CmpOp::Eq, Value::Int(v))
            }),
            Just(Expr::IsNotNull(Box::new(Expr::Column(col.clone())))),
            Just(Expr::IsNull(Box::new(Expr::Column(col.clone())))),
            (-5i64..5, -5i64..5).prop_map(|(a, b)| Expr::Cmp {
                op: CmpOp::Le,
                left: Box::new(Expr::Literal(Value::Int(a))),
                right: Box::new(Expr::Literal(Value::Int(b))),
            }),
            Just(Expr::Literal(Value::Null)),
        ];
        leaf.prop_recursive(3, 24, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
                inner.prop_map(|a| Expr::Not(Box::new(a))),
            ]
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

        /// Simplification preserves three-valued semantics row by row.
        #[test]
        fn simplify_preserves_semantics(
            e in arb_expr(),
            values in prop::collection::vec((-25i64..25, prop::bool::ANY), 1..30),
        ) {
            let re = ColumnRef::new("t", "v");
            let mut b = Batch::new();
            b.push(
                re,
                Column {
                    data: ColumnData::Int(values.iter().map(|v| v.0).collect()),
                    validity: Some(values.iter().map(|v| v.1).collect()),
                },
            );
            let simplified = simplify(&e);
            prop_assert_eq!(
                e.eval_mask(&b),
                simplified.eval_mask(&b),
                "expr {} != simplified {}", e, simplified
            );
        }

        /// Simplification is idempotent.
        #[test]
        fn simplify_is_idempotent(e in arb_expr()) {
            let once = simplify(&e);
            let twice = simplify(&once);
            prop_assert_eq!(once, twice);
        }
    }
}
