//! Property tests: every candidate physical plan the planner enumerates
//! must produce exactly the rows of the naive reference evaluator,
//! regardless of join strategy, join order or filter placement.

use proptest::prelude::*;
use sparksim::catalog::Catalog;
use sparksim::exec::reference::execute_reference;
use sparksim::exec::Executor;
use sparksim::plan::planner::{Planner, PlannerOptions};
use sparksim::plan::spec::resolve;
use sparksim::schema::{ColumnDef, TableSchema};
use sparksim::sql::parser::parse;
use sparksim::storage::{Column, ColumnData, Table};
use sparksim::types::{DataType, Value};

fn build_catalog(a_rows: &[(i64, i64)], b_rows: &[(i64, i64)]) -> Catalog {
    let mut c = Catalog::new();
    c.register(Table::new(
        TableSchema::new(
            "ta",
            vec![
                ColumnDef::new("id", DataType::Int, false),
                ColumnDef::new("x", DataType::Int, false),
            ],
        ),
        vec![
            Column::non_null(ColumnData::Int(a_rows.iter().map(|r| r.0).collect())),
            Column::non_null(ColumnData::Int(a_rows.iter().map(|r| r.1).collect())),
        ],
    ));
    c.register(Table::new(
        TableSchema::new(
            "tb",
            vec![
                ColumnDef::new("a_id", DataType::Int, false),
                ColumnDef::new("y", DataType::Int, false),
            ],
        ),
        vec![
            Column::non_null(ColumnData::Int(b_rows.iter().map(|r| r.0).collect())),
            Column::non_null(ColumnData::Int(b_rows.iter().map(|r| r.1).collect())),
        ],
    ));
    c
}

/// Canonicalises result rows for order-insensitive comparison.
fn canon(mut rows: Vec<Vec<Value>>) -> Vec<String> {
    let mut out: Vec<String> = rows
        .drain(..)
        .map(|r| {
            r.iter()
                .map(|v| match v {
                    // Compare numerics at modest precision: the engine may
                    // produce Int where the reference produces Float.
                    Value::Null => "NULL".to_string(),
                    v => match v.as_f64() {
                        Some(f) => format!("{f:.6}"),
                        None => v.to_string(),
                    },
                })
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    out.sort();
    out
}

fn batch_rows(batch: &sparksim::batch::Batch) -> Vec<Vec<Value>> {
    (0..batch.num_rows())
        .map(|r| batch.entries().iter().map(|(_, c)| c.value(r)).collect())
        .collect()
}

fn check_query(catalog: &Catalog, sql: &str) {
    let q = parse(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
    let spec = resolve(&q, catalog).unwrap_or_else(|e| panic!("{sql}: {e}"));
    let expected = canon(execute_reference(catalog, &spec).unwrap());
    let plans = Planner::new(catalog, PlannerOptions::default()).enumerate(&spec);
    assert!(!plans.is_empty());
    let executor = Executor::new(catalog);
    for (i, plan) in plans.iter().enumerate() {
        let result = executor
            .execute(plan)
            .unwrap_or_else(|e| panic!("{sql} plan {i}: {e}\n{}", plan.explain()));
        let got = canon(batch_rows(&result.batch));
        assert_eq!(got, expected, "{sql}\nplan {i} disagrees with reference:\n{}", plan.explain());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn filtered_count_matches_reference(
        a in prop::collection::vec((0..30i64, 0..50i64), 1..60),
        b in prop::collection::vec((0..30i64, 0..50i64), 1..60),
        cut in 0..50i64,
    ) {
        let catalog = build_catalog(&a, &b);
        check_query(&catalog, &format!("SELECT COUNT(*) FROM ta WHERE ta.x < {cut}"));
        check_query(&catalog, &format!("SELECT COUNT(*) FROM tb WHERE tb.y >= {cut}"));
    }

    #[test]
    fn join_count_matches_reference(
        a in prop::collection::vec((0..15i64, 0..50i64), 1..40),
        b in prop::collection::vec((0..15i64, 0..50i64), 1..40),
        cut in 0..50i64,
    ) {
        let catalog = build_catalog(&a, &b);
        check_query(
            &catalog,
            &format!("SELECT COUNT(*) FROM ta, tb WHERE ta.id = tb.a_id AND ta.x < {cut}"),
        );
    }

    #[test]
    fn grouped_aggregates_match_reference(
        a in prop::collection::vec((0..10i64, 0..20i64), 1..40),
        b in prop::collection::vec((0..10i64, 0..20i64), 1..40),
    ) {
        let catalog = build_catalog(&a, &b);
        check_query(
            &catalog,
            "SELECT ta.x, COUNT(*), SUM(tb.y) FROM ta, tb WHERE ta.id = tb.a_id GROUP BY ta.x",
        );
    }

    #[test]
    fn complex_predicates_match_reference(
        a in prop::collection::vec((0..20i64, 0..40i64), 1..50),
        lo in 0..20i64,
        width in 1..20i64,
    ) {
        let catalog = build_catalog(&a, &[(0, 0)]);
        check_query(
            &catalog,
            &format!(
                "SELECT COUNT(*) FROM ta WHERE ta.x BETWEEN {lo} AND {} OR ta.id IN (1, 3, 5)",
                lo + width
            ),
        );
    }

    #[test]
    fn order_and_limit_match_reference(
        a in prop::collection::vec((0..25i64, 0..25i64), 1..40),
        n in 1usize..10,
    ) {
        let catalog = build_catalog(&a, &[(0, 0)]);
        // ORDER BY ta.id is a total order (ids may repeat, so compare the
        // *set* of returned ids only when unique); use LIMIT beyond ties.
        let q = parse(&format!(
            "SELECT ta.id FROM ta ORDER BY ta.id LIMIT {n}"
        ))
        .unwrap();
        let spec = resolve(&q, &catalog).unwrap();
        let expected = execute_reference(&catalog, &spec).unwrap();
        let plans = Planner::new(&catalog, PlannerOptions::default()).enumerate(&spec);
        let executor = Executor::new(&catalog);
        for plan in &plans {
            let result = executor.execute(plan).unwrap();
            let got = batch_rows(&result.batch);
            // Both must be ascending prefixes of the same multiset.
            let got_ids: Vec<i64> = got.iter().map(|r| r[0].as_i64().unwrap()).collect();
            let exp_ids: Vec<i64> = expected.iter().map(|r| r[0].as_i64().unwrap()).collect();
            prop_assert_eq!(&got_ids, &exp_ids);
            prop_assert!(got_ids.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
