//! High-level facade tying the pieces together: SQL in, candidate plans,
//! results and simulated execution times out.

use crate::catalog::Catalog;
use crate::exec::{ExecResult, Executor};
use crate::fault::{FaultError, FaultPlan};
use crate::plan::physical::PhysicalPlan;
use crate::plan::planner::{Planner, PlannerOptions};
use crate::plan::spec::{resolve, QuerySpec};
use crate::resource::{ClusterConfig, ResourceConfig};
use crate::simulator::{CostSimulator, FaultReport, SimReport, SimulatorConfig};
use crate::sql::parser::parse;
use std::fmt;

/// Any failure between SQL text and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Tokenizer/parser failure.
    Parse(String),
    /// Binder failure.
    Resolve(String),
    /// Executor failure.
    Exec(String),
    /// A fault-injected simulation exhausted its recovery budget.
    Fault(FaultError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(m) => write!(f, "parse: {m}"),
            EngineError::Resolve(m) => write!(f, "resolve: {m}"),
            EngineError::Exec(m) => write!(f, "exec: {m}"),
            EngineError::Fault(e) => write!(f, "fault: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// One observed run: the real result/metrics plus the simulated wall time
/// — exactly one training record for the cost model.
#[derive(Debug, Clone)]
pub struct ObservedRun {
    /// Execution output and true per-node metrics.
    pub result: ExecResult,
    /// Simulated timing breakdown.
    pub report: SimReport,
}

impl ObservedRun {
    /// Simulated wall-clock seconds (the training label).
    pub fn seconds(&self) -> f64 {
        self.report.seconds
    }
}

/// One observed run under fault injection: the real result/metrics plus
/// the fault-adjusted simulated time and the fault breakdown.
#[derive(Debug, Clone)]
pub struct ObservedFaultRun {
    /// Execution output and true per-node metrics (execution itself is
    /// never faulted — faults only perturb the simulated timing).
    pub result: ExecResult,
    /// Simulated timing with recovery costs, plus the fault summary.
    pub fault_report: FaultReport,
}

impl ObservedFaultRun {
    /// Simulated wall-clock seconds including recovery costs.
    pub fn seconds(&self) -> f64 {
        self.fault_report.report.seconds
    }
}

/// The Spark-SQL-like engine: catalog + planner + executor + simulator.
#[derive(Debug)]
pub struct Engine {
    catalog: Catalog,
    planner_opts: PlannerOptions,
    simulator: CostSimulator,
}

impl Engine {
    /// Creates an engine with default planner/simulator settings over the
    /// default 4-node cluster.
    pub fn new(catalog: Catalog) -> Self {
        Self::with_options(
            catalog,
            PlannerOptions::default(),
            ClusterConfig::default(),
            SimulatorConfig::default(),
        )
    }

    /// Creates an engine with explicit settings.
    pub fn with_options(
        catalog: Catalog,
        planner_opts: PlannerOptions,
        cluster: ClusterConfig,
        sim_cfg: SimulatorConfig,
    ) -> Self {
        Self {
            catalog,
            planner_opts,
            simulator: CostSimulator::new(cluster, sim_cfg),
        }
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The underlying time simulator.
    pub fn simulator(&self) -> &CostSimulator {
        &self.simulator
    }

    /// Planner options in use.
    pub fn planner_options(&self) -> &PlannerOptions {
        &self.planner_opts
    }

    /// Parses and binds a query.
    pub fn spec(&self, sql: &str) -> Result<QuerySpec, EngineError> {
        let q = parse(sql).map_err(|e| EngineError::Parse(e.to_string()))?;
        resolve(&q, &self.catalog).map_err(|e| EngineError::Resolve(e.to_string()))
    }

    /// Candidate physical plans for a query, Catalyst default first.
    pub fn plan_candidates(&self, sql: &str) -> Result<Vec<PhysicalPlan>, EngineError> {
        let spec = self.spec(sql)?;
        Ok(Planner::new(&self.catalog, self.planner_opts.clone()).enumerate(&spec))
    }

    /// Executes a physical plan and collects true metrics.
    pub fn execute_plan(&self, plan: &PhysicalPlan) -> Result<ExecResult, EngineError> {
        let mut span = telemetry::span("sparksim.execute_plan");
        span.record("plan_nodes", plan.len() as u64);
        let result = Executor::new(&self.catalog)
            .execute(plan)
            .map_err(|e| EngineError::Exec(e.to_string()));
        if let Ok(r) = &result {
            if let Some(root) = r.metrics.last() {
                span.record("root_rows", root.rows_out);
            }
        }
        result
    }

    /// `EXPLAIN`-style rendering of every candidate plan for a query.
    pub fn explain_sql(&self, sql: &str) -> Result<String, EngineError> {
        let plans = self.plan_candidates(sql)?;
        let mut out = String::new();
        for (i, p) in plans.iter().enumerate() {
            out.push_str(&format!("-- plan {i} --\n"));
            out.push_str(&p.explain());
        }
        Ok(out)
    }

    /// `EXPLAIN ANALYZE`-style rendering of a plan: executes it for true
    /// cardinalities, simulates it under `resources`, and annotates each
    /// node with estimated vs. actual rows plus the per-stage times.
    pub fn explain_analyze(
        &self,
        plan: &PhysicalPlan,
        resources: &ResourceConfig,
        seed: u64,
    ) -> Result<String, EngineError> {
        let result = self.execute_plan(plan)?;
        let report = self.simulator.simulate_report(plan, &result.metrics, resources, seed);
        let mut out = String::new();
        for id in (0..plan.len()).rev() {
            let node = plan.node(id);
            out.push_str(&format!(
                "[{id:>2}] {:<70} est_rows={:<12.0} actual_rows={:<12.0}
",
                plan.statement(id),
                node.est_rows,
                result.metrics[id].rows_out
            ));
        }
        out.push_str(&format!(
            "simulated: {:.2}s over {} stages {:?}; spill {:.1} MB; gc {:.2}s; cache hit {:.0}%
",
            report.seconds,
            report.stage_seconds.len(),
            report
                .stage_seconds
                .iter()
                .map(|s| (s * 100.0).round() / 100.0)
                .collect::<Vec<_>>(),
            report.spill_bytes / 1e6,
            report.gc_seconds,
            report.cache_hit * 100.0
        ));
        Ok(out)
    }

    /// Executes the default plan of a query.
    pub fn run_sql(&self, sql: &str) -> Result<ExecResult, EngineError> {
        let plans = self.plan_candidates(sql)?;
        self.execute_plan(&plans[0])
    }

    /// Executes a plan and simulates its wall time under `resources` —
    /// one training record.
    pub fn observe(
        &self,
        plan: &PhysicalPlan,
        resources: &ResourceConfig,
        seed: u64,
    ) -> Result<ObservedRun, EngineError> {
        let _span = telemetry::span("sparksim.observe");
        let result = self.execute_plan(plan)?;
        let report = self.simulator.simulate_report(plan, &result.metrics, resources, seed);
        Ok(ObservedRun { result, report })
    }

    /// Re-simulates an already-executed plan under different resources
    /// (the execution metrics do not depend on resources).
    pub fn resimulate(
        &self,
        plan: &PhysicalPlan,
        result: &ExecResult,
        resources: &ResourceConfig,
        seed: u64,
    ) -> SimReport {
        self.simulator.simulate_report(plan, &result.metrics, resources, seed)
    }

    /// Executes a plan and simulates its wall time under `resources`
    /// with deterministic fault injection — one *degraded-cluster*
    /// training record. Fails with [`EngineError::Fault`] when the
    /// injected faults exhaust the bounded recovery budget.
    pub fn observe_with_faults(
        &self,
        plan: &PhysicalPlan,
        resources: &ResourceConfig,
        seed: u64,
        faults: &FaultPlan,
    ) -> Result<ObservedFaultRun, EngineError> {
        let _span = telemetry::span("sparksim.observe");
        let result = self.execute_plan(plan)?;
        let fault_report = self
            .simulator
            .simulate_report_with_faults(plan, &result.metrics, resources, seed, faults)
            .map_err(EngineError::Fault)?;
        Ok(ObservedFaultRun { result, fault_report })
    }

    /// Re-simulates an already-executed plan under different resources
    /// and a [`FaultPlan`] — the cheap way to sweep fault intensities
    /// over one execution.
    pub fn resimulate_with_faults(
        &self,
        plan: &PhysicalPlan,
        result: &ExecResult,
        resources: &ResourceConfig,
        seed: u64,
        faults: &FaultPlan,
    ) -> Result<FaultReport, FaultError> {
        self.simulator
            .simulate_report_with_faults(plan, &result.metrics, resources, seed, faults)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, TableSchema};
    use crate::storage::{Column, ColumnData, Table};
    use crate::types::DataType;

    fn engine() -> Engine {
        let mut c = Catalog::new();
        c.register(Table::new(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("id", DataType::Int, false),
                    ColumnDef::new("x", DataType::Int, false),
                ],
            ),
            vec![
                Column::non_null(ColumnData::Int((0..1000).collect())),
                Column::non_null(ColumnData::Int((0..1000).map(|i| i % 10).collect())),
            ],
        ));
        c.register(Table::new(
            TableSchema::new(
                "u",
                vec![
                    ColumnDef::new("t_id", DataType::Int, false),
                    ColumnDef::new("y", DataType::Int, false),
                ],
            ),
            vec![
                Column::non_null(ColumnData::Int((0..2000).map(|i| i % 1000).collect())),
                Column::non_null(ColumnData::Int((0..2000).collect())),
            ],
        ));
        Engine::new(c)
    }

    #[test]
    fn count_star_is_correct() {
        let e = engine();
        let r = e.run_sql("SELECT COUNT(*) FROM t WHERE t.x < 5").unwrap();
        assert_eq!(r.scalar_i64(), Some(500));
    }

    #[test]
    fn all_candidate_plans_agree_on_results() {
        let e = engine();
        let sql = "SELECT COUNT(*) FROM t, u WHERE t.id = u.t_id AND t.x < 3";
        let plans = e.plan_candidates(sql).unwrap();
        assert!(plans.len() >= 2);
        let counts: Vec<_> = plans
            .iter()
            .map(|p| e.execute_plan(p).unwrap().scalar_i64().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
        assert_eq!(counts[0], 600, "each t row matches 2 u rows; 300 t rows pass");
    }

    #[test]
    fn observe_produces_positive_time() {
        let e = engine();
        let plans = e.plan_candidates("SELECT COUNT(*) FROM t").unwrap();
        let res = ResourceConfig::default_for(e.simulator().cluster());
        let run = e.observe(&plans[0], &res, 42).unwrap();
        assert!(run.seconds() > 0.0);
    }

    #[test]
    fn explain_renders_all_candidates() {
        let e = engine();
        let text = e
            .explain_sql("SELECT COUNT(*) FROM t, u WHERE t.id = u.t_id")
            .unwrap();
        assert!(text.contains("-- plan 0 --"));
        assert!(text.contains("FileScan"));
        assert!(text.matches("-- plan").count() >= 2);
    }

    #[test]
    fn explain_analyze_annotates_estimates_and_actuals() {
        let e = engine();
        let plans = e.plan_candidates("SELECT COUNT(*) FROM t WHERE t.x < 5").unwrap();
        let res = ResourceConfig::default_for(e.simulator().cluster());
        let text = e.explain_analyze(&plans[0], &res, 3).unwrap();
        assert!(text.contains("actual_rows"));
        assert!(text.contains("simulated:"));
        assert!(text.contains("FileScan"));
    }

    #[test]
    fn parse_error_is_reported() {
        let e = engine();
        assert!(matches!(e.spec("SELEKT *"), Err(EngineError::Parse(_))));
        assert!(matches!(e.spec("SELECT COUNT(*) FROM missing"), Err(EngineError::Resolve(_))));
    }
}
