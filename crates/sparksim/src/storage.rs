//! In-memory columnar storage.
//!
//! Tables are stored column-wise: integers and floats as plain vectors,
//! strings dictionary-encoded. NULLs are tracked in a validity mask per
//! column. This mirrors the layout Spark SQL scans out of Parquet closely
//! enough that per-row/per-byte work metrics transfer to the simulator.

use crate::schema::TableSchema;
use crate::types::{DataType, Value};
use std::sync::Arc;

/// Physical data of one column.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// 64-bit integers.
    Int(Vec<i64>),
    /// 64-bit floats.
    Float(Vec<f64>),
    /// Dictionary-encoded strings: per-row code into the shared dictionary.
    Str {
        /// Per-row dictionary codes.
        codes: Vec<u32>,
        /// Sorted-insertion dictionary (not necessarily sorted).
        dict: Arc<Vec<String>>,
    },
}

impl ColumnData {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str { codes, .. } => codes.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Logical type of the column.
    pub fn data_type(&self) -> DataType {
        match self {
            ColumnData::Int(_) => DataType::Int,
            ColumnData::Float(_) => DataType::Float,
            ColumnData::Str { .. } => DataType::Str,
        }
    }

    /// Approximate in-memory width of one row of this column, in bytes.
    /// Used by the cost simulator to convert row counts to byte volumes.
    pub fn row_width(&self) -> usize {
        match self {
            ColumnData::Int(_) => 8,
            ColumnData::Float(_) => 8,
            // Dictionary code + amortised share of the string payload.
            ColumnData::Str { dict, codes } => {
                let payload: usize = dict.iter().map(String::len).sum();
                4 + if codes.is_empty() {
                    0
                } else {
                    payload / codes.len().max(1)
                }
            }
        }
    }
}

/// One column: data plus validity.
#[derive(Debug, Clone)]
pub struct Column {
    /// Values (payload at invalid positions is arbitrary).
    pub data: ColumnData,
    /// `validity[i] == false` means row `i` is NULL. `None` = all valid.
    pub validity: Option<Vec<bool>>,
}

impl Column {
    /// A column with no NULLs.
    pub fn non_null(data: ColumnData) -> Self {
        Self { data, validity: None }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Whether row `i` holds a non-NULL value.
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        self.validity.as_ref().is_none_or(|v| v[i])
    }

    /// Number of NULL rows.
    pub fn null_count(&self) -> usize {
        self.validity
            .as_ref()
            .map_or(0, |v| v.iter().filter(|&&x| !x).count())
    }

    /// Scalar value at row `i` (NULL-aware).
    pub fn value(&self, i: usize) -> Value {
        if !self.is_valid(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Str { codes, dict } => Value::Str(dict[codes[i] as usize].clone()),
        }
    }

    /// Copies the rows selected by `indices` into a new column.
    pub fn take(&self, indices: &[usize]) -> Column {
        let data = match &self.data {
            ColumnData::Int(v) => ColumnData::Int(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Float(v) => ColumnData::Float(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Str { codes, dict } => ColumnData::Str {
                codes: indices.iter().map(|&i| codes[i]).collect(),
                dict: Arc::clone(dict),
            },
        };
        let validity = self
            .validity
            .as_ref()
            .map(|v| indices.iter().map(|&i| v[i]).collect());
        Column { data, validity }
    }
}

/// Builder that assembles a string column and its dictionary.
#[derive(Debug, Default)]
pub struct StrColumnBuilder {
    codes: Vec<u32>,
    validity: Vec<bool>,
    dict: Vec<String>,
    index: std::collections::HashMap<String, u32>,
    any_null: bool,
}

impl StrColumnBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a string value.
    pub fn push(&mut self, value: &str) {
        let code = match self.index.get(value) {
            Some(&c) => c,
            None => {
                let c = self.dict.len() as u32;
                self.dict.push(value.to_string());
                self.index.insert(value.to_string(), c);
                c
            }
        };
        self.codes.push(code);
        self.validity.push(true);
    }

    /// Appends a NULL.
    pub fn push_null(&mut self) {
        self.codes.push(0);
        self.validity.push(false);
        self.any_null = true;
    }

    /// Finishes the column.
    pub fn finish(self) -> Column {
        Column {
            data: ColumnData::Str { codes: self.codes, dict: Arc::new(self.dict) },
            validity: if self.any_null {
                Some(self.validity)
            } else {
                None
            },
        }
    }
}

/// A fully materialised table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Schema (column order matches `columns`).
    pub schema: TableSchema,
    /// Column data, one per schema column.
    pub columns: Vec<Column>,
}

impl Table {
    /// Creates a table after validating column/scheme consistency.
    ///
    /// # Panics
    /// Panics if widths or row counts are inconsistent.
    pub fn new(schema: TableSchema, columns: Vec<Column>) -> Self {
        assert_eq!(schema.width(), columns.len(), "schema/column count mismatch");
        if let Some(first) = columns.first() {
            for (i, c) in columns.iter().enumerate() {
                assert_eq!(c.len(), first.len(), "column {i} row count mismatch");
                assert_eq!(
                    c.data.data_type(),
                    schema.columns[i].data_type,
                    "column {i} type mismatch"
                );
            }
        }
        Self { schema, columns }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Column by unqualified name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.schema.column_index(name).map(|i| &self.columns[i])
    }

    /// Approximate total size in bytes (payload only).
    pub fn approx_bytes(&self) -> usize {
        let rows = self.num_rows();
        self.columns.iter().map(|c| c.data.row_width() * rows).sum()
    }

    /// Approximate width of one full row in bytes.
    pub fn row_width(&self) -> usize {
        self.columns.iter().map(|c| c.data.row_width()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;

    fn table() -> Table {
        let schema = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", DataType::Int, false),
                ColumnDef::new("name", DataType::Str, true),
            ],
        );
        let mut b = StrColumnBuilder::new();
        b.push("alpha");
        b.push_null();
        b.push("alpha");
        Table::new(schema, vec![Column::non_null(ColumnData::Int(vec![1, 2, 3])), b.finish()])
    }

    #[test]
    fn basic_shape() {
        let t = table();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.column("name").unwrap().null_count(), 1);
        assert!(t.column("missing").is_none());
    }

    #[test]
    fn dictionary_deduplicates() {
        let t = table();
        if let ColumnData::Str { dict, codes } = &t.column("name").unwrap().data {
            assert_eq!(dict.len(), 1, "'alpha' should be stored once");
            assert_eq!(codes, &vec![0, 0, 0]);
        } else {
            panic!("expected string column");
        }
    }

    #[test]
    fn value_accessor_is_null_aware() {
        let t = table();
        let c = t.column("name").unwrap();
        assert_eq!(c.value(0), Value::Str("alpha".into()));
        assert_eq!(c.value(1), Value::Null);
    }

    #[test]
    fn take_preserves_validity() {
        let t = table();
        let taken = t.column("name").unwrap().take(&[1, 2]);
        assert_eq!(taken.len(), 2);
        assert_eq!(taken.value(0), Value::Null);
        assert_eq!(taken.value(1), Value::Str("alpha".into()));
    }

    #[test]
    #[should_panic(expected = "row count mismatch")]
    fn new_rejects_ragged_columns() {
        let schema = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", DataType::Int, false),
                ColumnDef::new("b", DataType::Int, false),
            ],
        );
        let _ = Table::new(
            schema,
            vec![
                Column::non_null(ColumnData::Int(vec![1])),
                Column::non_null(ColumnData::Int(vec![1, 2])),
            ],
        );
    }

    #[test]
    fn approx_bytes_scales_with_rows() {
        let t = table();
        assert!(t.approx_bytes() >= 3 * 8);
        assert!(t.row_width() >= 12);
    }
}
