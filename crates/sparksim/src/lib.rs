//! # sparksim — a Spark-SQL-like engine with a resource-aware time simulator
//!
//! The substrate for reproducing *"A Resource-Aware Deep Cost Model for Big
//! Data Query Processing"* (ICDE 2022) without Spark bindings. It provides
//! everything the paper's pipeline needs from "Spark SQL":
//!
//! * an in-memory **columnar storage** layer and **catalog** with
//!   statistics (histograms, NDV) — [`storage`], [`catalog`], [`stats`];
//! * a **SQL front end** for the workload subset (selections, multiway
//!   equi-joins, aggregates) — [`sql`];
//! * a Catalyst-style **planner** that enumerates multiple physical plans
//!   per query (join order and strategy variants, filter placement) —
//!   [`plan`];
//! * a vectorised **executor** that runs plans for real, producing true
//!   cardinalities and byte volumes — [`exec`];
//! * a **resource model** (executors, cores, memory, throughputs) and a
//!   stage/wave **execution-time simulator** with spill, GC, page-cache and
//!   broadcast effects that reproduce the paper's non-monotonic
//!   memory behaviour — [`resource`], [`simulator`];
//! * deterministic **fault injection** (executor loss, stragglers, fetch
//!   failures, spill pressure) with Spark-faithful recovery — retries
//!   with capped backoff, speculative execution, stage re-attempts —
//!   [`fault`];
//! * an [`engine::Engine`] facade: SQL → candidate plans → observed runs
//!   (the training records for the deep cost model).
//!
//! ```
//! use sparksim::catalog::Catalog;
//! use sparksim::engine::Engine;
//! use sparksim::schema::{ColumnDef, TableSchema};
//! use sparksim::storage::{Column, ColumnData, Table};
//! use sparksim::types::DataType;
//!
//! let mut catalog = Catalog::new();
//! catalog.register(Table::new(
//!     TableSchema::new("t", vec![ColumnDef::new("id", DataType::Int, false)]),
//!     vec![Column::non_null(ColumnData::Int((0..100).collect()))],
//! ));
//! let engine = Engine::new(catalog);
//! let result = engine.run_sql("SELECT COUNT(*) FROM t WHERE t.id < 10").unwrap();
//! assert_eq!(result.scalar_i64(), Some(10));
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod catalog;
pub mod engine;
pub mod exec;
pub mod expr;
pub mod fault;
pub mod plan;
pub mod resource;
pub mod schema;
pub mod simulator;
pub mod sql;
pub mod stats;
pub mod storage;
pub mod types;

pub use catalog::Catalog;
pub use engine::{Engine, EngineError, ObservedFaultRun, ObservedRun};
pub use fault::{FaultError, FaultPlan, FaultSummary, RecoveryConfig};
pub use plan::physical::PhysicalPlan;
pub use resource::{ClusterConfig, ResourceConfig, ResourceGrid};
pub use simulator::{AllocationMode, CostSimulator, FaultReport, SimReport, SimulatorConfig};
