//! Table and column statistics: row counts, NDV, min/max and equi-depth
//! histograms. These feed the cardinality estimator (as in Catalyst's
//! cost-based optimizer) and the GPSJ baseline cost model.

use crate::storage::{Column, ColumnData, Table};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Equi-depth histogram over a numeric column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Bucket boundaries, ascending; `bounds.len() == buckets + 1`.
    bounds: Vec<f64>,
    /// Rows per bucket (equal by construction, up to rounding).
    depth: f64,
}

impl Histogram {
    /// Builds an equi-depth histogram from (non-NULL) values.
    /// Returns `None` when there are no values.
    pub fn build(mut values: Vec<f64>, buckets: usize) -> Option<Self> {
        if values.is_empty() || buckets == 0 {
            return None;
        }
        // total_cmp: NaNs (if any slip through) sort high instead of
        // panicking the planner.
        values.sort_by(f64::total_cmp);
        let n = values.len();
        let buckets = buckets.min(n);
        let mut bounds = Vec::with_capacity(buckets + 1);
        bounds.push(values[0]);
        for b in 1..buckets {
            bounds.push(values[b * n / buckets]);
        }
        bounds.push(values[n - 1]);
        Some(Self { bounds, depth: n as f64 / buckets as f64 })
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Estimated fraction of rows with value `< x` (of non-NULL rows).
    pub fn selectivity_lt(&self, x: f64) -> f64 {
        let lo = self.bounds[0];
        let hi = self.bounds[self.bounds.len() - 1];
        if x <= lo {
            return 0.0;
        }
        if x > hi {
            return 1.0;
        }
        let total = self.depth * self.buckets() as f64;
        let mut acc = 0.0;
        for w in self.bounds.windows(2) {
            let (a, b) = (w[0], w[1]);
            if x >= b {
                acc += self.depth;
            } else if x > a {
                // Linear interpolation inside the bucket.
                let frac = if b > a { (x - a) / (b - a) } else { 0.5 };
                acc += self.depth * frac;
                break;
            } else {
                break;
            }
        }
        (acc / total).clamp(0.0, 1.0)
    }

    /// Estimated fraction of rows in `[lo, hi]`.
    pub fn selectivity_range(&self, lo: f64, hi: f64) -> f64 {
        if hi < lo {
            return 0.0;
        }
        (self.selectivity_lt(hi + f64::EPSILON) - self.selectivity_lt(lo)).clamp(0.0, 1.0)
    }

    /// Smallest and largest values seen.
    pub fn min_max(&self) -> (f64, f64) {
        (self.bounds[0], self.bounds[self.bounds.len() - 1])
    }
}

/// Statistics for one column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnStats {
    /// Number of NULL rows.
    pub null_count: u64,
    /// Number of distinct non-NULL values.
    pub ndv: u64,
    /// Minimum (numeric columns only).
    pub min: Option<f64>,
    /// Maximum (numeric columns only).
    pub max: Option<f64>,
    /// Equi-depth histogram (numeric columns only).
    pub histogram: Option<Histogram>,
    /// Average row width in bytes.
    pub avg_width: f64,
}

/// Statistics for one table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableStats {
    /// Total rows.
    pub row_count: u64,
    /// Per-column stats keyed by unqualified column name.
    pub columns: HashMap<String, ColumnStats>,
    /// Approximate total bytes.
    pub total_bytes: u64,
}

impl TableStats {
    /// Stats for a column, when known.
    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns.get(name)
    }
}

/// Number of histogram buckets used by [`compute_table_stats`].
pub const DEFAULT_HISTOGRAM_BUCKETS: usize = 64;

/// Computes full statistics for a table (exact NDV — tables here are
/// in-memory and modest, so sketches are unnecessary).
pub fn compute_table_stats(table: &Table) -> TableStats {
    let mut columns = HashMap::with_capacity(table.schema.width());
    for (def, col) in table.schema.columns.iter().zip(&table.columns) {
        columns.insert(def.name.clone(), compute_column_stats(col));
    }
    TableStats {
        row_count: table.num_rows() as u64,
        columns,
        total_bytes: table.approx_bytes() as u64,
    }
}

fn compute_column_stats(col: &Column) -> ColumnStats {
    let null_count = col.null_count() as u64;
    match &col.data {
        ColumnData::Int(v) => {
            let vals: Vec<f64> = (0..v.len())
                .filter(|&i| col.is_valid(i))
                .map(|i| v[i] as f64)
                .collect();
            numeric_stats(vals, null_count, 8.0)
        }
        ColumnData::Float(v) => {
            let vals: Vec<f64> = (0..v.len()).filter(|&i| col.is_valid(i)).map(|i| v[i]).collect();
            numeric_stats(vals, null_count, 8.0)
        }
        ColumnData::Str { codes, .. } => {
            let distinct: HashSet<u32> = (0..codes.len())
                .filter(|&i| col.is_valid(i))
                .map(|i| codes[i])
                .collect();
            ColumnStats {
                null_count,
                ndv: distinct.len() as u64,
                min: None,
                max: None,
                histogram: None,
                // Dictionary payload share is already amortised into row_width.
                avg_width: col.data.row_width() as f64,
            }
        }
    }
}

fn numeric_stats(vals: Vec<f64>, null_count: u64, width: f64) -> ColumnStats {
    let ndv = {
        let mut s: Vec<u64> = vals.iter().map(|v| v.to_bits()).collect();
        s.sort_unstable();
        s.dedup();
        s.len() as u64
    };
    let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let histogram = Histogram::build(vals, DEFAULT_HISTOGRAM_BUCKETS);
    ColumnStats {
        null_count,
        ndv,
        min: histogram.as_ref().map(|_| min),
        max: histogram.as_ref().map(|_| max),
        histogram,
        avg_width: width,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, TableSchema};
    use crate::types::DataType;

    #[test]
    fn histogram_uniform_data_is_linear() {
        let vals: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let h = Histogram::build(vals, 32).unwrap();
        // P(X < 500) ~ 0.5 on uniform data.
        assert!((h.selectivity_lt(500.0) - 0.5).abs() < 0.05);
        assert!((h.selectivity_lt(250.0) - 0.25).abs() < 0.05);
        assert_eq!(h.selectivity_lt(-1.0), 0.0);
        assert_eq!(h.selectivity_lt(10_000.0), 1.0);
    }

    #[test]
    fn histogram_skewed_data_tracks_mass() {
        // 90% of the mass at 0..10, 10% spread to 1000.
        let mut vals: Vec<f64> = (0..900).map(|i| (i % 10) as f64).collect();
        vals.extend((0..100).map(|i| 10.0 + i as f64 * 9.9));
        let h = Histogram::build(vals, 32).unwrap();
        let s = h.selectivity_lt(10.0);
        assert!(s > 0.8, "skewed mass captured, got {s}");
    }

    #[test]
    fn histogram_range_selectivity() {
        let vals: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let h = Histogram::build(vals, 32).unwrap();
        let s = h.selectivity_range(250.0, 750.0);
        assert!((s - 0.5).abs() < 0.06, "got {s}");
        assert_eq!(h.selectivity_range(10.0, 5.0), 0.0);
    }

    #[test]
    fn empty_histogram_is_none() {
        assert!(Histogram::build(vec![], 32).is_none());
        assert!(Histogram::build(vec![1.0], 0).is_none());
    }

    #[test]
    fn table_stats_counts_and_ndv() {
        use crate::storage::{Column, ColumnData, StrColumnBuilder};
        let schema = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", DataType::Int, false),
                ColumnDef::new("s", DataType::Str, true),
            ],
        );
        let mut sb = StrColumnBuilder::new();
        sb.push("a");
        sb.push("b");
        sb.push("a");
        sb.push_null();
        let t = Table::new(
            schema,
            vec![Column::non_null(ColumnData::Int(vec![1, 2, 2, 3])), sb.finish()],
        );
        let stats = compute_table_stats(&t);
        assert_eq!(stats.row_count, 4);
        let id = stats.column("id").unwrap();
        assert_eq!(id.ndv, 3);
        assert_eq!(id.min, Some(1.0));
        assert_eq!(id.max, Some(3.0));
        let s = stats.column("s").unwrap();
        assert_eq!(s.ndv, 2);
        assert_eq!(s.null_count, 1);
        assert!(s.histogram.is_none());
    }
}
