//! Intermediate result representation flowing between operators.

use crate::schema::ColumnRef;
use crate::storage::Column;

/// A set of named columns of equal length — the unit of data exchanged
/// between executor operators. Columns are qualified so joins of tables
/// with overlapping column names stay unambiguous.
#[derive(Debug, Clone, Default)]
pub struct Batch {
    columns: Vec<(ColumnRef, Column)>,
}

impl Batch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a batch from qualified columns.
    ///
    /// # Panics
    /// Panics if the columns have differing lengths.
    pub fn from_columns(columns: Vec<(ColumnRef, Column)>) -> Self {
        if let Some((_, first)) = columns.first() {
            let n = first.len();
            assert!(
                columns.iter().all(|(_, c)| c.len() == n),
                "batch columns must have equal length"
            );
        }
        Self { columns }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, |(_, c)| c.len())
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Looks up a column by qualified reference.
    pub fn column(&self, re: &ColumnRef) -> Option<&Column> {
        self.columns.iter().find(|(r, _)| r == re).map(|(_, c)| c)
    }

    /// All qualified references, in order.
    pub fn refs(&self) -> impl Iterator<Item = &ColumnRef> {
        self.columns.iter().map(|(r, _)| r)
    }

    /// All `(ref, column)` pairs.
    pub fn entries(&self) -> &[(ColumnRef, Column)] {
        &self.columns
    }

    /// Appends a column.
    ///
    /// # Panics
    /// Panics if the new column's length disagrees with existing columns.
    pub fn push(&mut self, re: ColumnRef, col: Column) {
        if !self.columns.is_empty() {
            assert_eq!(col.len(), self.num_rows(), "pushed column length mismatch");
        }
        self.columns.push((re, col));
    }

    /// Materialises the rows selected by `indices` into a new batch.
    pub fn take(&self, indices: &[usize]) -> Batch {
        Batch {
            columns: self
                .columns
                .iter()
                .map(|(r, c)| (r.clone(), c.take(indices)))
                .collect(),
        }
    }

    /// Keeps only the listed columns (in the given order). Missing
    /// references are skipped.
    pub fn project(&self, refs: &[ColumnRef]) -> Batch {
        Batch {
            columns: refs
                .iter()
                .filter_map(|r| self.column(r).map(|c| (r.clone(), c.clone())))
                .collect(),
        }
    }

    /// Approximate width of one row in bytes.
    pub fn row_width(&self) -> usize {
        self.columns.iter().map(|(_, c)| c.data.row_width()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::ColumnData;

    fn batch() -> Batch {
        Batch::from_columns(vec![
            (ColumnRef::new("t", "id"), Column::non_null(ColumnData::Int(vec![1, 2, 3]))),
            (
                ColumnRef::new("t", "x"),
                Column::non_null(ColumnData::Float(vec![0.1, 0.2, 0.3])),
            ),
        ])
    }

    #[test]
    fn lookup_and_shape() {
        let b = batch();
        assert_eq!(b.num_rows(), 3);
        assert_eq!(b.num_columns(), 2);
        assert!(b.column(&ColumnRef::new("t", "id")).is_some());
        assert!(b.column(&ColumnRef::new("u", "id")).is_none());
    }

    #[test]
    fn take_filters_rows() {
        let b = batch().take(&[2, 0]);
        assert_eq!(b.num_rows(), 2);
        let c = b.column(&ColumnRef::new("t", "id")).unwrap();
        assert_eq!(c.value(0).as_i64(), Some(3));
        assert_eq!(c.value(1).as_i64(), Some(1));
    }

    #[test]
    fn project_reorders_and_drops() {
        let b = batch().project(&[ColumnRef::new("t", "x")]);
        assert_eq!(b.num_columns(), 1);
        assert_eq!(b.refs().next().unwrap().column, "x");
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_batch_rejected() {
        let _ = Batch::from_columns(vec![
            (ColumnRef::new("t", "a"), Column::non_null(ColumnData::Int(vec![1]))),
            (ColumnRef::new("t", "b"), Column::non_null(ColumnData::Int(vec![1, 2]))),
        ]);
    }
}
