//! Scalar values and data types of the engine.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// Logical column type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string (dictionary-encoded in storage).
    Str,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "int"),
            DataType::Float => write!(f, "float"),
            DataType::Str => write!(f, "string"),
        }
    }
}

/// A scalar value, including SQL NULL.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL (of any type).
    Null,
    /// Integer value.
    Int(i64),
    /// Float value.
    Float(f64),
    /// String value.
    Str(String),
}

impl Value {
    /// The data type of the value, if not NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    /// True for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view (ints widen to float); `None` for NULL/strings.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view; `None` otherwise.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view; `None` otherwise.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// SQL comparison semantics: NULL compares as `None` (unknown);
    /// numeric types compare cross-type; strings compare lexicographically.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
    }

    #[test]
    fn cross_numeric_comparison() {
        assert_eq!(Value::Int(2).sql_cmp(&Value::Float(2.5)), Some(Ordering::Less));
        assert_eq!(Value::Float(3.0).sql_cmp(&Value::Int(3)), Some(Ordering::Equal));
    }

    #[test]
    fn string_comparison_is_lexicographic() {
        assert_eq!(
            Value::Str("abc".into()).sql_cmp(&Value::Str("abd".into())),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn strings_do_not_compare_to_numbers() {
        assert_eq!(Value::Str("1".into()).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Str("x".into()).to_string(), "'x'");
        assert_eq!(Value::Null.to_string(), "NULL");
    }
}
