//! The catalog: registered tables plus their statistics.

use crate::stats::{compute_table_stats, TableStats};
use crate::storage::Table;
use std::collections::HashMap;
use std::sync::Arc;

/// Registry of tables available to the engine. Statistics are computed at
/// registration time (the equivalent of `ANALYZE TABLE`).
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: HashMap<String, Arc<Table>>,
    stats: HashMap<String, TableStats>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a table under its schema name, replacing any previous
    /// table of the same name, and analyzes it.
    pub fn register(&mut self, table: Table) {
        let name = table.schema.name.clone();
        let stats = compute_table_stats(&table);
        self.tables.insert(name.clone(), Arc::new(table));
        self.stats.insert(name, stats);
    }

    /// Fetches a table by name.
    pub fn table(&self, name: &str) -> Option<&Arc<Table>> {
        self.tables.get(name)
    }

    /// Fetches statistics by table name.
    pub fn stats(&self, name: &str) -> Option<&TableStats> {
        self.stats.get(name)
    }

    /// Names of all registered tables (unordered).
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Total bytes across all registered tables.
    pub fn total_bytes(&self) -> u64 {
        self.stats.values().map(|s| s.total_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, TableSchema};
    use crate::storage::{Column, ColumnData};
    use crate::types::DataType;

    fn tiny(name: &str) -> Table {
        Table::new(
            TableSchema::new(name, vec![ColumnDef::new("id", DataType::Int, false)]),
            vec![Column::non_null(ColumnData::Int(vec![1, 2, 3]))],
        )
    }

    #[test]
    fn register_computes_stats() {
        let mut c = Catalog::new();
        c.register(tiny("t"));
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats("t").unwrap().row_count, 3);
        assert!(c.table("t").is_some());
        assert!(c.table("u").is_none());
        assert!(c.total_bytes() > 0);
    }

    #[test]
    fn reregister_replaces() {
        let mut c = Catalog::new();
        c.register(tiny("t"));
        let bigger = Table::new(
            TableSchema::new("t", vec![ColumnDef::new("id", DataType::Int, false)]),
            vec![Column::non_null(ColumnData::Int(vec![1, 2, 3, 4, 5]))],
        );
        c.register(bigger);
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats("t").unwrap().row_count, 5);
    }
}
