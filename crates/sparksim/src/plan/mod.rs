//! Query planning: binding, cardinality estimation, logical
//! simplification, physical plans and plan enumeration.

pub mod cardinality;
pub mod physical;
pub mod planner;
pub mod simplify;
pub mod spec;
