//! Histogram-based selectivity and cardinality estimation, in the style of
//! Catalyst's cost-based optimizer. These estimates drive join ordering,
//! broadcast decisions and the GPSJ baseline; the *learned* cost model never
//! sees them as ground truth, which is exactly the paper's setting (Sec. I:
//! rule-based estimates are error-prone).

use crate::catalog::Catalog;
use crate::expr::{CmpOp, Expr};
use crate::plan::spec::{Binding, JoinEdge, QuerySpec};
use crate::stats::{ColumnStats, TableStats};
use crate::types::Value;

/// Fallback selectivity for predicates the estimator cannot analyse.
pub const DEFAULT_SELECTIVITY: f64 = 1.0 / 3.0;
/// Fallback selectivity for LIKE patterns.
pub const LIKE_SELECTIVITY: f64 = 0.05;

/// Estimates the fraction of a table's rows satisfying `expr`.
pub fn estimate_selectivity(expr: &Expr, stats: &TableStats) -> f64 {
    let s = selectivity_inner(expr, stats);
    s.clamp(0.0, 1.0)
}

fn selectivity_inner(expr: &Expr, stats: &TableStats) -> f64 {
    match expr {
        Expr::And(a, b) => selectivity_inner(a, stats) * selectivity_inner(b, stats),
        Expr::Or(a, b) => {
            let (sa, sb) = (selectivity_inner(a, stats), selectivity_inner(b, stats));
            (sa + sb - sa * sb).clamp(0.0, 1.0)
        }
        Expr::Not(e) => 1.0 - selectivity_inner(e, stats),
        Expr::IsNotNull(e) => match column_of(e) {
            Some(c) => match stats.column(&c.column) {
                Some(cs) if stats.row_count > 0 => {
                    1.0 - cs.null_count as f64 / stats.row_count as f64
                }
                _ => 1.0,
            },
            None => 1.0,
        },
        Expr::IsNull(e) => 1.0 - selectivity_inner(&Expr::IsNotNull(e.clone()), stats),
        Expr::Like { .. } => LIKE_SELECTIVITY,
        Expr::Cmp { op, left, right } => cmp_selectivity(*op, left, right, stats),
        Expr::Column(_) | Expr::Literal(_) => DEFAULT_SELECTIVITY,
    }
}

fn column_of(e: &Expr) -> Option<&crate::schema::ColumnRef> {
    match e {
        Expr::Column(c) => Some(c),
        _ => None,
    }
}

fn cmp_selectivity(op: CmpOp, left: &Expr, right: &Expr, stats: &TableStats) -> f64 {
    // Normalise to column-op-literal.
    let (col, op, lit) = match (left, right) {
        (Expr::Column(c), Expr::Literal(v)) => (c, op, v),
        (Expr::Literal(v), Expr::Column(c)) => (c, op.flip(), v),
        // column-op-column within one table, or anything else: fallback.
        _ => return DEFAULT_SELECTIVITY,
    };
    let Some(cs) = stats.column(&col.column) else {
        return DEFAULT_SELECTIVITY;
    };
    let non_null_frac = if stats.row_count > 0 {
        1.0 - cs.null_count as f64 / stats.row_count as f64
    } else {
        1.0
    };
    let sel = match op {
        CmpOp::Eq => eq_selectivity(cs, lit),
        CmpOp::Ne => 1.0 - eq_selectivity(cs, lit),
        CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
            let Some(x) = lit.as_f64() else {
                return DEFAULT_SELECTIVITY;
            };
            match &cs.histogram {
                Some(h) => {
                    let lt = h.selectivity_lt(x);
                    let eq = eq_selectivity(cs, lit);
                    match op {
                        CmpOp::Lt => lt,
                        CmpOp::Le => (lt + eq).min(1.0),
                        CmpOp::Gt => (1.0 - lt - eq).max(0.0),
                        CmpOp::Ge => 1.0 - lt,
                        _ => unreachable!(),
                    }
                }
                None => DEFAULT_SELECTIVITY,
            }
        }
    };
    (sel * non_null_frac).clamp(0.0, 1.0)
}

fn eq_selectivity(cs: &ColumnStats, lit: &Value) -> f64 {
    if cs.ndv == 0 {
        return 0.0;
    }
    // Out-of-range equality matches nothing.
    if let (Some(x), Some(min), Some(max)) = (lit.as_f64(), cs.min, cs.max) {
        if x < min || x > max {
            return 0.0;
        }
    }
    1.0 / cs.ndv as f64
}

/// Estimated output rows of a scan of `binding` after its pushed filter.
pub fn estimate_scan_rows(spec: &QuerySpec, binding: &Binding, catalog: &Catalog) -> f64 {
    // Bindings are validated against the catalog at resolve time, so a
    // missing stats entry cannot happen on a well-formed spec; a zero
    // estimate degrades the plan ranking instead of panicking if one
    // ever arrives.
    let Some(stats) = catalog.stats(&binding.table) else {
        return 0.0;
    };
    let base = stats.row_count as f64;
    match spec.table_filters.get(&binding.name) {
        Some(f) => base * estimate_selectivity(f, stats),
        None => base,
    }
}

/// Estimated rows of an equi-join using the standard containment
/// assumption: `|L ⋈ R| = |L|·|R| / max(ndv(Lk), ndv(Rk))`.
pub fn estimate_join_rows(
    left_rows: f64,
    right_rows: f64,
    edge: &JoinEdge,
    spec: &QuerySpec,
    catalog: &Catalog,
) -> f64 {
    let ndv = |cr: &crate::schema::ColumnRef| -> f64 {
        spec.binding(&cr.table)
            .and_then(|b| catalog.stats(&b.table))
            .and_then(|s| s.column(&cr.column))
            .map(|c| c.ndv.max(1) as f64)
            .unwrap_or(1.0)
    };
    let denom = ndv(&edge.left).max(ndv(&edge.right));
    (left_rows * right_rows / denom).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, ColumnRef, TableSchema};
    use crate::storage::{Column, ColumnData, Table};
    use crate::types::DataType;

    fn uniform_table(n: i64) -> Table {
        Table::new(
            TableSchema::new("t", vec![ColumnDef::new("x", DataType::Int, false)]),
            vec![Column::non_null(ColumnData::Int((0..n).collect()))],
        )
    }

    fn stats(n: i64) -> TableStats {
        crate::stats::compute_table_stats(&uniform_table(n))
    }

    fn colref() -> ColumnRef {
        ColumnRef::new("t", "x")
    }

    #[test]
    fn range_selectivity_on_uniform_data() {
        let s = stats(1000);
        let e = Expr::cmp(colref(), CmpOp::Lt, Value::Int(250));
        let sel = estimate_selectivity(&e, &s);
        assert!((sel - 0.25).abs() < 0.05, "got {sel}");
    }

    #[test]
    fn equality_uses_ndv() {
        let s = stats(1000);
        let e = Expr::cmp(colref(), CmpOp::Eq, Value::Int(5));
        let sel = estimate_selectivity(&e, &s);
        assert!((sel - 0.001).abs() < 1e-4, "got {sel}");
    }

    #[test]
    fn out_of_range_equality_is_zero() {
        let s = stats(1000);
        let e = Expr::cmp(colref(), CmpOp::Eq, Value::Int(50_000));
        assert_eq!(estimate_selectivity(&e, &s), 0.0);
    }

    #[test]
    fn conjunction_multiplies() {
        let s = stats(1000);
        let e = Expr::And(
            Box::new(Expr::cmp(colref(), CmpOp::Lt, Value::Int(500))),
            Box::new(Expr::cmp(colref(), CmpOp::Ge, Value::Int(0))),
        );
        let sel = estimate_selectivity(&e, &s);
        assert!((sel - 0.5).abs() < 0.1, "got {sel}");
    }

    #[test]
    fn disjunction_is_inclusion_exclusion() {
        let s = stats(1000);
        let half = Expr::cmp(colref(), CmpOp::Lt, Value::Int(500));
        let e = Expr::Or(Box::new(half.clone()), Box::new(half));
        let sel = estimate_selectivity(&e, &s);
        // s + s - s*s = 0.75 for s = 0.5
        assert!((sel - 0.75).abs() < 0.1, "got {sel}");
    }

    #[test]
    fn selectivity_is_clamped() {
        let s = stats(10);
        let e = Expr::Not(Box::new(Expr::cmp(colref(), CmpOp::Ne, Value::Int(3))));
        let sel = estimate_selectivity(&e, &s);
        assert!((0.0..=1.0).contains(&sel));
    }
}
