//! Physical query plans.
//!
//! A plan is an arena of nodes built bottom-up, so node indices are a
//! topological order (children precede parents) — exactly the execution
//! order the paper feeds to the LSTM. Every node renders the
//! Spark-`explain`-style *execution statement* that the word2vec encoder
//! tokenizes, and exposes the signed-degree structure rows used by the
//! structure embedding (children = +1, parent = −1).

use crate::expr::Expr;
use crate::plan::spec::AggSpec;
use crate::schema::ColumnRef;
use crate::sql::ast::AggFunc;
use std::fmt::Write as _;

/// Index of a node within a [`PhysicalPlan`].
pub type NodeId = usize;

/// Aggregation mode (Spark splits aggregates around an exchange).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggMode {
    /// Pre-shuffle partial aggregation.
    Partial,
    /// Post-shuffle final aggregation.
    Final,
}

/// Physical operator.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalOp {
    /// Columnar scan of a base table with optional pushed-down filter.
    FileScan {
        /// Query binding (alias) this scan feeds.
        binding: String,
        /// Base table name in the catalog.
        table: String,
        /// Output columns (binding-qualified).
        output: Vec<ColumnRef>,
        /// Filter pushed into the scan, if any.
        pushed_filter: Option<Expr>,
    },
    /// Row filter.
    Filter {
        /// Predicate (rows failing or NULL are dropped).
        predicate: Expr,
    },
    /// Column pruning / reordering.
    Project {
        /// Output columns.
        columns: Vec<ColumnRef>,
    },
    /// Hash-partitioned shuffle.
    ExchangeHash {
        /// Partitioning keys.
        keys: Vec<ColumnRef>,
        /// Number of shuffle partitions.
        partitions: usize,
    },
    /// Shuffle of everything to a single partition.
    ExchangeSingle,
    /// Broadcast of the build side to every executor.
    BroadcastExchange,
    /// Sort by keys (bool = ascending).
    Sort {
        /// Sort keys with ascending flags.
        keys: Vec<(ColumnRef, bool)>,
    },
    /// Sort-merge join (children: `[left, right]`, both sorted).
    SortMergeJoin {
        /// Left key.
        left_key: ColumnRef,
        /// Right key.
        right_key: ColumnRef,
    },
    /// Broadcast-hash join (children: `[probe, broadcast build]`).
    BroadcastHashJoin {
        /// Probe-side key.
        probe_key: ColumnRef,
        /// Build-side key.
        build_key: ColumnRef,
    },
    /// Shuffled hash join (children: `[left, right]`, both exchanged).
    ShuffledHashJoin {
        /// Left key.
        left_key: ColumnRef,
        /// Right key (build side).
        right_key: ColumnRef,
    },
    /// Hash aggregation.
    HashAggregate {
        /// Partial (map-side) or final (reduce-side).
        mode: AggMode,
        /// Grouping keys.
        group_by: Vec<ColumnRef>,
        /// Aggregates.
        aggs: Vec<AggSpec>,
    },
    /// Row-count limit.
    Limit {
        /// Maximum rows.
        n: usize,
    },
}

impl PhysicalOp {
    /// Short operator name, matching Spark SQL's operator vocabulary
    /// (Table II of the paper).
    pub fn name(&self) -> &'static str {
        match self {
            PhysicalOp::FileScan { .. } => "FileScan",
            PhysicalOp::Filter { .. } => "Filter",
            PhysicalOp::Project { .. } => "Project",
            PhysicalOp::ExchangeHash { .. } => "ExchangeHashPartition",
            PhysicalOp::ExchangeSingle => "ExchangeSinglePartition",
            PhysicalOp::BroadcastExchange => "BroadcastExchange",
            PhysicalOp::Sort { .. } => "Sort",
            PhysicalOp::SortMergeJoin { .. } => "SortMergeJoin",
            PhysicalOp::BroadcastHashJoin { .. } => "BroadcastHashJoin",
            PhysicalOp::ShuffledHashJoin { .. } => "ShuffledHashJoin",
            PhysicalOp::HashAggregate { .. } => "HashAggregate",
            PhysicalOp::Limit { .. } => "CollectLimit",
        }
    }

    /// True for the three join operators.
    pub fn is_join(&self) -> bool {
        matches!(
            self,
            PhysicalOp::SortMergeJoin { .. }
                | PhysicalOp::BroadcastHashJoin { .. }
                | PhysicalOp::ShuffledHashJoin { .. }
        )
    }

    /// True for exchanges (stage boundaries).
    pub fn is_exchange(&self) -> bool {
        matches!(
            self,
            PhysicalOp::ExchangeHash { .. }
                | PhysicalOp::ExchangeSingle
                | PhysicalOp::BroadcastExchange
        )
    }
}

/// One node of a physical plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalNode {
    /// Operator.
    pub op: PhysicalOp,
    /// Child node ids (all smaller than this node's id).
    pub children: Vec<NodeId>,
    /// Optimizer-estimated output rows.
    pub est_rows: f64,
    /// Optimizer-estimated output bytes.
    pub est_bytes: f64,
}

/// A physical plan: an arena in bottom-up (topological) order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PhysicalPlan {
    nodes: Vec<PhysicalNode>,
}

impl PhysicalPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a node; children must already exist (bottom-up build).
    ///
    /// # Panics
    /// Panics if any child id is out of range.
    pub fn add(
        &mut self,
        op: PhysicalOp,
        children: Vec<NodeId>,
        est_rows: f64,
        est_bytes: f64,
    ) -> NodeId {
        let id = self.nodes.len();
        assert!(children.iter().all(|&c| c < id), "plan must be built bottom-up");
        self.nodes.push(PhysicalNode { op, children, est_rows, est_bytes });
        id
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the plan has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Root node id (the last node added).
    ///
    /// # Panics
    /// Panics on an empty plan.
    pub fn root(&self) -> NodeId {
        assert!(!self.nodes.is_empty(), "empty plan has no root");
        self.nodes.len() - 1
    }

    /// Node accessor.
    pub fn node(&self, id: NodeId) -> &PhysicalNode {
        &self.nodes[id]
    }

    /// All nodes in topological (execution) order.
    pub fn nodes(&self) -> &[PhysicalNode] {
        &self.nodes
    }

    /// Parent of each node (`None` for the root).
    pub fn parents(&self) -> Vec<Option<NodeId>> {
        let mut parents = vec![None; self.nodes.len()];
        for (id, node) in self.nodes.iter().enumerate() {
            for &c in &node.children {
                parents[c] = Some(id);
            }
        }
        parents
    }

    /// The signed structure row of a node for the paper's structure
    /// embedding: children are +1, the parent is −1, everything else 0.
    pub fn structure_row(&self, id: NodeId, parents: &[Option<NodeId>]) -> Vec<f32> {
        let mut row = vec![0.0f32; self.nodes.len()];
        for &c in &self.nodes[id].children {
            row[c] = 1.0;
        }
        if let Some(p) = parents[id] {
            row[p] = -1.0;
        }
        row
    }

    /// The Spark-`explain`-style execution statement of a node.
    pub fn statement(&self, id: NodeId) -> String {
        let node = &self.nodes[id];
        match &node.op {
            PhysicalOp::FileScan { table, output, pushed_filter, .. } => {
                let cols: Vec<String> = output.iter().map(|c| c.column.clone()).collect();
                let mut s = format!("FileScan {table}[{}]", cols.join(","));
                if let Some(f) = pushed_filter {
                    let parts: Vec<String> =
                        f.split_conjunction().iter().map(|p| p.to_string()).collect();
                    let _ = write!(s, " PushedFilters: [{}]", parts.join(", "));
                }
                s
            }
            PhysicalOp::Filter { predicate } => format!("Filter {predicate}"),
            PhysicalOp::Project { columns } => {
                let cols: Vec<String> = columns.iter().map(ToString::to_string).collect();
                format!("Project [{}]", cols.join(", "))
            }
            PhysicalOp::ExchangeHash { keys, partitions } => {
                let cols: Vec<String> = keys.iter().map(ToString::to_string).collect();
                format!("Exchange hashpartitioning({}, {partitions})", cols.join(", "))
            }
            PhysicalOp::ExchangeSingle => "Exchange SinglePartition".to_string(),
            PhysicalOp::BroadcastExchange => {
                "BroadcastExchange HashedRelationBroadcastMode".to_string()
            }
            PhysicalOp::Sort { keys } => {
                let cols: Vec<String> = keys
                    .iter()
                    .map(|(c, asc)| format!("{c} {}", if *asc { "ASC" } else { "DESC" }))
                    .collect();
                format!("Sort [{}]", cols.join(", "))
            }
            PhysicalOp::SortMergeJoin { left_key, right_key } => {
                format!("SortMergeJoin [{left_key}], [{right_key}], Inner")
            }
            PhysicalOp::BroadcastHashJoin { probe_key, build_key } => {
                format!("BroadcastHashJoin [{probe_key}], [{build_key}], Inner, BuildRight")
            }
            PhysicalOp::ShuffledHashJoin { left_key, right_key } => {
                format!("ShuffledHashJoin [{left_key}], [{right_key}], Inner, BuildRight")
            }
            PhysicalOp::HashAggregate { mode, group_by, aggs } => {
                let keys: Vec<String> = group_by.iter().map(ToString::to_string).collect();
                let fns: Vec<String> = aggs
                    .iter()
                    .map(|a| {
                        let prefix = match mode {
                            AggMode::Partial => "partial_",
                            AggMode::Final => "",
                        };
                        match (&a.func, &a.arg) {
                            (AggFunc::Count, None) => format!("{prefix}count(1)"),
                            (f, Some(c)) => format!("{prefix}{f}({c})"),
                            (f, None) => format!("{prefix}{f}(1)"),
                        }
                    })
                    .collect();
                format!("HashAggregate(keys=[{}], functions=[{}])", keys.join(", "), fns.join(", "))
            }
            PhysicalOp::Limit { n } => format!("CollectLimit {n}"),
        }
    }

    /// Multi-line, indented `EXPLAIN`-style rendering, root first.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_rec(self.root(), 0, &mut out);
        out
    }

    fn explain_rec(&self, id: NodeId, depth: usize, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        let _ = writeln!(out, "{}", self.statement(id));
        for &c in &self.nodes[id].children {
            self.explain_rec(c, depth + 1, out);
        }
    }

    /// A canonical fingerprint for plan deduplication.
    pub fn fingerprint(&self) -> String {
        let mut s = String::new();
        for (i, n) in self.nodes.iter().enumerate() {
            let _ = write!(s, "{i}:{}{:?};", self.statement(i), n.children);
        }
        s
    }

    /// Ids of join nodes, in execution order.
    pub fn join_nodes(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].op.is_join())
            .collect()
    }

    /// Total estimated bytes scanned from base tables.
    pub fn scan_bytes(&self) -> f64 {
        self.nodes
            .iter()
            .filter(|n| matches!(n.op, PhysicalOp::FileScan { .. }))
            .map(|n| n.est_bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use crate::types::Value;

    fn two_node_plan() -> PhysicalPlan {
        let mut p = PhysicalPlan::new();
        let scan = p.add(
            PhysicalOp::FileScan {
                binding: "t".into(),
                table: "title".into(),
                output: vec![ColumnRef::new("t", "id")],
                pushed_filter: Some(Expr::cmp(ColumnRef::new("t", "id"), CmpOp::Lt, Value::Int(7))),
            },
            vec![],
            100.0,
            800.0,
        );
        p.add(
            PhysicalOp::HashAggregate {
                mode: AggMode::Partial,
                group_by: vec![],
                aggs: vec![AggSpec { func: AggFunc::Count, arg: None }],
            },
            vec![scan],
            1.0,
            8.0,
        );
        p
    }

    #[test]
    fn bottom_up_invariant_enforced() {
        let p = two_node_plan();
        assert_eq!(p.root(), 1);
        assert_eq!(p.node(1).children, vec![0]);
    }

    #[test]
    #[should_panic(expected = "bottom-up")]
    fn forward_reference_rejected() {
        let mut p = PhysicalPlan::new();
        p.add(PhysicalOp::ExchangeSingle, vec![3], 0.0, 0.0);
    }

    #[test]
    fn statements_render_spark_style() {
        let p = two_node_plan();
        assert_eq!(p.statement(0), "FileScan title[id] PushedFilters: [(t.id < 7)]");
        assert_eq!(p.statement(1), "HashAggregate(keys=[], functions=[partial_count(1)])");
    }

    #[test]
    fn structure_rows_are_signed_degrees() {
        let p = two_node_plan();
        let parents = p.parents();
        assert_eq!(p.structure_row(0, &parents), vec![0.0, -1.0]);
        assert_eq!(p.structure_row(1, &parents), vec![1.0, 0.0]);
    }

    #[test]
    fn explain_is_root_first() {
        let p = two_node_plan();
        let text = p.explain();
        let first = text.lines().next().unwrap();
        assert!(first.starts_with("HashAggregate"));
        assert!(text.lines().nth(1).unwrap().trim_start().starts_with("FileScan"));
    }

    #[test]
    fn fingerprints_distinguish_plans() {
        let a = two_node_plan();
        let mut b = two_node_plan();
        b.add(PhysicalOp::ExchangeSingle, vec![1], 1.0, 8.0);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
