//! Physical plan enumeration.
//!
//! Mirrors Catalyst's behaviour as described in the paper (Sec. II-A /
//! Sec. III): the optimized logical plan develops *multiple* physical
//! plans — differing in join order, join strategy (sort-merge vs.
//! broadcast-hash vs. shuffled-hash) and filter placement — from which a
//! cost model must pick one. `Planner::enumerate` returns the candidate
//! set; the deep cost model ranks it.

use crate::catalog::Catalog;
use crate::expr::{CmpOp, Expr};
use crate::plan::cardinality::{estimate_join_rows, estimate_scan_rows, DEFAULT_SELECTIVITY};
use crate::plan::physical::{AggMode, NodeId, PhysicalOp, PhysicalPlan};
use crate::plan::spec::QuerySpec;
use crate::schema::ColumnRef;
use std::collections::HashSet;

/// Join strategy choice for one join.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinStrategy {
    /// Shuffle both sides, sort, merge.
    SortMerge,
    /// Broadcast the build side to all executors.
    BroadcastHash,
    /// Shuffle both sides, hash the build side.
    ShuffledHash,
}

/// Planner tunables (the Spark-configuration analogues).
#[derive(Debug, Clone)]
pub struct PlannerOptions {
    /// `spark.sql.shuffle.partitions`.
    pub shuffle_partitions: usize,
    /// `spark.sql.autoBroadcastJoinThreshold`, in (simulated) bytes.
    pub broadcast_threshold_bytes: f64,
    /// Maximum number of candidate plans to return per query.
    pub max_plans: usize,
}

impl Default for PlannerOptions {
    fn default() -> Self {
        Self {
            shuffle_partitions: 32,
            broadcast_threshold_bytes: 10.0 * 1024.0 * 1024.0,
            max_plans: 5,
        }
    }
}

impl PlannerOptions {
    /// Options whose broadcast threshold is expressed at the *deployed*
    /// data scale: when the catalog holds a `data_scale`-times scaled-down
    /// copy of the dataset, Catalyst's 10 MB threshold must shrink by the
    /// same factor to make equivalent decisions.
    pub fn scaled_to(data_scale: f64) -> Self {
        let default = Self::default();
        Self {
            broadcast_threshold_bytes: default.broadcast_threshold_bytes / data_scale.max(1.0),
            ..default
        }
    }
}

/// Enumerates candidate physical plans for resolved queries.
#[derive(Debug)]
pub struct Planner<'a> {
    catalog: &'a Catalog,
    opts: PlannerOptions,
}

impl<'a> Planner<'a> {
    /// Creates a planner over a catalog.
    pub fn new(catalog: &'a Catalog, opts: PlannerOptions) -> Self {
        Self { catalog, opts }
    }

    /// Catalyst analogue: the single plan the rule-based default would pick
    /// (first join order, threshold-driven strategies).
    pub fn default_plan(&self, spec: &QuerySpec) -> PhysicalPlan {
        // Single-table building is total, so a spec whose join graph
        // turns out disconnected still gets a (degenerate) plan instead
        // of panicking the serving path.
        self.enumerate(spec)
            .into_iter()
            .next()
            .unwrap_or_else(|| self.build_single_table(spec, true))
    }

    /// Enumerates up to `max_plans` distinct physical plans, default first.
    pub fn enumerate(&self, spec: &QuerySpec) -> Vec<PhysicalPlan> {
        let mut plans = Vec::new();
        let mut seen = HashSet::new();
        let mut push = |plan: PhysicalPlan, plans: &mut Vec<PhysicalPlan>| {
            if plans.len() < self.opts.max_plans && seen.insert(plan.fingerprint()) {
                plans.push(plan);
            }
        };

        if spec.bindings.len() == 1 {
            // Single-table: the two Catalyst variants differ in where the
            // filter conditions sit (pushed into the scan vs. a separate
            // Filter), as observed in the paper's Sec. III.
            push(self.build_single_table(spec, true), &mut plans);
            push(self.build_single_table(spec, false), &mut plans);
            return plans;
        }

        // Plan 0 — the Catalyst rule-based default: syntactic FROM order
        // and size-based join strategies computed from *unfiltered* table
        // sizes (Spark decides broadcasts from file sizes, not filtered
        // cardinalities, without CBO). This is the plan the paper's
        // "default cost model" runs and the learned model must beat.
        if let Some(syntactic) = self.syntactic_order(spec) {
            let strats = self.rule_based_strategies(spec, &syntactic);
            if let Some(plan) = self.build_join_plan(spec, &syntactic, &strats) {
                push(plan, &mut plans);
            }
        }

        let orders = self.join_orders(spec);
        let num_joins = spec.num_joins();
        for (oi, order) in orders.iter().enumerate() {
            let default_strats = self.default_strategies(spec, order);
            if let Some(plan) = self.build_join_plan(spec, order, &default_strats) {
                push(plan, &mut plans);
            }
            // Strategy variants: flip each join's strategy, first joins first;
            // for the primary order also try the all-flipped combination.
            for j in 0..num_joins {
                let mut variant = default_strats.clone();
                variant[j] = flip(variant[j]);
                if let Some(plan) = self.build_join_plan(spec, order, &variant) {
                    push(plan, &mut plans);
                }
            }
            if oi == 0 && num_joins >= 2 {
                let flipped: Vec<_> = default_strats.iter().map(|&s| flip(s)).collect();
                if let Some(plan) = self.build_join_plan(spec, order, &flipped) {
                    push(plan, &mut plans);
                }
            }
        }
        plans
    }

    /// The syntactic (FROM-clause) join order, when each step connects to
    /// the tables joined so far; `None` otherwise.
    fn syntactic_order(&self, spec: &QuerySpec) -> Option<Vec<usize>> {
        let n = spec.bindings.len();
        for step in 1..n {
            let name = &spec.bindings[step].name;
            let connected = spec
                .join_edges
                .iter()
                .any(|e| spec.bindings[..step].iter().any(|b| e.connects(&b.name, name)));
            if !connected {
                return None;
            }
        }
        Some((0..n).collect())
    }

    /// Size-based strategies from unfiltered table bytes (rule-based
    /// Catalyst: no selectivity information).
    fn rule_based_strategies(&self, spec: &QuerySpec, order: &[usize]) -> Vec<JoinStrategy> {
        order[1..]
            .iter()
            .map(|&bi| {
                let b = &spec.bindings[bi];
                let bytes = self
                    .catalog
                    .stats(&b.table)
                    .map(|s| s.total_bytes as f64)
                    .unwrap_or(f64::INFINITY);
                if bytes <= self.opts.broadcast_threshold_bytes {
                    JoinStrategy::BroadcastHash
                } else {
                    JoinStrategy::SortMerge
                }
            })
            .collect()
    }

    /// Greedy join orders: start from the smallest (and second-smallest)
    /// filtered binding, then repeatedly attach the connected binding that
    /// minimises the estimated intermediate result.
    fn join_orders(&self, spec: &QuerySpec) -> Vec<Vec<usize>> {
        let n = spec.bindings.len();
        let rows: Vec<f64> = spec
            .bindings
            .iter()
            .map(|b| estimate_scan_rows(spec, b, self.catalog))
            .collect();
        let mut starts: Vec<usize> = (0..n).collect();
        starts.sort_by(|&a, &b| rows[a].total_cmp(&rows[b]));
        starts.truncate(2);

        let mut orders = Vec::new();
        for &start in &starts {
            let mut order = vec![start];
            let mut current_rows = rows[start];
            let mut included: HashSet<&str> = HashSet::new();
            included.insert(&spec.bindings[start].name);
            while order.len() < n {
                let mut best: Option<(usize, f64)> = None;
                for (cand, cand_rows) in rows.iter().enumerate() {
                    if order.contains(&cand) {
                        continue;
                    }
                    let cand_name = &spec.bindings[cand].name;
                    let edge = spec
                        .join_edges
                        .iter()
                        .find(|e| included.iter().any(|inc| e.connects(inc, cand_name)));
                    let Some(edge) = edge else { continue };
                    let est =
                        estimate_join_rows(current_rows, *cand_rows, edge, spec, self.catalog);
                    if best.is_none_or(|(_, b)| est < b) {
                        best = Some((cand, est));
                    }
                }
                // A disconnected join graph (cross join the resolver
                // does not model) ends the greedy walk; the incomplete
                // order is dropped below.
                let Some((next, est)) = best else { break };
                current_rows = est;
                included.insert(&spec.bindings[next].name);
                order.push(next);
            }
            if order.len() == n && !orders.contains(&order) {
                orders.push(order);
            }
        }
        orders
    }

    /// Threshold-driven default strategy per join in an order.
    fn default_strategies(&self, spec: &QuerySpec, order: &[usize]) -> Vec<JoinStrategy> {
        let mut strategies = Vec::with_capacity(order.len() - 1);
        for &bi in &order[1..] {
            let b = &spec.bindings[bi];
            let rows = estimate_scan_rows(spec, b, self.catalog);
            let bytes = rows * self.binding_row_width(spec, &b.name);
            strategies.push(if bytes <= self.opts.broadcast_threshold_bytes {
                JoinStrategy::BroadcastHash
            } else {
                JoinStrategy::SortMerge
            });
        }
        strategies
    }

    fn binding_row_width(&self, spec: &QuerySpec, binding: &str) -> f64 {
        // An unknown binding or a table without stats estimates at the
        // 8-byte floor rather than panicking mid-planning.
        let Some(b) = spec.binding(binding) else {
            return 8.0;
        };
        let Some(stats) = self.catalog.stats(&b.table) else {
            return 8.0;
        };
        spec.required_columns(binding)
            .iter()
            .filter_map(|c| stats.column(&c.column))
            .map(|cs| cs.avg_width)
            .sum::<f64>()
            .max(8.0)
    }

    fn scan_node(
        &self,
        plan: &mut PhysicalPlan,
        spec: &QuerySpec,
        binding_idx: usize,
        push_filter: bool,
    ) -> (NodeId, f64) {
        let b = &spec.bindings[binding_idx];
        let width = self.binding_row_width(spec, &b.name);
        let base_rows = self
            .catalog
            .stats(&b.table)
            .map(|s| s.row_count as f64)
            .unwrap_or(0.0);
        let est_rows = estimate_scan_rows(spec, b, self.catalog);
        let output = spec.required_columns(&b.name);
        // Catalyst's logical optimizer simplifies predicates before
        // physical planning (constant folding, NOT pushing, ...).
        let filter = spec.table_filters.get(&b.name).map(crate::plan::simplify::simplify);
        match filter {
            Some(predicate) if !push_filter => {
                let scan = plan.add(
                    PhysicalOp::FileScan {
                        binding: b.name.clone(),
                        table: b.table.clone(),
                        output,
                        pushed_filter: None,
                    },
                    vec![],
                    base_rows,
                    base_rows * width,
                );
                let id = plan.add(
                    PhysicalOp::Filter { predicate },
                    vec![scan],
                    est_rows,
                    est_rows * width,
                );
                (id, est_rows)
            }
            filter => {
                let id = plan.add(
                    PhysicalOp::FileScan {
                        binding: b.name.clone(),
                        table: b.table.clone(),
                        output,
                        pushed_filter: filter,
                    },
                    vec![],
                    est_rows,
                    est_rows * width,
                );
                (id, est_rows)
            }
        }
    }

    fn build_single_table(&self, spec: &QuerySpec, push_filter: bool) -> PhysicalPlan {
        let mut plan = PhysicalPlan::new();
        let (node, rows) = self.scan_node(&mut plan, spec, 0, push_filter);
        let width = self.binding_row_width(spec, &spec.bindings[0].name);
        self.finish_plan(&mut plan, spec, node, rows, width);
        plan
    }

    /// `None` when `order` skips a join edge the spec never provided —
    /// i.e. the join graph is disconnected under this order.
    fn build_join_plan(
        &self,
        spec: &QuerySpec,
        order: &[usize],
        strategies: &[JoinStrategy],
    ) -> Option<PhysicalPlan> {
        let mut plan = PhysicalPlan::new();
        let (mut current, mut current_rows) = self.scan_node(&mut plan, spec, order[0], true);
        let mut included: Vec<&str> = vec![&spec.bindings[order[0]].name];
        let mut applied_edges: HashSet<usize> = HashSet::new();
        let mut applied_residuals: HashSet<usize> = HashSet::new();
        let mut width = self.binding_row_width(spec, &spec.bindings[order[0]].name);

        for (step, &bi) in order[1..].iter().enumerate() {
            let b = &spec.bindings[bi];
            // Pick the connecting edge (first by spec order).
            let (edge_idx, edge) = spec.join_edges.iter().enumerate().find(|(i, e)| {
                !applied_edges.contains(i) && included.iter().any(|inc| e.connects(inc, &b.name))
            })?;
            applied_edges.insert(edge_idx);
            let (left_key, right_key) = if included.contains(&edge.left.table.as_str()) {
                (edge.left.clone(), edge.right.clone())
            } else {
                (edge.right.clone(), edge.left.clone())
            };

            let (right, right_rows) = self.scan_node(&mut plan, spec, bi, true);
            let right_width = self.binding_row_width(spec, &b.name);
            let out_rows = estimate_join_rows(current_rows, right_rows, edge, spec, self.catalog);
            width += right_width;
            let out_bytes = out_rows * width;

            current = match strategies[step] {
                JoinStrategy::SortMerge => {
                    let lex = plan.add(
                        PhysicalOp::ExchangeHash {
                            keys: vec![left_key.clone()],
                            partitions: self.opts.shuffle_partitions,
                        },
                        vec![current],
                        current_rows,
                        current_rows * (width - right_width),
                    );
                    let lsort = plan.add(
                        PhysicalOp::Sort { keys: vec![(left_key.clone(), true)] },
                        vec![lex],
                        current_rows,
                        current_rows * (width - right_width),
                    );
                    let rex = plan.add(
                        PhysicalOp::ExchangeHash {
                            keys: vec![right_key.clone()],
                            partitions: self.opts.shuffle_partitions,
                        },
                        vec![right],
                        right_rows,
                        right_rows * right_width,
                    );
                    let rsort = plan.add(
                        PhysicalOp::Sort { keys: vec![(right_key.clone(), true)] },
                        vec![rex],
                        right_rows,
                        right_rows * right_width,
                    );
                    plan.add(
                        PhysicalOp::SortMergeJoin { left_key, right_key },
                        vec![lsort, rsort],
                        out_rows,
                        out_bytes,
                    )
                }
                JoinStrategy::BroadcastHash => {
                    let bex = plan.add(
                        PhysicalOp::BroadcastExchange,
                        vec![right],
                        right_rows,
                        right_rows * right_width,
                    );
                    plan.add(
                        PhysicalOp::BroadcastHashJoin { probe_key: left_key, build_key: right_key },
                        vec![current, bex],
                        out_rows,
                        out_bytes,
                    )
                }
                JoinStrategy::ShuffledHash => {
                    let lex = plan.add(
                        PhysicalOp::ExchangeHash {
                            keys: vec![left_key.clone()],
                            partitions: self.opts.shuffle_partitions,
                        },
                        vec![current],
                        current_rows,
                        current_rows * (width - right_width),
                    );
                    let rex = plan.add(
                        PhysicalOp::ExchangeHash {
                            keys: vec![right_key.clone()],
                            partitions: self.opts.shuffle_partitions,
                        },
                        vec![right],
                        right_rows,
                        right_rows * right_width,
                    );
                    plan.add(
                        PhysicalOp::ShuffledHashJoin { left_key, right_key },
                        vec![lex, rex],
                        out_rows,
                        out_bytes,
                    )
                }
            };
            current_rows = out_rows;
            included.push(&b.name);

            // Extra (cycle-closing) edges between already-included bindings
            // become filters.
            for (i, e) in spec.join_edges.iter().enumerate() {
                if applied_edges.contains(&i) {
                    continue;
                }
                if included.contains(&e.left.table.as_str())
                    && included.contains(&e.right.table.as_str())
                {
                    applied_edges.insert(i);
                    current_rows *= DEFAULT_SELECTIVITY;
                    current = plan.add(
                        PhysicalOp::Filter {
                            predicate: Expr::Cmp {
                                op: CmpOp::Eq,
                                left: Box::new(Expr::Column(e.left.clone())),
                                right: Box::new(Expr::Column(e.right.clone())),
                            },
                        },
                        vec![current],
                        current_rows,
                        current_rows * width,
                    );
                }
            }
            // Residuals whose bindings are all now included.
            for (i, r) in spec.residual.iter().enumerate() {
                if applied_residuals.contains(&i) {
                    continue;
                }
                let ready = r
                    .referenced_columns()
                    .iter()
                    .all(|c| included.contains(&c.table.as_str()));
                if ready {
                    applied_residuals.insert(i);
                    current_rows *= DEFAULT_SELECTIVITY;
                    current = plan.add(
                        PhysicalOp::Filter { predicate: r.clone() },
                        vec![current],
                        current_rows,
                        current_rows * width,
                    );
                }
            }
        }
        self.finish_plan(&mut plan, spec, current, current_rows, width);
        Some(plan)
    }

    /// Adds aggregation / projection / ordering / limit above `node`.
    fn finish_plan(
        &self,
        plan: &mut PhysicalPlan,
        spec: &QuerySpec,
        node: NodeId,
        rows: f64,
        width: f64,
    ) {
        let mut current = node;
        let mut current_rows = rows;
        if spec.has_aggregates() || !spec.group_by.is_empty() {
            let groups_est = if spec.group_by.is_empty() {
                1.0
            } else {
                // NDV of the first group column bounds the group count.
                spec.group_by
                    .first()
                    .and_then(|c| spec.binding(&c.table))
                    .and_then(|b| self.catalog.stats(&b.table))
                    .and_then(|s| s.column(&spec.group_by[0].column))
                    .map(|cs| cs.ndv as f64)
                    .unwrap_or(current_rows.sqrt().max(1.0))
                    .min(current_rows.max(1.0))
            };
            let out_width = (spec.group_by.len() + spec.aggregates.len()) as f64 * 8.0;
            let partial = plan.add(
                PhysicalOp::HashAggregate {
                    mode: AggMode::Partial,
                    group_by: spec.group_by.clone(),
                    aggs: spec.aggregates.clone(),
                },
                vec![current],
                groups_est * (self.opts.shuffle_partitions as f64).sqrt(),
                groups_est * out_width,
            );
            let exchange = if spec.group_by.is_empty() {
                plan.add(
                    PhysicalOp::ExchangeSingle,
                    vec![partial],
                    groups_est,
                    groups_est * out_width,
                )
            } else {
                plan.add(
                    PhysicalOp::ExchangeHash {
                        keys: spec.group_by.clone(),
                        partitions: self.opts.shuffle_partitions,
                    },
                    vec![partial],
                    groups_est,
                    groups_est * out_width,
                )
            };
            current = plan.add(
                PhysicalOp::HashAggregate {
                    mode: AggMode::Final,
                    group_by: spec.group_by.clone(),
                    aggs: spec.aggregates.clone(),
                },
                vec![exchange],
                groups_est,
                groups_est * out_width,
            );
            current_rows = groups_est;
        } else {
            // Plain select: prune to the requested columns.
            let columns: Vec<ColumnRef> = if spec.wildcard {
                spec.bindings
                    .iter()
                    .filter_map(|b| self.catalog.table(&b.table).map(|t| (b, t)))
                    .flat_map(|(b, table)| {
                        table
                            .schema
                            .columns
                            .iter()
                            .map(|c| ColumnRef::new(b.name.clone(), c.name.clone()))
                            .collect::<Vec<_>>()
                    })
                    .collect()
            } else {
                spec.select_columns.clone()
            };
            if !columns.is_empty() {
                current = plan.add(
                    PhysicalOp::Project { columns },
                    vec![current],
                    current_rows,
                    current_rows * width,
                );
            }
        }
        if !spec.order_by.is_empty() {
            let single = plan.add(
                PhysicalOp::ExchangeSingle,
                vec![current],
                current_rows,
                current_rows * width,
            );
            current = plan.add(
                PhysicalOp::Sort { keys: spec.order_by.clone() },
                vec![single],
                current_rows,
                current_rows * width,
            );
        }
        if let Some(n) = spec.limit {
            let out = current_rows.min(n as f64);
            plan.add(PhysicalOp::Limit { n }, vec![current], out, out * width);
        }
    }
}

fn flip(s: JoinStrategy) -> JoinStrategy {
    match s {
        JoinStrategy::SortMerge => JoinStrategy::BroadcastHash,
        JoinStrategy::BroadcastHash => JoinStrategy::SortMerge,
        JoinStrategy::ShuffledHash => JoinStrategy::SortMerge,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::spec::resolve;
    use crate::schema::{ColumnDef, TableSchema};
    use crate::sql::parser::parse;
    use crate::storage::{Column, ColumnData, Table};
    use crate::types::DataType;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let n_big = 10_000i64;
        c.register(Table::new(
            TableSchema::new(
                "title",
                vec![
                    ColumnDef::new("id", DataType::Int, false),
                    ColumnDef::new("kind_id", DataType::Int, false),
                ],
            ),
            vec![
                Column::non_null(ColumnData::Int((0..n_big).collect())),
                Column::non_null(ColumnData::Int((0..n_big).map(|i| i % 7).collect())),
            ],
        ));
        c.register(Table::new(
            TableSchema::new(
                "movie_companies",
                vec![
                    ColumnDef::new("movie_id", DataType::Int, false),
                    ColumnDef::new("company_id", DataType::Int, false),
                ],
            ),
            vec![
                Column::non_null(ColumnData::Int((0..n_big * 2).map(|i| i % n_big).collect())),
                Column::non_null(ColumnData::Int((0..n_big * 2).map(|i| i % 500).collect())),
            ],
        ));
        c.register(Table::new(
            TableSchema::new(
                "movie_keyword",
                vec![
                    ColumnDef::new("movie_id", DataType::Int, false),
                    ColumnDef::new("keyword_id", DataType::Int, false),
                ],
            ),
            vec![
                Column::non_null(ColumnData::Int((0..500i64).map(|i| i % 300).collect())),
                Column::non_null(ColumnData::Int((0..500i64).map(|i| i % 100).collect())),
            ],
        ));
        c
    }

    fn plans_for(sql: &str) -> Vec<PhysicalPlan> {
        let cat = catalog();
        let q = parse(sql).unwrap();
        let spec = resolve(&q, &cat).unwrap();
        Planner::new(&cat, PlannerOptions::default()).enumerate(&spec)
    }

    #[test]
    fn single_table_gets_two_plans() {
        let plans = plans_for("SELECT COUNT(*) FROM title t WHERE t.kind_id < 3");
        assert_eq!(plans.len(), 2);
        // First plan pushes the filter, the second has an explicit Filter.
        assert!(plans[0].explain().contains("PushedFilters"));
        assert!(plans[1].explain().contains("Filter "));
    }

    #[test]
    fn join_plans_are_distinct_and_bounded() {
        let plans = plans_for(
            "SELECT COUNT(*) FROM title t, movie_companies mc \
             WHERE t.id = mc.movie_id AND mc.company_id < 50",
        );
        assert!(plans.len() >= 2, "got {}", plans.len());
        assert!(plans.len() <= PlannerOptions::default().max_plans);
        let mut fps: Vec<String> = plans.iter().map(|p| p.fingerprint()).collect();
        fps.sort();
        fps.dedup();
        assert_eq!(fps.len(), plans.len(), "plans must be distinct");
    }

    #[test]
    fn small_table_defaults_to_broadcast() {
        let plans =
            plans_for("SELECT COUNT(*) FROM title t, movie_keyword mk WHERE t.id = mk.movie_id");
        // movie_keyword is tiny -> default plan broadcasts it.
        assert!(
            plans[0].explain().contains("BroadcastHashJoin"),
            "default plan:\n{}",
            plans[0].explain()
        );
        // And some variant uses sort-merge.
        assert!(plans.iter().any(|p| p.explain().contains("SortMergeJoin")));
    }

    #[test]
    fn aggregate_splits_into_partial_and_final() {
        let plans = plans_for("SELECT COUNT(*) FROM title t WHERE t.kind_id < 3");
        let text = plans[0].explain();
        assert!(text.contains("partial_count(1)"));
        assert!(text.contains("functions=[count(1)]"));
        assert!(text.contains("Exchange SinglePartition"));
    }

    #[test]
    fn three_table_join_has_two_joins() {
        let plans = plans_for(
            "SELECT COUNT(*) FROM title t, movie_companies mc, movie_keyword mk \
             WHERE t.id = mc.movie_id AND t.id = mk.movie_id AND mk.keyword_id < 20",
        );
        for p in &plans {
            assert_eq!(p.join_nodes().len(), 2, "plan:\n{}", p.explain());
        }
    }

    #[test]
    fn group_by_uses_hash_exchange() {
        let plans = plans_for("SELECT t.kind_id, COUNT(*) FROM title t GROUP BY t.kind_id");
        assert!(plans[0].explain().contains("Exchange hashpartitioning"));
    }

    #[test]
    fn order_and_limit_appear_at_top() {
        let plans = plans_for("SELECT t.id FROM title t WHERE t.kind_id < 3 ORDER BY t.id LIMIT 5");
        let p = &plans[0];
        assert!(matches!(p.node(p.root()).op, PhysicalOp::Limit { n: 5 }));
    }

    #[test]
    fn estimates_are_positive_and_monotone_ish() {
        let plans =
            plans_for("SELECT COUNT(*) FROM title t, movie_companies mc WHERE t.id = mc.movie_id");
        for p in &plans {
            for n in p.nodes() {
                assert!(n.est_rows >= 0.0);
                assert!(n.est_bytes >= 0.0);
            }
            assert!(p.scan_bytes() > 0.0);
        }
    }
}
