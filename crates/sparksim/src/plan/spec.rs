//! Binder: resolves a parsed [`Query`] against the catalog into a
//! normalised [`QuerySpec`] — per-table conjunctive filters, equi-join
//! edges, residual predicates and the aggregate list. This is the form the
//! join-order optimizer and physical planner work from.

use crate::catalog::Catalog;
use crate::expr::{CmpOp, Expr};
use crate::schema::ColumnRef;
use crate::sql::ast::{AggFunc, AstColumn, AstExpr, Query, SelectItem};
use crate::types::DataType;
use std::collections::HashMap;
use std::fmt;

/// A `FROM`-list entry after alias resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Binding {
    /// The name used to reference this table in the query (alias or table
    /// name) — also the qualifier used in resolved [`ColumnRef`]s.
    pub name: String,
    /// The base table in the catalog.
    pub table: String,
}

/// An equi-join edge between two bindings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinEdge {
    /// Key on one side (binding-qualified).
    pub left: ColumnRef,
    /// Key on the other side.
    pub right: ColumnRef,
}

impl JoinEdge {
    /// The edge's key for `binding`, if it touches it.
    pub fn key_for(&self, binding: &str) -> Option<&ColumnRef> {
        if self.left.table == binding {
            Some(&self.left)
        } else if self.right.table == binding {
            Some(&self.right)
        } else {
            None
        }
    }

    /// Whether the edge connects the two given bindings.
    pub fn connects(&self, a: &str, b: &str) -> bool {
        (self.left.table == a && self.right.table == b)
            || (self.left.table == b && self.right.table == a)
    }
}

/// One aggregate in the select list.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// Aggregate function.
    pub func: AggFunc,
    /// Argument column; `None` for `COUNT(*)`.
    pub arg: Option<ColumnRef>,
}

/// A fully resolved, normalised query.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// `FROM` bindings, in query order.
    pub bindings: Vec<Binding>,
    /// Conjunctive single-table filters, keyed by binding name.
    pub table_filters: HashMap<String, Expr>,
    /// Equi-join edges.
    pub join_edges: Vec<JoinEdge>,
    /// Predicates that are neither single-table nor equi-join (applied
    /// after all joins).
    pub residual: Vec<Expr>,
    /// Aggregates in the select list.
    pub aggregates: Vec<AggSpec>,
    /// Plain select-list columns.
    pub select_columns: Vec<ColumnRef>,
    /// Whether the select list contains `*`.
    pub wildcard: bool,
    /// `GROUP BY` columns.
    pub group_by: Vec<ColumnRef>,
    /// `ORDER BY` columns with ascending flags.
    pub order_by: Vec<(ColumnRef, bool)>,
    /// `LIMIT`.
    pub limit: Option<usize>,
}

impl QuerySpec {
    /// Binding by name.
    pub fn binding(&self, name: &str) -> Option<&Binding> {
        self.bindings.iter().find(|b| b.name == name)
    }

    /// True when the query has at least one aggregate.
    pub fn has_aggregates(&self) -> bool {
        !self.aggregates.is_empty()
    }

    /// Number of joins implied by the FROM list.
    pub fn num_joins(&self) -> usize {
        self.bindings.len().saturating_sub(1)
    }

    /// All columns a binding must produce: filters are applied at the scan,
    /// so this covers join keys, residuals, aggregates, group/order and the
    /// select list.
    pub fn required_columns(&self, binding: &str) -> Vec<ColumnRef> {
        let mut cols: Vec<ColumnRef> = Vec::new();
        let mut push = |c: &ColumnRef| {
            if c.table == binding && !cols.contains(c) {
                cols.push(c.clone());
            }
        };
        for e in &self.join_edges {
            push(&e.left);
            push(&e.right);
        }
        for r in &self.residual {
            for c in r.referenced_columns() {
                push(c);
            }
        }
        for a in &self.aggregates {
            if let Some(c) = &a.arg {
                push(c);
            }
        }
        for c in &self.select_columns {
            push(c);
        }
        for c in &self.group_by {
            push(c);
        }
        for (c, _) in &self.order_by {
            push(c);
        }
        // Filter columns are needed at the scan even if dropped afterwards.
        if let Some(f) = self.table_filters.get(binding) {
            for c in f.referenced_columns() {
                push(c);
            }
        }
        cols
    }
}

/// Resolution failure.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolveError {
    /// Human-readable message.
    pub message: String,
    /// Token index of the offending item in the original SQL (the same
    /// coordinate space as [`crate::sql::parser::ParseError::position`]),
    /// when the failure can be pinned to one.
    pub position: Option<usize>,
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.position {
            Some(p) => write!(f, "resolve error at token {p}: {}", self.message),
            None => write!(f, "resolve error: {}", self.message),
        }
    }
}

impl std::error::Error for ResolveError {}

fn err<T>(message: impl Into<String>) -> Result<T, ResolveError> {
    Err(ResolveError { message: message.into(), position: None })
}

fn err_at<T>(position: usize, message: impl Into<String>) -> Result<T, ResolveError> {
    Err(ResolveError { message: message.into(), position: Some(position) })
}

/// Resolves a parsed query against the catalog.
pub fn resolve(query: &Query, catalog: &Catalog) -> Result<QuerySpec, ResolveError> {
    // 1. Bindings.
    let mut bindings = Vec::with_capacity(query.tables.len());
    for t in &query.tables {
        if catalog.table(&t.name).is_none() {
            return err_at(t.position, format!("unknown table '{}'", t.name));
        }
        let name = t.binding().to_string();
        if bindings.iter().any(|b: &Binding| b.name == name) {
            return err_at(t.position, format!("duplicate binding '{name}'"));
        }
        bindings.push(Binding { name, table: t.name.clone() });
    }

    let resolver = ColumnResolver { bindings: &bindings, catalog };

    // 2. Select list.
    let mut aggregates = Vec::new();
    let mut select_columns = Vec::new();
    let mut wildcard = false;
    for item in &query.items {
        match item {
            SelectItem::Wildcard => wildcard = true,
            SelectItem::Column(c) => select_columns.push(resolver.resolve_column(c)?),
            SelectItem::Aggregate { func, arg } => {
                let arg = match arg {
                    Some(c) => {
                        let rc = resolver.resolve_column(c)?;
                        if *func != AggFunc::Count && *func != AggFunc::Min && *func != AggFunc::Max
                        {
                            // SUM/AVG need numeric arguments.
                            let dt = resolver.column_type(&rc, c.position)?;
                            if dt == DataType::Str {
                                return err_at(
                                    c.position,
                                    format!("{func}({rc}) over a string column"),
                                );
                            }
                        }
                        Some(rc)
                    }
                    None => None,
                };
                aggregates.push(AggSpec { func: *func, arg });
            }
        }
    }

    // 3. Predicate classification.
    let mut table_filter_lists: HashMap<String, Vec<Expr>> = HashMap::new();
    let mut join_edges = Vec::new();
    let mut residual = Vec::new();
    if let Some(pred) = &query.predicate {
        let resolved = resolver.resolve_expr(pred)?;
        for factor in resolved.split_conjunction() {
            match classify(factor) {
                Class::Join(edge) => join_edges.push(edge),
                Class::SingleTable(binding) => {
                    table_filter_lists.entry(binding).or_default().push(factor.clone())
                }
                Class::Residual => residual.push(factor.clone()),
            }
        }
    }
    // Every list was created non-empty via `entry().or_default().push`,
    // so the `None` (empty-conjunction) arm cannot fire; `filter_map`
    // keeps the impossible case panic-free.
    let table_filters = table_filter_lists
        .into_iter()
        .filter_map(|(k, v)| Expr::conjunction(v).map(|e| (k, e)))
        .collect();

    let group_by = query
        .group_by
        .iter()
        .map(|c| resolver.resolve_column(c))
        .collect::<Result<Vec<_>, _>>()?;
    let order_by = query
        .order_by
        .iter()
        .map(|(c, asc)| resolver.resolve_column(c).map(|r| (r, *asc)))
        .collect::<Result<Vec<_>, _>>()?;

    let spec = QuerySpec {
        bindings,
        table_filters,
        join_edges,
        residual,
        aggregates,
        select_columns,
        wildcard,
        group_by,
        order_by,
        limit: query.limit,
    };

    // 4. Connectivity check: a disconnected join graph would be a cross
    // product, which the workloads never produce — reject it early.
    if spec.bindings.len() > 1 {
        let mut reached = vec![false; spec.bindings.len()];
        reached[0] = true;
        let mut changed = true;
        while changed {
            changed = false;
            for e in &spec.join_edges {
                for (i, b) in spec.bindings.iter().enumerate() {
                    if reached[i] {
                        continue;
                    }
                    let other_reached = spec
                        .bindings
                        .iter()
                        .enumerate()
                        .any(|(j, ob)| reached[j] && e.connects(&ob.name, &b.name));
                    if other_reached {
                        reached[i] = true;
                        changed = true;
                    }
                }
            }
        }
        if reached.iter().any(|r| !r) {
            return err("join graph is disconnected (cross products unsupported)");
        }
    }
    Ok(spec)
}

enum Class {
    Join(JoinEdge),
    SingleTable(String),
    Residual,
}

fn classify(factor: &Expr) -> Class {
    // Equi-join: column = column across different bindings.
    if let Expr::Cmp { op: CmpOp::Eq, left, right } = factor {
        if let (Expr::Column(l), Expr::Column(r)) = (left.as_ref(), right.as_ref()) {
            if l.table != r.table {
                return Class::Join(JoinEdge { left: l.clone(), right: r.clone() });
            }
        }
    }
    let cols = factor.referenced_columns();
    let mut tables: Vec<&str> = cols.iter().map(|c| c.table.as_str()).collect();
    tables.sort_unstable();
    tables.dedup();
    match tables.as_slice() {
        [single] => Class::SingleTable((*single).to_string()),
        _ => Class::Residual,
    }
}

struct ColumnResolver<'a> {
    bindings: &'a [Binding],
    catalog: &'a Catalog,
}

impl ColumnResolver<'_> {
    /// The binding's catalog table. Bindings are only created after a
    /// successful catalog lookup in [`resolve`], so a miss here means the
    /// catalog changed mid-resolution — reported as an error, not a panic.
    fn bound_table(
        &self,
        b: &Binding,
    ) -> Result<&std::sync::Arc<crate::storage::Table>, ResolveError> {
        self.catalog.table(&b.table).ok_or_else(|| ResolveError {
            message: format!("table '{}' disappeared from the catalog during resolution", b.table),
            position: None,
        })
    }

    fn resolve_column(&self, c: &AstColumn) -> Result<ColumnRef, ResolveError> {
        match &c.qualifier {
            Some(q) => {
                let b =
                    self.bindings
                        .iter()
                        .find(|b| &b.name == q)
                        .ok_or_else(|| ResolveError {
                            message: format!("unknown qualifier '{q}'"),
                            position: Some(c.position),
                        })?;
                let table = self.bound_table(b)?;
                if table.schema.column_index(&c.name).is_none() {
                    return err_at(
                        c.position,
                        format!("table '{}' has no column '{}'", b.table, c.name),
                    );
                }
                Ok(ColumnRef::new(b.name.clone(), c.name.clone()))
            }
            None => {
                let mut matches = Vec::new();
                for b in self.bindings {
                    let table = self.bound_table(b)?;
                    if table.schema.column_index(&c.name).is_some() {
                        matches.push(b);
                    }
                }
                match matches.as_slice() {
                    [one] => Ok(ColumnRef::new(one.name.clone(), c.name.clone())),
                    [] => err_at(c.position, format!("unknown column '{}'", c.name)),
                    _ => err_at(c.position, format!("ambiguous column '{}'", c.name)),
                }
            }
        }
    }

    /// Type of an already-resolved column; `position` locates the SQL
    /// token the caller is checking, for error attribution.
    fn column_type(&self, c: &ColumnRef, position: usize) -> Result<DataType, ResolveError> {
        let b = self
            .bindings
            .iter()
            .find(|b| b.name == c.table)
            .ok_or_else(|| ResolveError {
                message: format!("unknown binding '{}'", c.table),
                position: Some(position),
            })?;
        let table = self.bound_table(b)?;
        let column = table.schema.column(&c.column).ok_or_else(|| ResolveError {
            message: format!("table '{}' has no column '{}'", b.table, c.column),
            position: Some(position),
        })?;
        Ok(column.data_type)
    }

    fn resolve_expr(&self, e: &AstExpr) -> Result<Expr, ResolveError> {
        Ok(match e {
            AstExpr::Column(c) => Expr::Column(self.resolve_column(c)?),
            AstExpr::Literal(v) => Expr::Literal(v.clone()),
            AstExpr::Cmp { op, left, right } => Expr::Cmp {
                op: *op,
                left: Box::new(self.resolve_expr(left)?),
                right: Box::new(self.resolve_expr(right)?),
            },
            AstExpr::And(a, b) => {
                Expr::And(Box::new(self.resolve_expr(a)?), Box::new(self.resolve_expr(b)?))
            }
            AstExpr::Or(a, b) => {
                Expr::Or(Box::new(self.resolve_expr(a)?), Box::new(self.resolve_expr(b)?))
            }
            AstExpr::Not(inner) => Expr::Not(Box::new(self.resolve_expr(inner)?)),
            AstExpr::IsNull(inner) => Expr::IsNull(Box::new(self.resolve_expr(inner)?)),
            AstExpr::IsNotNull(inner) => Expr::IsNotNull(Box::new(self.resolve_expr(inner)?)),
            AstExpr::Like { expr, pattern } => Expr::Like {
                expr: Box::new(self.resolve_expr(expr)?),
                pattern: pattern.clone(),
            },
            AstExpr::Between { expr, lo, hi } => {
                let inner = self.resolve_expr(expr)?;
                Expr::And(
                    Box::new(Expr::Cmp {
                        op: CmpOp::Ge,
                        left: Box::new(inner.clone()),
                        right: Box::new(Expr::Literal(lo.clone())),
                    }),
                    Box::new(Expr::Cmp {
                        op: CmpOp::Le,
                        left: Box::new(inner),
                        right: Box::new(Expr::Literal(hi.clone())),
                    }),
                )
            }
            AstExpr::InList { expr, list } => {
                if list.is_empty() {
                    return err("IN () with an empty list");
                }
                let inner = self.resolve_expr(expr)?;
                let mut alts: Vec<Expr> = list
                    .iter()
                    .map(|v| Expr::Cmp {
                        op: CmpOp::Eq,
                        left: Box::new(inner.clone()),
                        right: Box::new(Expr::Literal(v.clone())),
                    })
                    .collect();
                let first = alts.remove(0);
                alts.into_iter()
                    .fold(first, |acc, p| Expr::Or(Box::new(acc), Box::new(p)))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, TableSchema};
    use crate::sql::parser::parse;
    use crate::storage::{Column, ColumnData, Table};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(Table::new(
            TableSchema::new(
                "title",
                vec![
                    ColumnDef::new("id", DataType::Int, false),
                    ColumnDef::new("kind_id", DataType::Int, true),
                ],
            ),
            vec![
                Column::non_null(ColumnData::Int(vec![1, 2])),
                Column::non_null(ColumnData::Int(vec![10, 20])),
            ],
        ));
        c.register(Table::new(
            TableSchema::new(
                "movie_companies",
                vec![
                    ColumnDef::new("movie_id", DataType::Int, false),
                    ColumnDef::new("company_id", DataType::Int, false),
                ],
            ),
            vec![
                Column::non_null(ColumnData::Int(vec![1, 2])),
                Column::non_null(ColumnData::Int(vec![5, 6])),
            ],
        ));
        c
    }

    #[test]
    fn resolves_joins_and_filters() {
        let q = parse(
            "SELECT COUNT(*) FROM title t, movie_companies mc \
             WHERE t.id = mc.movie_id AND t.kind_id < 7 AND mc.company_id > 1",
        )
        .unwrap();
        let spec = resolve(&q, &catalog()).unwrap();
        assert_eq!(spec.bindings.len(), 2);
        assert_eq!(spec.join_edges.len(), 1);
        assert_eq!(spec.table_filters.len(), 2);
        assert!(spec.residual.is_empty());
        assert!(spec.has_aggregates());
        assert_eq!(spec.num_joins(), 1);
    }

    #[test]
    fn unqualified_unique_column_resolves() {
        let q = parse("SELECT COUNT(*) FROM title WHERE kind_id < 7").unwrap();
        let spec = resolve(&q, &catalog()).unwrap();
        assert!(spec.table_filters.contains_key("title"));
    }

    #[test]
    fn ambiguous_column_is_error() {
        // Both tables would match a hypothetical shared name; here use `id`
        // vs `movie_id` — craft ambiguity via two bindings of same table.
        let q =
            parse("SELECT COUNT(*) FROM title a, title b WHERE a.id = b.id AND id < 5").unwrap();
        let e = resolve(&q, &catalog()).unwrap_err();
        assert!(e.message.contains("ambiguous"), "{}", e.message);
    }

    #[test]
    fn unknown_table_and_column_errors() {
        let q = parse("SELECT COUNT(*) FROM nope").unwrap();
        assert!(resolve(&q, &catalog()).is_err());
        let q = parse("SELECT COUNT(*) FROM title WHERE title.nope = 1").unwrap();
        assert!(resolve(&q, &catalog()).is_err());
    }

    #[test]
    fn disconnected_join_graph_rejected() {
        let q = parse("SELECT COUNT(*) FROM title t, movie_companies mc WHERE t.id > 0").unwrap();
        let e = resolve(&q, &catalog()).unwrap_err();
        assert!(e.message.contains("disconnected"));
    }

    #[test]
    fn between_desugars_to_range() {
        let q = parse("SELECT COUNT(*) FROM title WHERE kind_id BETWEEN 3 AND 9").unwrap();
        let spec = resolve(&q, &catalog()).unwrap();
        let f = &spec.table_filters["title"];
        let parts = f.split_conjunction();
        assert_eq!(parts.len(), 2);
    }

    #[test]
    fn in_list_desugars_to_or_chain() {
        let q = parse("SELECT COUNT(*) FROM title WHERE kind_id IN (1, 2, 3)").unwrap();
        let spec = resolve(&q, &catalog()).unwrap();
        let f = &spec.table_filters["title"];
        assert!(matches!(f, Expr::Or(_, _)));
    }

    #[test]
    fn required_columns_cover_join_keys_and_filters() {
        let q = parse(
            "SELECT COUNT(*) FROM title t, movie_companies mc \
             WHERE t.id = mc.movie_id AND t.kind_id < 7",
        )
        .unwrap();
        let spec = resolve(&q, &catalog()).unwrap();
        let cols = spec.required_columns("t");
        assert!(cols.contains(&ColumnRef::new("t", "id")));
        assert!(cols.contains(&ColumnRef::new("t", "kind_id")));
    }

    #[test]
    fn resolve_errors_carry_source_positions() {
        // Token 3 is `nope` in `SELECT COUNT ( * ) FROM nope` — tokens
        // are counted the same way ParseError counts them.
        let q = parse("SELECT COUNT(*) FROM nope").unwrap();
        let e = resolve(&q, &catalog()).unwrap_err();
        assert_eq!(e.position, Some(6));
        assert!(e.to_string().contains("at token 6"), "{e}");

        let q = parse("SELECT COUNT(*) FROM title WHERE title.nope = 1").unwrap();
        let e = resolve(&q, &catalog()).unwrap_err();
        assert_eq!(e.position, Some(8));

        let q = parse("SELECT COUNT(*) FROM title WHERE bogus = 1").unwrap();
        let e = resolve(&q, &catalog()).unwrap_err();
        assert_eq!(e.position, Some(8));
    }

    #[test]
    fn self_join_with_aliases_resolves() {
        let q = parse("SELECT COUNT(*) FROM title a, title b WHERE a.id = b.kind_id").unwrap();
        let spec = resolve(&q, &catalog()).unwrap();
        assert_eq!(spec.bindings.len(), 2);
        assert_eq!(spec.join_edges.len(), 1);
    }
}
