//! Logical expression simplification — the rule-based rewrites Catalyst's
//! logical optimizer applies before physical planning: constant folding,
//! boolean short-circuiting, double-negation elimination and trivial
//! range collapsing.
//!
//! The simplifier is semantics-preserving under SQL three-valued logic
//! (verified by property tests): for every row, the simplified predicate
//! evaluates to the same TRUE/FALSE/NULL verdict as the original.

use crate::expr::{CmpOp, Expr};
use crate::types::Value;

/// Result of constant-analysing an expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Const {
    True,
    False,
    Null,
    /// Not a constant.
    Unknown,
}

/// Simplifies an expression, preserving three-valued semantics.
pub fn simplify(expr: &Expr) -> Expr {
    match expr {
        Expr::And(a, b) => {
            let (sa, sb) = (simplify(a), simplify(b));
            match (constness(&sa), constness(&sb)) {
                // FALSE AND x == FALSE (even for NULL x).
                (Const::False, _) | (_, Const::False) => bool_lit(false),
                (Const::True, _) => sb,
                (_, Const::True) => sa,
                _ => Expr::And(Box::new(sa), Box::new(sb)),
            }
        }
        Expr::Or(a, b) => {
            let (sa, sb) = (simplify(a), simplify(b));
            match (constness(&sa), constness(&sb)) {
                (Const::True, _) | (_, Const::True) => bool_lit(true),
                (Const::False, _) => sb,
                (_, Const::False) => sa,
                _ => Expr::Or(Box::new(sa), Box::new(sb)),
            }
        }
        Expr::Not(inner) => {
            let s = simplify(inner);
            match s {
                // NOT NOT x == x.
                Expr::Not(x) => *x,
                _ => match constness(&s) {
                    Const::True => bool_lit(false),
                    Const::False => bool_lit(true),
                    Const::Null => Expr::Literal(Value::Null),
                    Const::Unknown => negate_cmp(s),
                },
            }
        }
        Expr::Cmp { op, left, right } => {
            let (sl, sr) = (simplify(left), simplify(right));
            // Literal-vs-literal comparisons fold.
            if let (Expr::Literal(a), Expr::Literal(b)) = (&sl, &sr) {
                return match a.sql_cmp(b) {
                    Some(ord) => bool_lit(op.test(ord)),
                    None => Expr::Literal(Value::Null),
                };
            }
            Expr::Cmp { op: *op, left: Box::new(sl), right: Box::new(sr) }
        }
        Expr::IsNull(inner) => {
            let s = simplify(inner);
            if let Expr::Literal(v) = &s {
                return bool_lit(v.is_null());
            }
            Expr::IsNull(Box::new(s))
        }
        Expr::IsNotNull(inner) => {
            let s = simplify(inner);
            if let Expr::Literal(v) = &s {
                return bool_lit(!v.is_null());
            }
            Expr::IsNotNull(Box::new(s))
        }
        Expr::Like { expr: inner, pattern } => {
            let s = simplify(inner);
            if let Expr::Literal(v) = &s {
                return match v.as_str() {
                    Some(text) => bool_lit(crate::expr::like_match(text, pattern)),
                    None => Expr::Literal(Value::Null),
                };
            }
            // `x LIKE '%'` keeps every non-NULL string.
            if pattern == "%" {
                return Expr::IsNotNull(Box::new(s));
            }
            Expr::Like { expr: Box::new(s), pattern: pattern.clone() }
        }
        Expr::Column(_) | Expr::Literal(_) => expr.clone(),
    }
}

/// Pushes a NOT into a comparison (`NOT (a < b)` == `a >= b` under 3VL:
/// both are NULL when either side is NULL).
fn negate_cmp(e: Expr) -> Expr {
    match e {
        Expr::Cmp { op, left, right } => {
            let flipped = match op {
                CmpOp::Eq => CmpOp::Ne,
                CmpOp::Ne => CmpOp::Eq,
                CmpOp::Lt => CmpOp::Ge,
                CmpOp::Le => CmpOp::Gt,
                CmpOp::Gt => CmpOp::Le,
                CmpOp::Ge => CmpOp::Lt,
            };
            Expr::Cmp { op: flipped, left, right }
        }
        Expr::IsNull(x) => Expr::IsNotNull(x),
        Expr::IsNotNull(x) => Expr::IsNull(x),
        other => Expr::Not(Box::new(other)),
    }
}

fn constness(e: &Expr) -> Const {
    match e {
        Expr::Literal(Value::Null) => Const::Null,
        Expr::Literal(v) => match v.as_i64() {
            Some(1) => Const::True,
            Some(0) => Const::False,
            _ => Const::Unknown,
        },
        _ => Const::Unknown,
    }
}

fn bool_lit(b: bool) -> Expr {
    Expr::Literal(Value::Int(b as i64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnRef;

    fn col() -> Expr {
        Expr::Column(ColumnRef::new("t", "x"))
    }

    fn lt(v: i64) -> Expr {
        Expr::cmp(ColumnRef::new("t", "x"), CmpOp::Lt, Value::Int(v))
    }

    #[test]
    fn constant_comparisons_fold() {
        let e = Expr::Cmp {
            op: CmpOp::Lt,
            left: Box::new(Expr::Literal(Value::Int(1))),
            right: Box::new(Expr::Literal(Value::Int(2))),
        };
        assert_eq!(simplify(&e), bool_lit(true));
        let e = Expr::Cmp {
            op: CmpOp::Eq,
            left: Box::new(Expr::Literal(Value::Null)),
            right: Box::new(Expr::Literal(Value::Int(2))),
        };
        assert_eq!(simplify(&e), Expr::Literal(Value::Null));
    }

    #[test]
    fn boolean_short_circuits() {
        let e = Expr::And(Box::new(bool_lit(false)), Box::new(lt(5)));
        assert_eq!(simplify(&e), bool_lit(false));
        let e = Expr::And(Box::new(bool_lit(true)), Box::new(lt(5)));
        assert_eq!(simplify(&e), lt(5));
        let e = Expr::Or(Box::new(bool_lit(true)), Box::new(lt(5)));
        assert_eq!(simplify(&e), bool_lit(true));
        let e = Expr::Or(Box::new(bool_lit(false)), Box::new(lt(5)));
        assert_eq!(simplify(&e), lt(5));
    }

    #[test]
    fn double_negation_and_not_pushing() {
        let e = Expr::Not(Box::new(Expr::Not(Box::new(lt(5)))));
        assert_eq!(simplify(&e), lt(5));
        let e = Expr::Not(Box::new(lt(5)));
        assert_eq!(simplify(&e), Expr::cmp(ColumnRef::new("t", "x"), CmpOp::Ge, Value::Int(5)));
        let e = Expr::Not(Box::new(Expr::IsNull(Box::new(col()))));
        assert_eq!(simplify(&e), Expr::IsNotNull(Box::new(col())));
    }

    #[test]
    fn like_rewrites() {
        let e = Expr::Like { expr: Box::new(col()), pattern: "%".into() };
        assert_eq!(simplify(&e), Expr::IsNotNull(Box::new(col())));
        let e = Expr::Like {
            expr: Box::new(Expr::Literal(Value::Str("abc".into()))),
            pattern: "a%".into(),
        };
        assert_eq!(simplify(&e), bool_lit(true));
    }

    #[test]
    fn is_null_on_literals() {
        let e = Expr::IsNull(Box::new(Expr::Literal(Value::Null)));
        assert_eq!(simplify(&e), bool_lit(true));
        let e = Expr::IsNotNull(Box::new(Expr::Literal(Value::Int(3))));
        assert_eq!(simplify(&e), bool_lit(true));
    }

    #[test]
    fn non_foldable_expressions_unchanged() {
        let e = Expr::And(Box::new(lt(5)), Box::new(Expr::IsNotNull(Box::new(col()))));
        assert_eq!(simplify(&e), e);
    }
}
