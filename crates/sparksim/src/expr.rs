//! Scalar expressions: AST, SQL three-valued evaluation, and the
//! Spark-`explain`-style rendering consumed by the plan encoder.

use crate::batch::Batch;
use crate::schema::ColumnRef;
use crate::storage::{Column, ColumnData};
use crate::types::Value;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluates the operator over an ordering.
    pub fn test(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }

    /// The operator with its sides swapped (`a < b` ⇔ `b > a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Qualified column reference.
    Column(ColumnRef),
    /// Constant.
    Literal(Value),
    /// Binary comparison.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Logical conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// `expr IS NULL`.
    IsNull(Box<Expr>),
    /// `expr IS NOT NULL`.
    IsNotNull(Box<Expr>),
    /// `expr LIKE 'pattern'` with `%` wildcards.
    Like {
        /// String operand.
        expr: Box<Expr>,
        /// Pattern with `%` wildcards.
        pattern: String,
    },
}

impl Expr {
    /// Builds `column op literal`.
    pub fn cmp(column: ColumnRef, op: CmpOp, value: Value) -> Expr {
        Expr::Cmp {
            op,
            left: Box::new(Expr::Column(column)),
            right: Box::new(Expr::Literal(value)),
        }
    }

    /// Conjunction of a list of predicates; `None` for an empty list.
    pub fn conjunction(mut preds: Vec<Expr>) -> Option<Expr> {
        let first = if preds.is_empty() {
            return None;
        } else {
            preds.remove(0)
        };
        Some(
            preds
                .into_iter()
                .fold(first, |acc, p| Expr::And(Box::new(acc), Box::new(p))),
        )
    }

    /// Splits a conjunctive expression into its AND-ed factors.
    pub fn split_conjunction(&self) -> Vec<&Expr> {
        match self {
            Expr::And(a, b) => {
                let mut out = a.split_conjunction();
                out.extend(b.split_conjunction());
                out
            }
            other => vec![other],
        }
    }

    /// All column references appearing in the expression.
    pub fn referenced_columns(&self) -> Vec<&ColumnRef> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a ColumnRef>) {
        match self {
            Expr::Column(c) => out.push(c),
            Expr::Literal(_) => {}
            Expr::Cmp { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Expr::Not(e) | Expr::IsNull(e) | Expr::IsNotNull(e) => e.collect_columns(out),
            Expr::Like { expr, .. } => expr.collect_columns(out),
        }
    }

    /// True when every referenced column belongs to `table`.
    pub fn only_references(&self, table: &str) -> bool {
        self.referenced_columns().iter().all(|c| c.table == table)
    }

    /// Evaluates the expression for a single row of a batch.
    pub fn eval_row(&self, batch: &Batch, row: usize) -> Value {
        match self {
            Expr::Column(c) => batch.column(c).map(|col| col.value(row)).unwrap_or(Value::Null),
            Expr::Literal(v) => v.clone(),
            Expr::Cmp { op, left, right } => {
                let l = left.eval_row(batch, row);
                let r = right.eval_row(batch, row);
                match l.sql_cmp(&r) {
                    Some(ord) => Value::Int(op.test(ord) as i64),
                    None => Value::Null,
                }
            }
            Expr::And(a, b) => tri_and(a.eval_row(batch, row), b.eval_row(batch, row)),
            Expr::Or(a, b) => tri_or(a.eval_row(batch, row), b.eval_row(batch, row)),
            Expr::Not(e) => match e.eval_row(batch, row) {
                Value::Null => Value::Null,
                v => Value::Int((v.as_i64() == Some(0)) as i64),
            },
            Expr::IsNull(e) => Value::Int(e.eval_row(batch, row).is_null() as i64),
            Expr::IsNotNull(e) => Value::Int(!e.eval_row(batch, row).is_null() as i64),
            Expr::Like { expr, pattern } => match expr.eval_row(batch, row) {
                Value::Null => Value::Null,
                Value::Str(s) => Value::Int(like_match(&s, pattern) as i64),
                _ => Value::Null,
            },
        }
    }

    /// Vectorised evaluation to a three-valued mask over a batch:
    /// `Some(true)` keep, `Some(false)` drop, `None` NULL (also drop under
    /// WHERE semantics).
    pub fn eval_mask(&self, batch: &Batch) -> Vec<Option<bool>> {
        let n = batch.num_rows();
        match self {
            Expr::And(a, b) => {
                let ma = a.eval_mask(batch);
                let mb = b.eval_mask(batch);
                ma.into_iter().zip(mb).map(|(x, y)| tri_and_b(x, y)).collect()
            }
            Expr::Or(a, b) => {
                let ma = a.eval_mask(batch);
                let mb = b.eval_mask(batch);
                ma.into_iter().zip(mb).map(|(x, y)| tri_or_b(x, y)).collect()
            }
            Expr::Not(e) => e.eval_mask(batch).into_iter().map(|x| x.map(|b| !b)).collect(),
            Expr::IsNotNull(e) => match e.as_ref() {
                Expr::Column(c) => {
                    let col = match batch.column(c) {
                        Some(col) => col,
                        None => return vec![Some(false); n],
                    };
                    (0..n).map(|i| Some(col.is_valid(i))).collect()
                }
                _ => (0..n).map(|i| Some(!e.eval_row(batch, i).is_null())).collect(),
            },
            Expr::IsNull(e) => match e.as_ref() {
                Expr::Column(c) => {
                    let col = match batch.column(c) {
                        Some(col) => col,
                        None => return vec![Some(true); n],
                    };
                    (0..n).map(|i| Some(!col.is_valid(i))).collect()
                }
                _ => (0..n).map(|i| Some(e.eval_row(batch, i).is_null())).collect(),
            },
            Expr::Cmp { op, left, right } => {
                // Fast path: column vs literal.
                if let (Expr::Column(c), Expr::Literal(v)) = (left.as_ref(), right.as_ref()) {
                    if let Some(col) = batch.column(c) {
                        return cmp_column_literal(col, *op, v);
                    }
                }
                if let (Expr::Literal(v), Expr::Column(c)) = (left.as_ref(), right.as_ref()) {
                    if let Some(col) = batch.column(c) {
                        return cmp_column_literal(col, op.flip(), v);
                    }
                }
                (0..n)
                    .map(|i| match self.eval_row(batch, i) {
                        Value::Null => None,
                        v => Some(v.as_i64() == Some(1)),
                    })
                    .collect()
            }
            Expr::Like { expr, pattern } => {
                if let Expr::Column(c) = expr.as_ref() {
                    if let Some(col) = batch.column(c) {
                        if let ColumnData::Str { codes, dict } = &col.data {
                            // Match each dictionary entry once.
                            let hits: Vec<bool> =
                                dict.iter().map(|s| like_match(s, pattern)).collect();
                            return (0..n)
                                .map(|i| {
                                    if col.is_valid(i) {
                                        Some(hits[codes[i] as usize])
                                    } else {
                                        None
                                    }
                                })
                                .collect();
                        }
                    }
                }
                (0..n)
                    .map(|i| match self.eval_row(batch, i) {
                        Value::Null => None,
                        v => Some(v.as_i64() == Some(1)),
                    })
                    .collect()
            }
            _ => (0..n)
                .map(|i| match self.eval_row(batch, i) {
                    Value::Null => None,
                    v => Some(v.as_i64() == Some(1)),
                })
                .collect(),
        }
    }
}

fn tri_and(a: Value, b: Value) -> Value {
    match (to_tri(&a), to_tri(&b)) {
        (Some(false), _) | (_, Some(false)) => Value::Int(0),
        (Some(true), Some(true)) => Value::Int(1),
        _ => Value::Null,
    }
}

fn tri_or(a: Value, b: Value) -> Value {
    match (to_tri(&a), to_tri(&b)) {
        (Some(true), _) | (_, Some(true)) => Value::Int(1),
        (Some(false), Some(false)) => Value::Int(0),
        _ => Value::Null,
    }
}

fn to_tri(v: &Value) -> Option<bool> {
    match v {
        Value::Null => None,
        v => Some(v.as_i64() == Some(1)),
    }
}

fn tri_and_b(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    }
}

fn tri_or_b(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(true), _) | (_, Some(true)) => Some(true),
        (Some(false), Some(false)) => Some(false),
        _ => None,
    }
}

fn cmp_column_literal(col: &Column, op: CmpOp, lit: &Value) -> Vec<Option<bool>> {
    let n = col.len();
    if lit.is_null() {
        return vec![None; n];
    }
    // Bind the numeric view of the literal once, so the numeric arms
    // below need no per-arm re-extraction (and no unwrap).
    let num = lit.as_f64();
    match (&col.data, lit, num) {
        (ColumnData::Int(v), _, Some(x)) => (0..n)
            .map(|i| {
                if col.is_valid(i) {
                    (v[i] as f64).partial_cmp(&x).map(|o| op.test(o))
                } else {
                    None
                }
            })
            .collect(),
        (ColumnData::Float(v), _, Some(x)) => (0..n)
            .map(|i| {
                if col.is_valid(i) {
                    v[i].partial_cmp(&x).map(|o| op.test(o))
                } else {
                    None
                }
            })
            .collect(),
        (ColumnData::Str { codes, dict }, Value::Str(s), _) => {
            // Compare each dictionary entry once, then map codes.
            let verdicts: Vec<bool> = dict.iter().map(|d| op.test(d.as_str().cmp(s))).collect();
            (0..n)
                .map(|i| {
                    if col.is_valid(i) {
                        Some(verdicts[codes[i] as usize])
                    } else {
                        None
                    }
                })
                .collect()
        }
        // Type mismatch (e.g. string column vs numeric literal): unknown.
        _ => vec![None; n],
    }
}

/// SQL LIKE with `%` wildcards (no `_` support — the workloads don't use it).
pub fn like_match(s: &str, pattern: &str) -> bool {
    let parts: Vec<&str> = pattern.split('%').collect();
    if parts.len() == 1 {
        return s == pattern;
    }
    let mut rest = s;
    // First part must anchor at the start (unless empty).
    let first = parts[0];
    if !first.is_empty() {
        match rest.strip_prefix(first) {
            Some(r) => rest = r,
            None => return false,
        }
    }
    // Last part must anchor at the end (unless empty).
    let last = parts[parts.len() - 1];
    let middle = &parts[1..parts.len() - 1];
    for part in middle {
        if part.is_empty() {
            continue;
        }
        match rest.find(part) {
            Some(pos) => rest = &rest[pos + part.len()..],
            None => return false,
        }
    }
    if last.is_empty() {
        true
    } else {
        rest.ends_with(last) && rest.len() >= last.len()
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Cmp { op, left, right } => write!(f, "({left} {op} {right})"),
            Expr::And(a, b) => write!(f, "({a} && {b})"),
            Expr::Or(a, b) => write!(f, "({a} || {b})"),
            Expr::Not(e) => write!(f, "NOT {e}"),
            Expr::IsNull(e) => write!(f, "isnull({e})"),
            Expr::IsNotNull(e) => write!(f, "isnotnull({e})"),
            Expr::Like { expr, pattern } => write!(f, "{expr} LIKE '{pattern}'"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::StrColumnBuilder;

    fn batch() -> Batch {
        let mut names = StrColumnBuilder::new();
        names.push("alpha");
        names.push("beta");
        names.push_null();
        names.push("alphabet");
        let mut b = Batch::new();
        b.push(ColumnRef::new("t", "id"), Column::non_null(ColumnData::Int(vec![1, 2, 3, 4])));
        b.push(ColumnRef::new("t", "name"), names.finish());
        b
    }

    fn col(name: &str) -> ColumnRef {
        ColumnRef::new("t", name)
    }

    #[test]
    fn numeric_comparison_mask() {
        let e = Expr::cmp(col("id"), CmpOp::Lt, Value::Int(3));
        assert_eq!(e.eval_mask(&batch()), vec![Some(true), Some(true), Some(false), Some(false)]);
    }

    #[test]
    fn null_propagates_through_comparison() {
        let e = Expr::cmp(col("name"), CmpOp::Eq, Value::Str("beta".into()));
        assert_eq!(e.eval_mask(&batch()), vec![Some(false), Some(true), None, Some(false)]);
    }

    #[test]
    fn is_not_null_mask() {
        let e = Expr::IsNotNull(Box::new(Expr::Column(col("name"))));
        assert_eq!(e.eval_mask(&batch()), vec![Some(true), Some(true), Some(false), Some(true)]);
    }

    #[test]
    fn three_valued_and() {
        // name = 'beta' AND id < 3 : row 2 (null name) => NULL && TRUE = NULL
        let e = Expr::And(
            Box::new(Expr::cmp(col("name"), CmpOp::Eq, Value::Str("beta".into()))),
            Box::new(Expr::cmp(col("id"), CmpOp::Lt, Value::Int(5))),
        );
        assert_eq!(e.eval_mask(&batch()), vec![Some(false), Some(true), None, Some(false)]);
    }

    #[test]
    fn three_valued_or_short_circuits_null() {
        // NULL OR TRUE = TRUE
        let e = Expr::Or(
            Box::new(Expr::cmp(col("name"), CmpOp::Eq, Value::Str("beta".into()))),
            Box::new(Expr::cmp(col("id"), CmpOp::Eq, Value::Int(3))),
        );
        assert_eq!(e.eval_mask(&batch())[2], Some(true));
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("alphabet", "alpha%"));
        assert!(like_match("alphabet", "%bet"));
        assert!(like_match("alphabet", "%phab%"));
        assert!(like_match("alphabet", "alphabet"));
        assert!(!like_match("alphabet", "beta%"));
        assert!(!like_match("alpha", "%bet"));
        assert!(like_match("anything", "%"));
        assert!(!like_match("ab", "a%c"));
    }

    #[test]
    fn like_mask_on_dictionary_column() {
        let e = Expr::Like {
            expr: Box::new(Expr::Column(col("name"))),
            pattern: "alpha%".into(),
        };
        assert_eq!(e.eval_mask(&batch()), vec![Some(true), Some(false), None, Some(true)]);
    }

    #[test]
    fn split_and_rebuild_conjunction() {
        let a = Expr::cmp(col("id"), CmpOp::Gt, Value::Int(0));
        let b = Expr::cmp(col("id"), CmpOp::Lt, Value::Int(10));
        let c = Expr::IsNotNull(Box::new(Expr::Column(col("name"))));
        let conj = Expr::conjunction(vec![a.clone(), b.clone(), c.clone()]).unwrap();
        let parts = conj.split_conjunction();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], &a);
        assert_eq!(parts[2], &c);
        assert!(Expr::conjunction(vec![]).is_none());
    }

    #[test]
    fn referenced_columns_and_table_scoping() {
        let e = Expr::And(
            Box::new(Expr::cmp(col("id"), CmpOp::Gt, Value::Int(0))),
            Box::new(Expr::Cmp {
                op: CmpOp::Eq,
                left: Box::new(Expr::Column(ColumnRef::new("u", "id"))),
                right: Box::new(Expr::Column(col("id"))),
            }),
        );
        assert_eq!(e.referenced_columns().len(), 3);
        assert!(!e.only_references("t"));
        let single = Expr::cmp(col("id"), CmpOp::Gt, Value::Int(0));
        assert!(single.only_references("t"));
    }

    #[test]
    fn literal_flip_fast_path() {
        // 3 > id  ==  id < 3
        let e = Expr::Cmp {
            op: CmpOp::Gt,
            left: Box::new(Expr::Literal(Value::Int(3))),
            right: Box::new(Expr::Column(col("id"))),
        };
        assert_eq!(e.eval_mask(&batch()), vec![Some(true), Some(true), Some(false), Some(false)]);
    }

    #[test]
    fn display_renders_spark_style() {
        let e = Expr::And(
            Box::new(Expr::IsNotNull(Box::new(Expr::Column(col("id"))))),
            Box::new(Expr::cmp(col("id"), CmpOp::Lt, Value::Int(7))),
        );
        assert_eq!(e.to_string(), "(isnotnull(t.id) && (t.id < 7))");
    }
}
