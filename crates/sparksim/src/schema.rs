//! Table schemas and the qualified-column naming used throughout planning.

use crate::types::DataType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name (unqualified).
    pub name: String,
    /// Column type.
    pub data_type: DataType,
    /// Whether NULLs may appear.
    pub nullable: bool,
}

impl ColumnDef {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, data_type: DataType, nullable: bool) -> Self {
        Self { name: name.into(), data_type, nullable }
    }
}

/// Schema of a table: an ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<ColumnDef>,
}

impl TableSchema {
    /// Creates a schema.
    pub fn new(name: impl Into<String>, columns: Vec<ColumnDef>) -> Self {
        Self { name: name.into(), columns }
    }

    /// Index of a column by unqualified name.
    pub fn column_index(&self, column: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == column)
    }

    /// Column definition by unqualified name.
    pub fn column(&self, column: &str) -> Option<&ColumnDef> {
        self.columns.iter().find(|c| c.name == column)
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }
}

/// A fully qualified column reference `table.column` (after alias
/// resolution, `table` is the base-table name, not the alias).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ColumnRef {
    /// Base table name.
    pub table: String,
    /// Column name.
    pub column: String,
}

impl ColumnRef {
    /// Creates a qualified reference.
    pub fn new(table: impl Into<String>, column: impl Into<String>) -> Self {
        Self { table: table.into(), column: column.into() }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.table, self.column)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TableSchema {
        TableSchema::new(
            "title",
            vec![
                ColumnDef::new("id", DataType::Int, false),
                ColumnDef::new("kind_id", DataType::Int, true),
                ColumnDef::new("title", DataType::Str, true),
            ],
        )
    }

    #[test]
    fn column_lookup() {
        let s = sample();
        assert_eq!(s.column_index("kind_id"), Some(1));
        assert_eq!(s.column_index("missing"), None);
        assert_eq!(s.column("title").unwrap().data_type, DataType::Str);
        assert_eq!(s.width(), 3);
    }

    #[test]
    fn column_ref_display() {
        assert_eq!(ColumnRef::new("t", "id").to_string(), "t.id");
    }
}
