//! Parsed (pre-resolution) query representation.

use crate::types::Value;
use std::fmt;

/// A parsed `SELECT` query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Select-list items.
    pub items: Vec<SelectItem>,
    /// `FROM` tables with optional aliases.
    pub tables: Vec<TableRef>,
    /// `WHERE` predicate.
    pub predicate: Option<AstExpr>,
    /// `GROUP BY` columns.
    pub group_by: Vec<AstColumn>,
    /// `ORDER BY` columns with ascending flags.
    pub order_by: Vec<(AstColumn, bool)>,
    /// `LIMIT` row count.
    pub limit: Option<usize>,
}

/// One select-list entry.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`.
    Wildcard,
    /// A bare column.
    Column(AstColumn),
    /// An aggregate call.
    Aggregate {
        /// Aggregate function.
        func: AggFunc,
        /// Argument; `None` means `COUNT(*)`.
        arg: Option<AstColumn>,
    },
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT`.
    Count,
    /// `SUM`.
    Sum,
    /// `MIN`.
    Min,
    /// `MAX`.
    Max,
    /// `AVG`.
    Avg,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        };
        write!(f, "{s}")
    }
}

/// A table in the `FROM` list.
#[derive(Debug, Clone)]
pub struct TableRef {
    /// Base table name.
    pub name: String,
    /// Optional alias.
    pub alias: Option<String>,
    /// Token index where this reference starts, for resolver errors.
    pub position: usize,
}

// Position is provenance, not identity: two references to the same
// table/alias are equal wherever they appear in the query.
impl PartialEq for TableRef {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.alias == other.alias
    }
}

impl Eq for TableRef {}

impl TableRef {
    /// The name queries use to reference this table's columns.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// An (optionally) qualified column before alias resolution.
#[derive(Debug, Clone)]
pub struct AstColumn {
    /// Alias or table qualifier, when written.
    pub qualifier: Option<String>,
    /// Column name.
    pub name: String,
    /// Token index where this column starts, for resolver errors.
    pub position: usize,
}

// Position is provenance, not identity — keep equality and hashing on
// the (qualifier, name) pair so positions never split otherwise-equal
// columns in maps or assertions.
impl PartialEq for AstColumn {
    fn eq(&self, other: &Self) -> bool {
        self.qualifier == other.qualifier && self.name == other.name
    }
}

impl Eq for AstColumn {}

impl std::hash::Hash for AstColumn {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.qualifier.hash(state);
        self.name.hash(state);
    }
}

impl fmt::Display for AstColumn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

/// Pre-resolution scalar expression (mirrors [`crate::expr::Expr`] but with
/// unresolved columns).
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// Column reference.
    Column(AstColumn),
    /// Literal constant.
    Literal(Value),
    /// Binary comparison.
    Cmp {
        /// Operator.
        op: crate::expr::CmpOp,
        /// Left operand.
        left: Box<AstExpr>,
        /// Right operand.
        right: Box<AstExpr>,
    },
    /// Conjunction.
    And(Box<AstExpr>, Box<AstExpr>),
    /// Disjunction.
    Or(Box<AstExpr>, Box<AstExpr>),
    /// Negation.
    Not(Box<AstExpr>),
    /// `IS NULL`.
    IsNull(Box<AstExpr>),
    /// `IS NOT NULL`.
    IsNotNull(Box<AstExpr>),
    /// `LIKE` with `%` wildcards.
    Like {
        /// String operand.
        expr: Box<AstExpr>,
        /// Pattern.
        pattern: String,
    },
    /// `BETWEEN lo AND hi` (inclusive); desugared during resolution.
    Between {
        /// Operand.
        expr: Box<AstExpr>,
        /// Lower bound.
        lo: Value,
        /// Upper bound.
        hi: Value,
    },
    /// `IN (v1, v2, ...)`; desugared to an OR chain during resolution.
    InList {
        /// Operand.
        expr: Box<AstExpr>,
        /// Candidate values.
        list: Vec<Value>,
    },
}
