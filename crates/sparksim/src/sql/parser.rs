//! Recursive-descent parser for the SQL subset used by the paper's
//! workloads: `SELECT` with aggregates, comma joins, conjunctive/disjunctive
//! predicates, `BETWEEN`, `IN`, `LIKE`, `IS [NOT] NULL`, `GROUP BY`,
//! `ORDER BY` and `LIMIT`.

use super::ast::*;
use super::token::{tokenize, Token};
use crate::expr::CmpOp;
use crate::types::Value;
use std::fmt;

/// Parse error with a message and (approximate) token position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// Index of the offending token.
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at token {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a SQL string into a [`Query`].
pub fn parse(sql: &str) -> Result<Query, ParseError> {
    let tokens =
        tokenize(sql).map_err(|e| ParseError { message: e.message, position: e.offset })?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    if p.pos != p.tokens.len() {
        return Err(p.error(format!("unexpected trailing token '{}'", p.tokens[p.pos])));
    }
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError { message: message.into(), position: self.pos }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Consumes a keyword (case-insensitive identifier) if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.error(format!(
                "expected keyword {kw}, found {}",
                self.peek().map_or("end of input".to_string(), |t| t.to_string())
            )))
        }
    }

    fn eat_symbol(&mut self, sym: &str) -> bool {
        if let Some(Token::Symbol(s)) = self.peek() {
            if *s == sym {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_symbol(&mut self, sym: &str) -> Result<(), ParseError> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            Err(self.error(format!(
                "expected '{sym}', found {}",
                self.peek().map_or("end of input".to_string(), |t| t.to_string())
            )))
        }
    }

    /// Peeks whether the next token is the given keyword.
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.error(format!(
                "expected identifier, found {}",
                other.map_or("end of input".to_string(), |t| t.to_string())
            ))),
        }
    }

    fn query(&mut self) -> Result<Query, ParseError> {
        self.expect_kw("SELECT")?;
        let items = self.select_list()?;
        self.expect_kw("FROM")?;
        let tables = self.table_list()?;
        let predicate = if self.eat_kw("WHERE") {
            Some(self.or_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.column()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let col = self.column()?;
                let asc = if self.eat_kw("DESC") {
                    false
                } else {
                    self.eat_kw("ASC");
                    true
                };
                order_by.push((col, asc));
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => Some(n as usize),
                _ => return Err(self.error("LIMIT expects a non-negative integer")),
            }
        } else {
            None
        };
        Ok(Query {
            items,
            tables,
            predicate,
            group_by,
            order_by,
            limit,
        })
    }

    fn select_list(&mut self) -> Result<Vec<SelectItem>, ParseError> {
        let mut items = Vec::new();
        loop {
            items.push(self.select_item()?);
            if !self.eat_symbol(",") {
                break;
            }
        }
        Ok(items)
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        if self.eat_symbol("*") {
            return Ok(SelectItem::Wildcard);
        }
        // Aggregate?
        for (kw, func) in [
            ("COUNT", AggFunc::Count),
            ("SUM", AggFunc::Sum),
            ("MIN", AggFunc::Min),
            ("MAX", AggFunc::Max),
            ("AVG", AggFunc::Avg),
        ] {
            if self.at_kw(kw) {
                // Only treat as an aggregate when followed by '('.
                if matches!(self.tokens.get(self.pos + 1), Some(Token::Symbol("("))) {
                    self.pos += 1; // keyword
                    self.expect_symbol("(")?;
                    let arg = if self.eat_symbol("*") {
                        if func != AggFunc::Count {
                            return Err(self.error(format!("{kw}(*) is not valid")));
                        }
                        None
                    } else {
                        Some(self.column()?)
                    };
                    self.expect_symbol(")")?;
                    return Ok(SelectItem::Aggregate { func, arg });
                }
            }
        }
        Ok(SelectItem::Column(self.column()?))
    }

    fn table_list(&mut self) -> Result<Vec<TableRef>, ParseError> {
        let mut tables = Vec::new();
        loop {
            let position = self.pos;
            let name = self.ident()?;
            let alias = if self.eat_kw("AS") {
                Some(self.ident()?)
            } else if let Some(Token::Ident(s)) = self.peek() {
                // Bare alias, unless it's a clause keyword.
                let kw = ["WHERE", "GROUP", "ORDER", "LIMIT", "AS"];
                if kw.iter().any(|k| s.eq_ignore_ascii_case(k)) {
                    None
                } else {
                    Some(self.ident()?)
                }
            } else {
                None
            };
            tables.push(TableRef { name, alias, position });
            if !self.eat_symbol(",") {
                break;
            }
        }
        Ok(tables)
    }

    fn column(&mut self) -> Result<AstColumn, ParseError> {
        let position = self.pos;
        let first = self.ident()?;
        if self.eat_symbol(".") {
            let name = self.ident()?;
            Ok(AstColumn { qualifier: Some(first), name, position })
        } else {
            Ok(AstColumn { qualifier: None, name: first, position })
        }
    }

    fn or_expr(&mut self) -> Result<AstExpr, ParseError> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = AstExpr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<AstExpr, ParseError> {
        let mut left = self.unary_expr()?;
        while self.eat_kw("AND") {
            let right = self.unary_expr()?;
            left = AstExpr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<AstExpr, ParseError> {
        if self.eat_kw("NOT") {
            return Ok(AstExpr::Not(Box::new(self.unary_expr()?)));
        }
        if self.eat_symbol("(") {
            let inner = self.or_expr()?;
            self.expect_symbol(")")?;
            return Ok(inner);
        }
        self.predicate_atom()
    }

    fn predicate_atom(&mut self) -> Result<AstExpr, ParseError> {
        let left = self.operand()?;
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(if negated {
                AstExpr::IsNotNull(Box::new(left))
            } else {
                AstExpr::IsNull(Box::new(left))
            });
        }
        if self.eat_kw("LIKE") {
            match self.next() {
                Some(Token::Str(p)) => {
                    return Ok(AstExpr::Like { expr: Box::new(left), pattern: p })
                }
                _ => return Err(self.error("LIKE expects a string literal")),
            }
        }
        if self.eat_kw("BETWEEN") {
            let lo = self.literal()?;
            self.expect_kw("AND")?;
            let hi = self.literal()?;
            return Ok(AstExpr::Between { expr: Box::new(left), lo, hi });
        }
        if self.eat_kw("IN") {
            self.expect_symbol("(")?;
            let mut list = Vec::new();
            loop {
                list.push(self.literal()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
            self.expect_symbol(")")?;
            return Ok(AstExpr::InList { expr: Box::new(left), list });
        }
        let op = self.cmp_op()?;
        let right = self.operand()?;
        Ok(AstExpr::Cmp { op, left: Box::new(left), right: Box::new(right) })
    }

    fn cmp_op(&mut self) -> Result<CmpOp, ParseError> {
        let op = match self.peek() {
            Some(Token::Symbol("=")) => CmpOp::Eq,
            Some(Token::Symbol("<>")) => CmpOp::Ne,
            Some(Token::Symbol("<")) => CmpOp::Lt,
            Some(Token::Symbol("<=")) => CmpOp::Le,
            Some(Token::Symbol(">")) => CmpOp::Gt,
            Some(Token::Symbol(">=")) => CmpOp::Ge,
            other => {
                return Err(self.error(format!(
                    "expected comparison operator, found {}",
                    other.map_or("end of input".to_string(), |t| t.to_string())
                )))
            }
        };
        self.pos += 1;
        Ok(op)
    }

    fn operand(&mut self) -> Result<AstExpr, ParseError> {
        match self.peek() {
            Some(Token::Int(_)) | Some(Token::Float(_)) | Some(Token::Str(_)) => {
                Ok(AstExpr::Literal(self.literal()?))
            }
            Some(Token::Ident(_)) => Ok(AstExpr::Column(self.column()?)),
            other => Err(self.error(format!(
                "expected operand, found {}",
                other.map_or("end of input".to_string(), |t| t.to_string())
            ))),
        }
    }

    fn literal(&mut self) -> Result<Value, ParseError> {
        match self.next() {
            Some(Token::Int(i)) => Ok(Value::Int(i)),
            Some(Token::Float(x)) => Ok(Value::Float(x)),
            Some(Token::Str(s)) => Ok(Value::Str(s)),
            other => Err(self.error(format!(
                "expected literal, found {}",
                other.map_or("end of input".to_string(), |t| t.to_string())
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_query_1() {
        // Paper Sec. III query 1 (single table).
        let q = parse("SELECT COUNT(*) FROM movie_keyword mk WHERE mk.keyword_id<71692").unwrap();
        assert_eq!(q.tables.len(), 1);
        assert_eq!(q.tables[0].name, "movie_keyword");
        assert_eq!(q.tables[0].alias.as_deref(), Some("mk"));
        assert_eq!(q.items, vec![SelectItem::Aggregate { func: AggFunc::Count, arg: None }]);
        assert!(q.predicate.is_some());
    }

    #[test]
    fn parses_paper_query_4() {
        // Paper Sec. III query 4 (three tables).
        let q = parse(
            "SELECT COUNT(*) FROM title t, movie_companies mc, movie_keyword mk \
             WHERE t.id = mc.movie_id AND t.id = mk.movie_id \
             AND mc.company_id = 43268 AND mk.keyword_id < 2560",
        )
        .unwrap();
        assert_eq!(q.tables.len(), 3);
        let p = q.predicate.unwrap();
        // Conjunction of four atoms: ((a AND b) AND c) AND d.
        fn count_ands(e: &AstExpr) -> usize {
            match e {
                AstExpr::And(a, b) => 1 + count_ands(a) + count_ands(b),
                _ => 0,
            }
        }
        assert_eq!(count_ands(&p), 3);
    }

    #[test]
    fn parses_group_order_limit() {
        let q = parse(
            "SELECT t.kind_id, COUNT(*), SUM(t.production_year) FROM title t \
             WHERE t.production_year > 1990 GROUP BY t.kind_id \
             ORDER BY t.kind_id DESC LIMIT 10",
        )
        .unwrap();
        assert_eq!(q.group_by.len(), 1);
        assert_eq!(q.order_by.len(), 1);
        assert!(!q.order_by[0].1, "DESC parsed");
        assert_eq!(q.limit, Some(10));
        assert_eq!(q.items.len(), 3);
    }

    #[test]
    fn parses_between_in_like_null() {
        let q = parse(
            "SELECT * FROM t WHERE t.a BETWEEN 1 AND 5 AND t.b IN (1, 2, 3) \
             AND t.name LIKE 'abc%' AND t.c IS NOT NULL AND t.d IS NULL",
        )
        .unwrap();
        let atoms = flatten_and(q.predicate.as_ref().unwrap());
        assert_eq!(atoms.len(), 5);
        assert!(matches!(atoms[0], AstExpr::Between { .. }));
        assert!(matches!(atoms[1], AstExpr::InList { .. }));
        assert!(matches!(atoms[2], AstExpr::Like { .. }));
        assert!(matches!(atoms[3], AstExpr::IsNotNull(_)));
        assert!(matches!(atoms[4], AstExpr::IsNull(_)));
    }

    fn flatten_and(e: &AstExpr) -> Vec<&AstExpr> {
        match e {
            AstExpr::And(a, b) => {
                let mut v = flatten_and(a);
                v.extend(flatten_and(b));
                v
            }
            other => vec![other],
        }
    }

    #[test]
    fn or_binds_weaker_than_and() {
        let q = parse("SELECT * FROM t WHERE t.a = 1 AND t.b = 2 OR t.c = 3").unwrap();
        assert!(matches!(q.predicate.unwrap(), AstExpr::Or(_, _)));
    }

    #[test]
    fn parentheses_override_precedence() {
        let q = parse("SELECT * FROM t WHERE t.a = 1 AND (t.b = 2 OR t.c = 3)").unwrap();
        assert!(matches!(q.predicate.unwrap(), AstExpr::And(_, _)));
    }

    #[test]
    fn count_as_column_name_is_allowed() {
        // COUNT not followed by '(' is an ordinary identifier.
        let q = parse("SELECT count FROM t").unwrap();
        assert!(matches!(&q.items[0], SelectItem::Column(c) if c.name == "count"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("SELECT * FROM t WHERE t.a = 1 banana phone").is_err());
    }

    #[test]
    fn rejects_missing_from() {
        assert!(parse("SELECT *").is_err());
    }

    #[test]
    fn rejects_sum_star() {
        assert!(parse("SELECT SUM(*) FROM t").is_err());
    }
}
