//! SQL tokenizer.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (keywords are matched case-insensitively by
    /// the parser; the original spelling is preserved here).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// A punctuation or operator symbol: `( ) , . * = <> < <= > >=`.
    Symbol(&'static str),
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Symbol(s) => write!(f, "{s}"),
        }
    }
}

/// Tokenizer error with byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct TokenizeError {
    /// Human-readable message.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for TokenizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tokenize error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for TokenizeError {}

/// Splits a SQL string into tokens.
pub fn tokenize(sql: &str) -> Result<Vec<Token>, TokenizeError> {
    let bytes = sql.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '(' => {
                tokens.push(Token::Symbol("("));
                i += 1;
            }
            ')' => {
                tokens.push(Token::Symbol(")"));
                i += 1;
            }
            ',' => {
                tokens.push(Token::Symbol(","));
                i += 1;
            }
            '.' => {
                tokens.push(Token::Symbol("."));
                i += 1;
            }
            '*' => {
                tokens.push(Token::Symbol("*"));
                i += 1;
            }
            '=' => {
                tokens.push(Token::Symbol("="));
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Symbol("<="));
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token::Symbol("<>"));
                    i += 2;
                } else {
                    tokens.push(Token::Symbol("<"));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Symbol(">="));
                    i += 2;
                } else {
                    tokens.push(Token::Symbol(">"));
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Symbol("<>"));
                    i += 2;
                } else {
                    return Err(TokenizeError { message: "unexpected '!'".into(), offset: i });
                }
            }
            '\'' => {
                let mut s = String::new();
                let mut j = i + 1;
                loop {
                    match bytes.get(j) {
                        None => {
                            return Err(TokenizeError {
                                message: "unterminated string literal".into(),
                                offset: i,
                            })
                        }
                        Some(b'\'') => {
                            if bytes.get(j + 1) == Some(&b'\'') {
                                s.push('\'');
                                j += 2;
                            } else {
                                j += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            s.push(b as char);
                            j += 1;
                        }
                    }
                }
                tokens.push(Token::Str(s));
                i = j;
            }
            c if c.is_ascii_digit()
                || (c == '-'
                    && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())
                    && starts_operand_position(&tokens)) =>
            {
                let start = i;
                if c == '-' {
                    i += 1;
                }
                let mut is_float = false;
                while i < bytes.len() {
                    let d = bytes[i] as char;
                    if d.is_ascii_digit() {
                        i += 1;
                    } else if d == '.'
                        && !is_float
                        && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())
                    {
                        is_float = true;
                        i += 1;
                    } else {
                        break;
                    }
                }
                let text = &sql[start..i];
                if is_float {
                    tokens.push(Token::Float(text.parse().map_err(|_| TokenizeError {
                        message: format!("bad float literal '{text}'"),
                        offset: start,
                    })?));
                } else {
                    tokens.push(Token::Int(text.parse().map_err(|_| TokenizeError {
                        message: format!("bad int literal '{text}'"),
                        offset: start,
                    })?));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let d = bytes[i] as char;
                    if d.is_ascii_alphanumeric() || d == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(sql[start..i].to_string()));
            }
            other => {
                return Err(TokenizeError {
                    message: format!("unexpected character '{other}'"),
                    offset: i,
                })
            }
        }
    }
    Ok(tokens)
}

/// Heuristic: a `-` begins a negative literal only where an operand is
/// expected (start, after a symbol other than `)`), never after an
/// identifier or literal.
fn starts_operand_position(tokens: &[Token]) -> bool {
    match tokens.last() {
        None => true,
        Some(Token::Symbol(s)) => *s != ")",
        Some(Token::Ident(_)) => true, // e.g. after a keyword like WHERE/AND
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_simple_select() {
        let toks = tokenize("SELECT COUNT(*) FROM t WHERE t.id < 7").unwrap();
        assert_eq!(toks.len(), 13);
        assert_eq!(toks[0], Token::Ident("SELECT".into()));
        assert_eq!(toks[2], Token::Symbol("("));
        assert_eq!(toks[3], Token::Symbol("*"));
        assert_eq!(toks[9], Token::Symbol("."));
        assert_eq!(toks[12], Token::Int(7));
    }

    #[test]
    fn tokenizes_operators() {
        let toks = tokenize("a <= 1 AND b >= 2 AND c <> 3 AND d != 4").unwrap();
        let syms: Vec<_> = toks
            .iter()
            .filter_map(|t| match t {
                Token::Symbol(s) => Some(*s),
                _ => None,
            })
            .collect();
        assert_eq!(syms, vec!["<=", ">=", "<>", "<>"]);
    }

    #[test]
    fn string_literal_with_escape() {
        let toks = tokenize("name = 'O''Brien'").unwrap();
        assert_eq!(toks[2], Token::Str("O'Brien".into()));
    }

    #[test]
    fn negative_and_float_literals() {
        let toks = tokenize("x > -5 AND y < 2.75").unwrap();
        assert!(toks.contains(&Token::Int(-5)));
        assert!(toks.contains(&Token::Float(2.75)));
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(tokenize("name = 'oops").is_err());
    }

    #[test]
    fn rejects_unknown_character() {
        let err = tokenize("a # b").unwrap_err();
        assert!(err.message.contains('#'));
        assert_eq!(err.offset, 2);
    }
}
