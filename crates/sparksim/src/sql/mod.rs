//! SQL front end: tokenizer, AST and parser.

pub mod ast;
pub mod parser;
pub mod token;
