//! Resource-aware execution-time simulator — the substitute for the
//! paper's real Spark cluster.
//!
//! Given a physical plan, its *true* per-node work metrics (from the
//! executor) and a [`ResourceConfig`], the simulator produces the wall-clock
//! seconds the plan would take on the modelled cluster. The model is
//! stage-based, like Spark:
//!
//! * plans split into **stages** at exchange boundaries; a stage runs
//!   `partitions` tasks in **waves** of `executors × cores` slots;
//! * per-task time combines CPU, disk, shuffle and broadcast terms;
//! * four mechanisms make executor memory **non-monotonic** (the paper's
//!   Sec. III observation):
//!   1. sort/hash operators **spill** when the working set exceeds the
//!      task's memory share — extra disk traffic at *small* memories;
//!   2. **GC/heap management** overhead grows with heap size;
//!   3. the OS **page cache** shrinks as executor memory grows, lowering
//!      the effective scan throughput;
//!   4. executors that no longer fit on the nodes are not scheduled,
//!      shrinking the effective slot count at *large* memories;
//! * broadcast joins pay a collect+distribute term and a steep penalty
//!   when the build side does not fit the broadcast memory cap — this is
//!   what flips the optimal plan as memory varies (paper Fig. 2).
//!
//! Run-to-run variance is modelled by seeded multiplicative log-normal
//! noise.

use crate::exec::NodeMetrics;
use crate::fault::{retry_backoff_s, FaultError, FaultPlan, FaultRng, FaultSummary};
use crate::plan::physical::{NodeId, PhysicalOp, PhysicalPlan};
use crate::resource::{ClusterConfig, ResourceConfig};
use serde::{Deserialize, Serialize};

const GB: f64 = 1024.0 * 1024.0 * 1024.0;
const MB: f64 = 1024.0 * 1024.0;

/// Process-wide job-id sequence for the Spark-style event-log stream:
/// every simulated run is one "job", like one Spark action.
fn next_job_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static JOB_SEQ: AtomicU64 = AtomicU64::new(0);
    // ORDERING: Relaxed — a unique-id counter needs only atomicity of
    // the increment; no other memory is published via this operation.
    JOB_SEQ.fetch_add(1, Ordering::Relaxed)
}

/// Simulator tunables. Defaults are calibrated so that the paper's
/// workload sizes (a few GB) produce the tens-of-seconds query times of
/// its Figs. 1–2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulatorConfig {
    /// Multiplier applied to executed rows/bytes, so a scaled-down
    /// in-memory dataset stands in for the paper's full-size one.
    pub data_scale: f64,
    /// Target bytes per scan partition (Spark's input split size).
    pub bytes_per_partition: f64,
    /// Fraction of executor memory usable by tasks
    /// (`spark.memory.fraction`).
    pub memory_fraction: f64,
    /// Per-executor JVM overhead, GB (counts against node memory).
    pub executor_overhead_gb: f64,
    /// GC overhead per GB of heap at full occupancy (fraction of CPU time).
    pub gc_per_gb: f64,
    /// Fraction of executor memory a broadcast relation may occupy.
    pub broadcast_cap_fraction: f64,
    /// Effective page-cache read throughput, MB/s.
    pub cache_throughput_mbps: f64,
    /// Fixed scheduling overhead per stage, seconds.
    pub stage_overhead_s: f64,
    /// Scheduling overhead per wave, seconds.
    pub wave_overhead_s: f64,
    /// Fixed driver/setup overhead per query, seconds.
    pub driver_overhead_s: f64,
    /// Log-normal noise sigma (0 disables noise).
    pub noise_sigma: f64,
}

impl Default for SimulatorConfig {
    fn default() -> Self {
        Self {
            data_scale: 1.0,
            bytes_per_partition: 512.0 * MB,
            memory_fraction: 0.6,
            executor_overhead_gb: 0.35,
            gc_per_gb: 0.045,
            broadcast_cap_fraction: 0.2,
            cache_throughput_mbps: 2500.0,
            stage_overhead_s: 0.12,
            wave_overhead_s: 0.05,
            driver_overhead_s: 0.35,
            noise_sigma: 0.05,
        }
    }
}

/// Per-row CPU costs in nanoseconds (single core).
#[derive(Debug, Clone, Copy)]
struct CpuCosts {
    scan: f64,
    filter: f64,
    project: f64,
    exchange_write: f64,
    exchange_read: f64,
    sort_per_cmp: f64,
    merge: f64,
    hash_build: f64,
    hash_probe: f64,
    aggregate: f64,
}

const CPU: CpuCosts = CpuCosts {
    scan: 45.0,
    filter: 18.0,
    project: 8.0,
    exchange_write: 38.0,
    exchange_read: 28.0,
    sort_per_cmp: 11.0,
    merge: 32.0,
    hash_build: 72.0,
    hash_probe: 44.0,
    aggregate: 52.0,
};

/// Detailed timing breakdown of one simulated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Total wall-clock seconds (noise included).
    pub seconds: f64,
    /// Seconds per stage, in execution order.
    pub stage_seconds: Vec<f64>,
    /// Total bytes spilled to disk.
    pub spill_bytes: f64,
    /// Total CPU seconds spent in GC-attributed overhead.
    pub gc_seconds: f64,
    /// Executors that actually fit on the cluster.
    pub effective_executors: usize,
    /// Whether any broadcast exceeded its memory cap.
    pub broadcast_overflow: bool,
    /// Page-cache hit fraction applied to scans.
    pub cache_hit: f64,
}

/// A fault-injected run: the timing report plus what the faults did.
///
/// Produced by [`CostSimulator::simulate_report_with_faults`]. The
/// embedded [`SimReport`] already includes every second of recovery cost
/// (retries, backoff, speculation, stage re-attempts); the
/// [`FaultSummary`] breaks down where those seconds came from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultReport {
    /// Timing breakdown with fault/recovery costs folded in.
    pub report: SimReport,
    /// Counts and added seconds per fault class.
    pub faults: FaultSummary,
}

impl FaultReport {
    /// Total wall-clock seconds (noise and recovery included).
    pub fn seconds(&self) -> f64 {
        self.report.seconds
    }
}

/// One pipeline between exchange boundaries.
#[derive(Debug, Default)]
struct Stage {
    /// Non-exchange nodes in the stage.
    nodes: Vec<NodeId>,
    /// Exchanges this stage reads from (its inputs).
    sources: Vec<NodeId>,
    /// Exchange this stage writes into (`None` for the result stage).
    sink: Option<NodeId>,
}

/// Spark's two resource-allocation mechanisms (paper Sec. II-A). Under
/// static allocation the application holds its executors for its whole
/// lifetime; under dynamic allocation idle executors are released between
/// stages and re-acquired on demand, which adds a spin-up delay whenever a
/// stage needs more executors than are currently warm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AllocationMode {
    /// Executors are held for the application lifetime.
    #[default]
    Static,
    /// Executors are released when idle and re-acquired per stage.
    Dynamic,
}

/// Executor spin-up time under dynamic allocation, seconds (JVM start +
/// registration).
pub const EXECUTOR_SPINUP_S: f64 = 1.8;

/// The resource-aware cost simulator.
#[derive(Debug, Clone)]
pub struct CostSimulator {
    cluster: ClusterConfig,
    cfg: SimulatorConfig,
}

impl CostSimulator {
    /// Creates a simulator for a cluster.
    pub fn new(cluster: ClusterConfig, cfg: SimulatorConfig) -> Self {
        Self { cluster, cfg }
    }

    /// The cluster being modelled.
    pub fn cluster(&self) -> &ClusterConfig {
        &self.cluster
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimulatorConfig {
        &self.cfg
    }

    /// Simulates one run and returns only the seconds.
    pub fn simulate(
        &self,
        plan: &PhysicalPlan,
        metrics: &[NodeMetrics],
        res: &ResourceConfig,
        seed: u64,
    ) -> f64 {
        self.simulate_report(plan, metrics, res, seed).seconds
    }

    /// Like [`CostSimulator::simulate_report`], but under a chosen
    /// allocation mode. Dynamic allocation re-acquires executors per
    /// stage: each stage whose task count exceeds one executor's slots
    /// pays a spin-up delay for the extra executors (cold after the
    /// previous stage released them).
    pub fn simulate_report_with_mode(
        &self,
        plan: &PhysicalPlan,
        metrics: &[NodeMetrics],
        res: &ResourceConfig,
        seed: u64,
        mode: AllocationMode,
    ) -> SimReport {
        let mut report = self.simulate_report(plan, metrics, res, seed);
        if mode == AllocationMode::Dynamic && report.effective_executors > 1 {
            let stages = build_stages(plan);
            let mut extra = 0.0;
            for stage in stages.iter().rev() {
                let partitions = self.stage_partitions(plan, stage, metrics, self.cfg.data_scale);
                // Executors needed beyond the single warm one.
                let needed = (partitions as f64 / res.cores_per_executor.max(1) as f64)
                    .ceil()
                    .min(report.effective_executors as f64);
                if needed > 1.0 {
                    // Acquisition overlaps across executors: pay one
                    // spin-up per wave of acquisitions, damped.
                    extra += EXECUTOR_SPINUP_S * (needed - 1.0).sqrt();
                }
            }
            report.seconds += extra;
            let n = report.stage_seconds.len().max(1) as f64;
            for s in &mut report.stage_seconds {
                *s += extra / n;
            }
        }
        report
    }

    /// Simulates one run with a full breakdown.
    pub fn simulate_report(
        &self,
        plan: &PhysicalPlan,
        metrics: &[NodeMetrics],
        res: &ResourceConfig,
        seed: u64,
    ) -> SimReport {
        match self.simulate_inner(plan, metrics, res, seed, None) {
            Ok((report, _)) => report,
            // No fault plan means no retry budget to exhaust.
            Err(_) => unreachable!("fault-free simulation cannot fail"),
        }
    }

    /// Simulates one run under a deterministic [`FaultPlan`].
    ///
    /// Injected executor losses, stragglers, fetch failures and spill
    /// pressure are recovered Spark-style — per-task retry with capped
    /// exponential backoff, speculative execution, stage re-attempt —
    /// and the recovery cost lands in the returned report's seconds.
    /// The run fails with a typed [`FaultError`] (never a hang, never a
    /// panic) once the bounded retry budget is exhausted.
    ///
    /// Determinism: the same `(faults, seed)` pair reproduces the same
    /// failures, the same recovery schedule and the same telemetry
    /// event stream. A zero plan ([`FaultPlan::is_zero`]) produces
    /// output bit-identical to [`CostSimulator::simulate_report`].
    pub fn simulate_report_with_faults(
        &self,
        plan: &PhysicalPlan,
        metrics: &[NodeMetrics],
        res: &ResourceConfig,
        seed: u64,
        faults: &FaultPlan,
    ) -> Result<FaultReport, FaultError> {
        let (report, faults) = self.simulate_inner(plan, metrics, res, seed, Some(faults))?;
        Ok(FaultReport { report, faults })
    }

    fn simulate_inner(
        &self,
        plan: &PhysicalPlan,
        metrics: &[NodeMetrics],
        res: &ResourceConfig,
        seed: u64,
        faults: Option<&FaultPlan>,
    ) -> Result<(SimReport, FaultSummary), FaultError> {
        assert_eq!(plan.len(), metrics.len(), "metrics must align with plan nodes");
        let mut summary = FaultSummary::zero();
        let mut sim_span = telemetry::span("sparksim.simulate");
        sim_span.record("plan_nodes", plan.len() as u64);
        let scale = self.cfg.data_scale;

        // ---- Placement: which executors actually fit. ----
        let usable_node_gb = self.cluster.memory_per_node_gb * 0.92;
        let per_executor_gb = res.memory_per_executor_gb + self.cfg.executor_overhead_gb;
        let max_per_node = (usable_node_gb / per_executor_gb).floor() as usize;
        if max_per_node == 0 {
            // Executors cannot start at all: model as a failed/blocked run.
            return Ok((
                SimReport {
                    seconds: 3600.0,
                    stage_seconds: vec![],
                    spill_bytes: 0.0,
                    gc_seconds: 0.0,
                    effective_executors: 0,
                    broadcast_overflow: false,
                    cache_hit: 0.0,
                },
                summary,
            ));
        }
        let effective_executors = res.executors.min(max_per_node * self.cluster.nodes);
        let nodes_used = effective_executors.min(self.cluster.nodes).max(1);
        let executors_per_node = (effective_executors as f64 / nodes_used as f64).ceil().max(1.0);
        let slots = (effective_executors * res.cores_per_executor).max(1);
        // CPU oversubscription: more concurrent task threads than cores.
        let cpu_slowdown = (executors_per_node * res.cores_per_executor as f64
            / self.cluster.cores_per_node as f64)
            .max(1.0);

        // ---- Page cache: what's left of node memory caches the dataset. ----
        let dataset_bytes: f64 = plan
            .nodes()
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.op, PhysicalOp::FileScan { .. }))
            .map(|(i, _)| metrics[i].bytes_in * scale)
            .sum();
        let cache_gb_total =
            (usable_node_gb - executors_per_node * per_executor_gb).max(0.0) * nodes_used as f64;
        let cache_hit = if dataset_bytes > 0.0 {
            (cache_gb_total * GB / dataset_bytes).clamp(0.0, 0.9)
        } else {
            0.0
        };

        let task_mem_bytes = (res.memory_per_executor_gb * self.cfg.memory_fraction * GB
            / res.cores_per_executor as f64)
            .max(1.0);

        let stages = build_stages(plan);
        let mut stage_seconds = Vec::with_capacity(stages.len());
        let mut spill_total = 0.0;
        let mut gc_total = 0.0;
        let mut broadcast_overflow = false;

        // Spark-mimicking event-log stream: one job per simulated run,
        // stages in execution (leaf-first) order.
        let job_id = if telemetry::enabled() {
            let id = next_job_id();
            telemetry::event(
                "job_start",
                &[
                    ("job_id", telemetry::Value::UInt(id)),
                    ("stages", telemetry::Value::UInt(stages.len() as u64)),
                    ("executors", telemetry::Value::UInt(effective_executors as u64)),
                    ("slots", telemetry::Value::UInt(slots as u64)),
                ],
            );
            Some(id)
        } else {
            None
        };

        // Stages were discovered root-first; execute leaf-first.
        for (stage_id, stage) in stages.iter().rev().enumerate() {
            let partitions = self.stage_partitions(plan, stage, metrics, scale);
            let mut cpu_ns = 0.0; // total across all tasks
            let mut disk_read = 0.0;
            let mut disk_write = 0.0;
            let mut net_read = 0.0;
            let mut fixed_s = 0.0; // per-stage one-off costs (broadcast)
            let mut working_set = 0.0f64; // max per-task working set in stage

            for &id in &stage.nodes {
                let m = &metrics[id];
                let rows_in = m.rows_in * scale;
                let rows_out = m.rows_out * scale;
                let bytes_in = m.bytes_in * scale;
                match &plan.node(id).op {
                    PhysicalOp::FileScan { pushed_filter, .. } => {
                        cpu_ns += rows_in * CPU.scan;
                        if pushed_filter.is_some() {
                            cpu_ns += rows_in * CPU.filter;
                        }
                        disk_read += bytes_in;
                    }
                    PhysicalOp::Filter { .. } => cpu_ns += rows_in * CPU.filter,
                    PhysicalOp::Project { .. } => cpu_ns += rows_in * CPU.project,
                    PhysicalOp::Sort { .. } => {
                        let per_task_rows = (rows_in / partitions as f64).max(2.0);
                        cpu_ns += rows_in * per_task_rows.log2() * CPU.sort_per_cmp;
                        working_set = working_set.max(bytes_in / partitions as f64);
                    }
                    PhysicalOp::SortMergeJoin { .. } => {
                        cpu_ns += rows_in * CPU.merge + rows_out * CPU.project;
                    }
                    PhysicalOp::BroadcastHashJoin { .. } => {
                        // The probe side flows through this stage; the build
                        // side arrives via the BroadcastExchange source.
                        let probe_rows = plan
                            .node(id)
                            .children
                            .first()
                            .map(|&c| metrics[c].rows_out * scale)
                            .unwrap_or(0.0);
                        cpu_ns += probe_rows * CPU.hash_probe + rows_out * CPU.project;
                    }
                    PhysicalOp::ShuffledHashJoin { .. } => {
                        let (probe_rows, build_rows, build_bytes) = {
                            let ch = &plan.node(id).children;
                            let p = ch.first().map(|&c| metrics[c].rows_out * scale).unwrap_or(0.0);
                            let b = ch.get(1).map(|&c| metrics[c].rows_out * scale).unwrap_or(0.0);
                            let bb =
                                ch.get(1).map(|&c| metrics[c].bytes_out * scale).unwrap_or(0.0);
                            (p, b, bb)
                        };
                        cpu_ns += build_rows * CPU.hash_build
                            + probe_rows * CPU.hash_probe
                            + rows_out * CPU.project;
                        working_set = working_set.max(build_bytes / partitions as f64);
                    }
                    PhysicalOp::HashAggregate { .. } => {
                        cpu_ns += rows_in * CPU.aggregate;
                        working_set =
                            working_set.max(metrics[id].bytes_out * scale / partitions as f64);
                    }
                    PhysicalOp::Limit { .. } => cpu_ns += rows_out * CPU.project,
                    // Exchanges never land in `nodes`.
                    PhysicalOp::ExchangeHash { .. }
                    | PhysicalOp::ExchangeSingle
                    | PhysicalOp::BroadcastExchange => unreachable!("exchange inside stage"),
                }
            }

            // Inputs: shuffle reads and broadcasts.
            for &src in &stage.sources {
                let m = &metrics[src];
                let bytes = m.bytes_out * scale;
                let rows = m.rows_out * scale;
                match &plan.node(src).op {
                    PhysicalOp::ExchangeHash { .. } | PhysicalOp::ExchangeSingle => {
                        net_read += bytes;
                        cpu_ns += rows * CPU.exchange_read;
                    }
                    PhysicalOp::BroadcastExchange => {
                        // Collect at driver, ship to every executor, build a
                        // hash relation once per executor (parallel).
                        let collect_s = bytes / (res.network_throughput_mbps * MB);
                        let ship_s = bytes * effective_executors as f64
                            / (res.network_throughput_mbps * MB * nodes_used as f64);
                        let build_s = rows * CPU.hash_build * 1e-9;
                        let mut one_off = collect_s + ship_s + build_s;
                        let cap = self.cfg.broadcast_cap_fraction * res.memory_per_executor_gb * GB;
                        if bytes > cap {
                            // The relation does not fit the broadcast cap:
                            // executors churn (GC storms, retries).
                            let ratio = bytes / cap;
                            one_off *= 1.0 + 3.0 * (ratio - 1.0);
                            disk_write += bytes; // forced to disk
                            broadcast_overflow = true;
                        }
                        fixed_s += one_off;
                    }
                    _ => unreachable!("stage source must be an exchange"),
                }
            }
            // Output: shuffle write.
            let mut shuffle_write = 0.0;
            if let Some(sink) = stage.sink {
                let m = &metrics[sink];
                shuffle_write = m.bytes_out * scale;
                disk_write += shuffle_write;
                cpu_ns += m.rows_out * scale * CPU.exchange_write;
            }

            // Fault injection: spill pressure inflates working sets (skewed
            // partitions, memory-hungry co-tenants), forcing spill at memory
            // sizes that would otherwise be safe. Strictly gated so the
            // fault-free path stays bit-identical.
            if let Some(f) = faults {
                if f.spill_pressure > 1.0 {
                    working_set *= f.spill_pressure;
                }
            }

            // Spill: working set beyond the task's memory share goes to disk
            // once per extra merge pass.
            let spill = (working_set - task_mem_bytes).max(0.0);
            let mut stage_spill = 0.0;
            if spill > 0.0 {
                let passes = (working_set / task_mem_bytes).log2().ceil().max(1.0);
                stage_spill = spill * passes * partitions as f64;
                disk_write += stage_spill;
                disk_read += stage_spill;
                spill_total += stage_spill;
            }

            // GC: grows with heap size and memory pressure.
            let occupancy = (working_set / task_mem_bytes).clamp(0.0, 1.0);
            let gc_factor =
                self.cfg.gc_per_gb * res.memory_per_executor_gb * (0.3 + 0.7 * occupancy);

            let tasks = partitions.max(1);
            let waves = (tasks as f64 / slots as f64).ceil().max(1.0);
            // Bandwidth is shared among the tasks actually running
            // concurrently in this stage, not the theoretical slot count:
            // a single-partition stage gets a node's full bandwidth.
            let stage_concurrency = ((tasks.min(slots)) as f64 / nodes_used as f64).max(1.0);
            let disk_bw = res.disk_throughput_mbps * MB / stage_concurrency;
            let net_bw = res.network_throughput_mbps * MB / stage_concurrency;
            let cache_bw = self.cfg.cache_throughput_mbps * MB / stage_concurrency;
            let cpu_pt = cpu_ns * 1e-9 / tasks as f64 * cpu_slowdown * (1.0 + gc_factor);
            let stage_gc = cpu_ns * 1e-9 * gc_factor;
            gc_total += stage_gc;
            let read_pt = {
                let b = disk_read / tasks as f64;
                (1.0 - cache_hit) * b / disk_bw + cache_hit * b / cache_bw
            };
            let write_pt = disk_write / tasks as f64 / disk_bw;
            let net_pt = net_read / tasks as f64 / net_bw;
            let task_s = cpu_pt + read_pt + write_pt + net_pt;
            let mut stage_s = waves * task_s
                + self.cfg.stage_overhead_s
                + waves * self.cfg.wave_overhead_s
                + fixed_s;

            // Fault injection and Spark-style recovery: strictly additive,
            // so the fault-free path above is untouched.
            if let Some(f) = faults {
                stage_s += self.inject_stage_faults(
                    f,
                    seed,
                    stage_id,
                    job_id.unwrap_or(0),
                    stage,
                    tasks,
                    task_s,
                    stage_s,
                    effective_executors,
                    &mut summary,
                )?;
            }
            stage_seconds.push(stage_s);

            if let Some(job_id) = job_id {
                let rows: f64 = stage.nodes.iter().map(|&id| metrics[id].rows_in * scale).sum();
                // One representative task per stage: every task in a wave
                // is modelled identically, so a single task_end carries
                // the full per-task breakdown.
                telemetry::event(
                    "task_end",
                    &[
                        ("job_id", telemetry::Value::UInt(job_id)),
                        ("stage_id", telemetry::Value::UInt(stage_id as u64)),
                        ("task_id", telemetry::Value::UInt(0)),
                        ("seconds", telemetry::Value::F64(task_s)),
                        ("cpu_seconds", telemetry::Value::F64(cpu_pt)),
                        ("read_seconds", telemetry::Value::F64(read_pt)),
                        ("write_seconds", telemetry::Value::F64(write_pt)),
                        ("net_seconds", telemetry::Value::F64(net_pt)),
                    ],
                );
                telemetry::event(
                    "stage_completed",
                    &[
                        ("job_id", telemetry::Value::UInt(job_id)),
                        ("stage_id", telemetry::Value::UInt(stage_id as u64)),
                        ("tasks", telemetry::Value::UInt(tasks as u64)),
                        ("waves", telemetry::Value::F64(waves)),
                        ("seconds", telemetry::Value::F64(stage_s)),
                        ("rows", telemetry::Value::F64(rows)),
                        ("shuffle_read_bytes", telemetry::Value::F64(net_read)),
                        ("shuffle_write_bytes", telemetry::Value::F64(shuffle_write)),
                        ("spill_bytes", telemetry::Value::F64(stage_spill)),
                        ("gc_seconds", telemetry::Value::F64(stage_gc)),
                    ],
                );
            }
        }

        let mut seconds: f64 = self.cfg.driver_overhead_s + stage_seconds.iter().sum::<f64>();
        if self.cfg.noise_sigma > 0.0 {
            seconds *= lognormal_noise(seed, self.cfg.noise_sigma);
        }
        if let Some(job_id) = job_id {
            telemetry::event(
                "job_end",
                &[
                    ("job_id", telemetry::Value::UInt(job_id)),
                    ("seconds", telemetry::Value::F64(seconds)),
                    ("spill_bytes", telemetry::Value::F64(spill_total)),
                    ("gc_seconds", telemetry::Value::F64(gc_total)),
                    ("effective_executors", telemetry::Value::UInt(effective_executors as u64)),
                    ("cache_hit", telemetry::Value::F64(cache_hit)),
                    ("broadcast_overflow", telemetry::Value::Bool(broadcast_overflow)),
                ],
            );
            telemetry::count("sparksim.jobs.completed", 1);
        }
        sim_span.record("stages", stage_seconds.len() as u64);
        Ok((
            SimReport {
                seconds,
                stage_seconds,
                spill_bytes: spill_total,
                gc_seconds: gc_total,
                effective_executors,
                broadcast_overflow,
                cache_hit,
            },
            summary,
        ))
    }

    /// Applies one stage's injected faults and their recovery, returning
    /// the wall-clock seconds added to the stage.
    ///
    /// Every loop here is bounded by the recovery budget
    /// ([`crate::fault::RecoveryConfig`]), so the call always terminates
    /// — with the added cost, or with a typed [`FaultError`] once the
    /// budget is exhausted. Each fault class draws from its own
    /// [`FaultRng`] lane keyed by `(fault seed, run seed, stage, class)`,
    /// so decisions are reproducible and independent across classes.
    #[allow(clippy::too_many_arguments)]
    fn inject_stage_faults(
        &self,
        f: &FaultPlan,
        seed: u64,
        stage_id: usize,
        job_id: u64,
        stage: &Stage,
        tasks: usize,
        task_s: f64,
        base_stage_s: f64,
        effective_executors: usize,
        summary: &mut FaultSummary,
    ) -> Result<f64, FaultError> {
        /// Sampling bound for per-task straggler draws on huge stages.
        const STRAGGLER_SAMPLE: usize = 16_384;
        let rec = &f.recovery;
        let mut extra = 0.0f64;
        let lane = |class: u64| FaultRng::lane(f.seed, seed, ((stage_id as u64) << 3) | class);

        // ---- Stragglers: slow tasks extend the stage's last wave; with
        // speculation a backup copy races the straggler and the stage
        // takes the earlier finisher.
        if f.straggler_rate > 0.0 && f.straggler_multiplier > 1.0 && task_s > 0.0 {
            let mut rng = lane(0);
            let mut stragglers = 0u32;
            for _ in 0..tasks.min(STRAGGLER_SAMPLE) {
                if rng.chance(f.straggler_rate) {
                    stragglers += 1;
                }
            }
            if tasks > STRAGGLER_SAMPLE {
                // Huge stages are sampled; scale the count back up.
                stragglers =
                    (f64::from(stragglers) * tasks as f64 / STRAGGLER_SAMPLE as f64).round() as u32;
            }
            if stragglers > 0 {
                summary.stragglers += stragglers;
                let slow_s = task_s * f.straggler_multiplier;
                // The backup launches once the straggler exceeds the
                // speculation threshold and then needs a fresh task time.
                let backup_done_s = task_s * rec.speculation_multiplier + task_s;
                let effective_s = if rec.speculation && backup_done_s < slow_s {
                    summary.speculative_launches += stragglers;
                    telemetry::event(
                        "speculative_launch",
                        &[
                            ("job_id", telemetry::Value::UInt(job_id)),
                            ("stage_id", telemetry::Value::UInt(stage_id as u64)),
                            ("copies", telemetry::Value::UInt(u64::from(stragglers))),
                            (
                                "threshold_s",
                                telemetry::Value::F64(task_s * rec.speculation_multiplier),
                            ),
                        ],
                    );
                    backup_done_s
                } else {
                    slow_s
                };
                extra += effective_s - task_s;
            }
        }

        // ---- Executor loss: each lost executor's in-flight tasks fail
        // and are re-launched after capped exponential backoff
        // (`spark.task.maxFailures` semantics); the replacement executor
        // pays its spin-up.
        if f.executor_failure_rate > 0.0 && effective_executors > 0 && task_s > 0.0 {
            let mut rng = lane(1);
            for exec_id in 0..effective_executors {
                if !rng.chance(f.executor_failure_rate) {
                    continue;
                }
                summary.executor_failures += 1;
                telemetry::event(
                    "executor_failed",
                    &[
                        ("job_id", telemetry::Value::UInt(job_id)),
                        ("stage_id", telemetry::Value::UInt(stage_id as u64)),
                        ("executor", telemetry::Value::UInt(exec_id as u64)),
                    ],
                );
                let mut attempt: u32 = 1;
                loop {
                    // The failed attempt's task_end, with failure reason —
                    // the learnable signal a real event log would carry.
                    telemetry::event(
                        "task_end",
                        &[
                            ("job_id", telemetry::Value::UInt(job_id)),
                            ("stage_id", telemetry::Value::UInt(stage_id as u64)),
                            ("task_id", telemetry::Value::UInt(exec_id as u64)),
                            ("attempt", telemetry::Value::UInt(u64::from(attempt))),
                            ("failed", telemetry::Value::Bool(true)),
                            ("reason", telemetry::Value::Str("executor_lost".into())),
                        ],
                    );
                    if attempt >= rec.max_task_attempts {
                        return Err(FaultError::TaskRetriesExhausted {
                            stage: stage_id,
                            attempts: attempt,
                        });
                    }
                    let backoff_s = retry_backoff_s(rec, attempt);
                    summary.task_retries += 1;
                    telemetry::event(
                        "task_retry",
                        &[
                            ("job_id", telemetry::Value::UInt(job_id)),
                            ("stage_id", telemetry::Value::UInt(stage_id as u64)),
                            ("attempt", telemetry::Value::UInt(u64::from(attempt + 1))),
                            ("backoff_s", telemetry::Value::F64(backoff_s)),
                        ],
                    );
                    extra += backoff_s + task_s;
                    attempt += 1;
                    // Does the re-launched attempt fail too?
                    if !rng.chance(f.executor_failure_rate) {
                        break;
                    }
                }
                extra += EXECUTOR_SPINUP_S;
            }
        }

        // ---- Fetch failure: a shuffle-fed stage whose fetch fails
        // re-attempts wholesale, like Spark on FetchFailedException.
        if f.fetch_failure_rate > 0.0 && !stage.sources.is_empty() {
            let mut rng = lane(2);
            let mut attempt: u32 = 1;
            while rng.chance(f.fetch_failure_rate) {
                if attempt >= rec.max_stage_attempts {
                    return Err(FaultError::StageAttemptsExhausted {
                        stage: stage_id,
                        attempts: attempt,
                    });
                }
                attempt += 1;
                summary.stage_reattempts += 1;
                telemetry::event(
                    "stage_reattempt",
                    &[
                        ("job_id", telemetry::Value::UInt(job_id)),
                        ("stage_id", telemetry::Value::UInt(stage_id as u64)),
                        ("attempt", telemetry::Value::UInt(u64::from(attempt))),
                        ("reason", telemetry::Value::Str("fetch_failed".into())),
                    ],
                );
                extra += base_stage_s;
            }
        }

        summary.extra_seconds += extra;
        Ok(extra)
    }

    fn stage_partitions(
        &self,
        plan: &PhysicalPlan,
        stage: &Stage,
        metrics: &[NodeMetrics],
        scale: f64,
    ) -> usize {
        // Shuffle-fed stages inherit the exchange's partitioning.
        let mut from_exchange: Option<usize> = None;
        for &src in &stage.sources {
            match &plan.node(src).op {
                PhysicalOp::ExchangeHash { partitions, .. } => {
                    from_exchange =
                        Some(from_exchange.map_or(*partitions, |p: usize| p.max(*partitions)));
                }
                PhysicalOp::ExchangeSingle => {
                    from_exchange = Some(from_exchange.map_or(1, |p: usize| p.max(1)));
                }
                PhysicalOp::BroadcastExchange => {}
                _ => {}
            }
        }
        if let Some(p) = from_exchange {
            return p.max(1);
        }
        // Leaf stages: partitions follow the input split size.
        let scan_bytes: f64 = stage
            .nodes
            .iter()
            .filter(|&&id| matches!(plan.node(id).op, PhysicalOp::FileScan { .. }))
            .map(|&id| metrics[id].bytes_in * scale)
            .sum();
        ((scan_bytes / self.cfg.bytes_per_partition).ceil() as usize).max(1)
    }
}

/// Splits a plan into stages at exchange boundaries, root stage first.
fn build_stages(plan: &PhysicalPlan) -> Vec<Stage> {
    let mut stages: Vec<Stage> = vec![Stage::default()];
    // Work list of (node, stage index).
    let mut work = vec![(plan.root(), 0usize)];
    while let Some((id, si)) = work.pop() {
        if plan.node(id).op.is_exchange() {
            stages[si].sources.push(id);
            let new_si = stages.len();
            stages.push(Stage { sink: Some(id), ..Stage::default() });
            for &c in &plan.node(id).children {
                work.push((c, new_si));
            }
        } else {
            stages[si].nodes.push(id);
            for &c in &plan.node(id).children {
                work.push((c, si));
            }
        }
    }
    stages
}

/// Deterministic multiplicative log-normal noise from a seed (Box–Muller
/// over a splitmix64 stream).
fn lognormal_noise(seed: u64, sigma: f64) -> f64 {
    let mut s = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = move || {
        s = s.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    let u1 = ((next() >> 11) as f64 / (1u64 << 53) as f64).max(1e-12);
    let u2 = (next() >> 11) as f64 / (1u64 << 53) as f64;
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (sigma * z).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::physical::{AggMode, PhysicalOp, PhysicalPlan};
    use crate::plan::spec::AggSpec;
    use crate::schema::ColumnRef;
    use crate::sql::ast::AggFunc;

    fn cluster() -> ClusterConfig {
        ClusterConfig::default()
    }

    fn res(executors: usize, cores: usize, mem: f64) -> ResourceConfig {
        ResourceConfig {
            executors,
            cores_per_executor: cores,
            memory_per_executor_gb: mem,
            network_throughput_mbps: 120.0,
            disk_throughput_mbps: 200.0,
        }
    }

    /// scan -> partial agg -> exchange single -> final agg
    fn agg_plan() -> (PhysicalPlan, Vec<NodeMetrics>) {
        let mut p = PhysicalPlan::new();
        let scan = p.add(
            PhysicalOp::FileScan {
                binding: "t".into(),
                table: "t".into(),
                output: vec![ColumnRef::new("t", "id")],
                pushed_filter: None,
            },
            vec![],
            1e6,
            8e6,
        );
        let aggs = vec![AggSpec { func: AggFunc::Count, arg: None }];
        let partial = p.add(
            PhysicalOp::HashAggregate {
                mode: AggMode::Partial,
                group_by: vec![],
                aggs: aggs.clone(),
            },
            vec![scan],
            1.0,
            8.0,
        );
        let ex = p.add(PhysicalOp::ExchangeSingle, vec![partial], 1.0, 8.0);
        p.add(
            PhysicalOp::HashAggregate { mode: AggMode::Final, group_by: vec![], aggs },
            vec![ex],
            1.0,
            8.0,
        );
        let metrics = vec![
            NodeMetrics {
                rows_out: 1e6,
                bytes_out: 8e6,
                rows_in: 1e6,
                bytes_in: 8e6,
            },
            NodeMetrics {
                rows_out: 1.0,
                bytes_out: 8.0,
                rows_in: 1e6,
                bytes_in: 8e6,
            },
            NodeMetrics {
                rows_out: 1.0,
                bytes_out: 8.0,
                rows_in: 1.0,
                bytes_in: 8.0,
            },
            NodeMetrics {
                rows_out: 1.0,
                bytes_out: 8.0,
                rows_in: 1.0,
                bytes_in: 8.0,
            },
        ];
        (p, metrics)
    }

    #[test]
    fn stages_split_at_exchanges() {
        let (p, _) = agg_plan();
        let stages = build_stages(&p);
        assert_eq!(stages.len(), 2);
        // Root stage reads from the exchange; leaf stage writes into it.
        assert_eq!(stages[0].sources.len(), 1);
        assert_eq!(stages[1].sink, Some(stages[0].sources[0]));
    }

    #[test]
    fn simulation_is_deterministic_per_seed() {
        let (p, m) = agg_plan();
        let sim = CostSimulator::new(cluster(), SimulatorConfig::default());
        let r = res(2, 2, 4.0);
        assert_eq!(sim.simulate(&p, &m, &r, 7), sim.simulate(&p, &m, &r, 7));
        assert_ne!(sim.simulate(&p, &m, &r, 7), sim.simulate(&p, &m, &r, 8));
    }

    #[test]
    fn more_executors_do_not_hurt_a_parallel_scan() {
        let (p, mut m) = agg_plan();
        // A large scan that splits into many partitions.
        m[0].bytes_in = 8.0 * GB / SimulatorConfig::default().data_scale;
        m[0].rows_in = 1e8;
        let cfg = SimulatorConfig { noise_sigma: 0.0, ..SimulatorConfig::default() };
        let sim = CostSimulator::new(cluster(), cfg);
        let slow = sim.simulate(&p, &m, &res(1, 1, 2.0), 0);
        let fast = sim.simulate(&p, &m, &res(4, 2, 2.0), 0);
        assert!(fast < slow, "8 slots ({fast}s) should beat 1 slot ({slow}s)");
    }

    #[test]
    fn oversized_memory_prevents_placement() {
        let (p, m) = agg_plan();
        let sim = CostSimulator::new(cluster(), SimulatorConfig::default());
        let report = sim.simulate_report(&p, &m, &res(2, 2, 64.0), 0);
        assert_eq!(report.effective_executors, 0);
        assert!(report.seconds >= 3600.0);
    }

    #[test]
    fn large_memory_reduces_effective_executors() {
        let (p, m) = agg_plan();
        let cfg = SimulatorConfig { noise_sigma: 0.0, ..SimulatorConfig::default() };
        let sim = CostSimulator::new(cluster(), cfg);
        // 8 executors x 12 GB cannot fit on 4 x 16 GB nodes.
        let report = sim.simulate_report(&p, &m, &res(8, 2, 12.0), 0);
        assert!(report.effective_executors < 8);
    }

    #[test]
    fn broadcast_overflow_is_penalised() {
        let mut p = PhysicalPlan::new();
        let probe = p.add(
            PhysicalOp::FileScan {
                binding: "l".into(),
                table: "l".into(),
                output: vec![ColumnRef::new("l", "id")],
                pushed_filter: None,
            },
            vec![],
            1e6,
            8e6,
        );
        let build = p.add(
            PhysicalOp::FileScan {
                binding: "r".into(),
                table: "r".into(),
                output: vec![ColumnRef::new("r", "id")],
                pushed_filter: None,
            },
            vec![],
            1e6,
            8e6,
        );
        let bex = p.add(PhysicalOp::BroadcastExchange, vec![build], 1e6, 8e6);
        p.add(
            PhysicalOp::BroadcastHashJoin {
                probe_key: ColumnRef::new("l", "id"),
                build_key: ColumnRef::new("r", "id"),
            },
            vec![probe, bex],
            1e6,
            1.6e7,
        );
        let big = 2.0 * GB;
        let metrics = vec![
            NodeMetrics {
                rows_out: 1e6,
                bytes_out: 8e6,
                rows_in: 1e6,
                bytes_in: 8e6,
            },
            NodeMetrics {
                rows_out: 1e7,
                bytes_out: big,
                rows_in: 1e7,
                bytes_in: big,
            },
            NodeMetrics {
                rows_out: 1e7,
                bytes_out: big,
                rows_in: 1e7,
                bytes_in: big,
            },
            NodeMetrics {
                rows_out: 1e6,
                bytes_out: 1.6e7,
                rows_in: 1.1e7,
                bytes_in: big + 8e6,
            },
        ];
        let cfg = SimulatorConfig { noise_sigma: 0.0, ..SimulatorConfig::default() };
        let sim = CostSimulator::new(cluster(), cfg);
        // 1 GB executors: a 2 GB broadcast blows the cap.
        let small = sim.simulate_report(&p, &metrics, &res(2, 2, 1.0), 0);
        assert!(small.broadcast_overflow);
        // 12 GB executors (cap 2.4 GB): it fits.
        let large = sim.simulate_report(&p, &metrics, &res(2, 2, 12.0), 0);
        assert!(!large.broadcast_overflow);
        assert!(large.seconds < small.seconds);
    }

    #[test]
    fn gc_grows_with_heap() {
        let (p, mut m) = agg_plan();
        m[0].bytes_in = 4.0 * GB;
        m[0].rows_in = 5e7;
        let cfg = SimulatorConfig { noise_sigma: 0.0, ..SimulatorConfig::default() };
        let sim = CostSimulator::new(cluster(), cfg);
        let small = sim.simulate_report(&p, &m, &res(2, 2, 1.0), 0);
        let large = sim.simulate_report(&p, &m, &res(2, 2, 8.0), 0);
        assert!(large.gc_seconds > small.gc_seconds);
    }

    #[test]
    fn dynamic_allocation_adds_spinup_only_for_parallel_stages() {
        let (p, mut m) = agg_plan();
        m[0].bytes_in = 8.0 * GB;
        m[0].rows_in = 1e8;
        let cfg = SimulatorConfig { noise_sigma: 0.0, ..SimulatorConfig::default() };
        let sim = CostSimulator::new(cluster(), cfg);
        let r = res(4, 2, 4.0);
        let stat = sim
            .simulate_report_with_mode(&p, &m, &r, 0, AllocationMode::Static)
            .seconds;
        let dynamic = sim
            .simulate_report_with_mode(&p, &m, &r, 0, AllocationMode::Dynamic)
            .seconds;
        assert!(dynamic > stat, "dynamic pays executor spin-up: {stat} vs {dynamic}");
        // A single-executor app has nothing to re-acquire.
        let r1 = res(1, 2, 4.0);
        let stat1 = sim
            .simulate_report_with_mode(&p, &m, &r1, 0, AllocationMode::Static)
            .seconds;
        let dyn1 = sim
            .simulate_report_with_mode(&p, &m, &r1, 0, AllocationMode::Dynamic)
            .seconds;
        assert_eq!(stat1, dyn1);
    }

    #[test]
    fn noise_is_small_and_multiplicative() {
        for seed in 0..50 {
            let f = lognormal_noise(seed, 0.05);
            assert!(f > 0.7 && f < 1.4, "noise factor {f} out of range");
        }
    }
}
