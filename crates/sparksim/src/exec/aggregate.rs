//! Hash aggregation: partial (map-side) and final (reduce-side) modes,
//! mirroring how Spark splits aggregates around an exchange.
//!
//! Partial mode folds raw input rows into per-group accumulators and emits
//! internal accumulator columns (qualified under the `#agg` pseudo-table).
//! Final mode merges those accumulator columns and emits the user-visible
//! aggregate values.

use super::{exec_err, ExecError, KeyValue};
use crate::batch::Batch;
use crate::plan::physical::AggMode;
use crate::plan::spec::AggSpec;
use crate::schema::ColumnRef;
use crate::sql::ast::AggFunc;
use crate::storage::{Column, ColumnData, StrColumnBuilder};
use crate::types::Value;
use std::collections::HashMap;

/// Pseudo-table qualifier for internal accumulator columns.
pub const AGG_TABLE: &str = "#agg";

/// Executes one aggregation node.
pub fn execute_aggregate(
    input: &Batch,
    mode: AggMode,
    group_by: &[ColumnRef],
    aggs: &[AggSpec],
) -> Result<Batch, ExecError> {
    match mode {
        AggMode::Partial => partial(input, group_by, aggs),
        AggMode::Final => final_merge(input, group_by, aggs),
    }
}

#[derive(Debug, Clone)]
enum Acc {
    Count(i64),
    Sum { sum: f64, any: bool },
    MinMax { best: Option<Value>, is_min: bool },
    Avg { sum: f64, count: i64 },
}

impl Acc {
    fn new(spec: &AggSpec) -> Acc {
        match spec.func {
            AggFunc::Count => Acc::Count(0),
            AggFunc::Sum => Acc::Sum { sum: 0.0, any: false },
            AggFunc::Min => Acc::MinMax { best: None, is_min: true },
            AggFunc::Max => Acc::MinMax { best: None, is_min: false },
            AggFunc::Avg => Acc::Avg { sum: 0.0, count: 0 },
        }
    }

    fn update(&mut self, value: Option<&Value>) {
        match self {
            Acc::Count(c) => {
                // COUNT(*) (value = None) counts rows; COUNT(col) counts
                // non-NULL values.
                match value {
                    None => *c += 1,
                    Some(v) if !v.is_null() => *c += 1,
                    _ => {}
                }
            }
            Acc::Sum { sum, any } => {
                if let Some(x) = value.and_then(|v| v.as_f64()) {
                    *sum += x;
                    *any = true;
                }
            }
            Acc::MinMax { best, is_min } => {
                let Some(v) = value else { return };
                if v.is_null() {
                    return;
                }
                let better = match best {
                    None => true,
                    Some(b) => match v.sql_cmp(b) {
                        Some(ord) => {
                            if *is_min {
                                ord == std::cmp::Ordering::Less
                            } else {
                                ord == std::cmp::Ordering::Greater
                            }
                        }
                        None => false,
                    },
                };
                if better {
                    *best = Some(v.clone());
                }
            }
            Acc::Avg { sum, count } => {
                if let Some(x) = value.and_then(|v| v.as_f64()) {
                    *sum += x;
                    *count += 1;
                }
            }
        }
    }
}

/// Group index preserving first-seen order.
struct Groups {
    keys: Vec<Vec<KeyValue>>,
    index: HashMap<Vec<KeyValue>, usize>,
}

impl Groups {
    fn new() -> Self {
        Self { keys: Vec::new(), index: HashMap::new() }
    }

    fn get_or_insert(&mut self, key: Vec<KeyValue>) -> usize {
        if let Some(&i) = self.index.get(&key) {
            return i;
        }
        let i = self.keys.len();
        self.index.insert(key.clone(), i);
        self.keys.push(key);
        i
    }
}

fn group_key(
    batch: &Batch,
    group_by: &[ColumnRef],
    row: usize,
) -> Result<Vec<KeyValue>, ExecError> {
    group_by
        .iter()
        .map(|re| {
            batch
                .column(re)
                .map(|c| KeyValue::from_value(&c.value(row)))
                .ok_or_else(|| ExecError {
                    message: format!("aggregate input is missing group column {re}"),
                })
        })
        .collect()
}

fn partial(input: &Batch, group_by: &[ColumnRef], aggs: &[AggSpec]) -> Result<Batch, ExecError> {
    let mut groups = Groups::new();
    let mut accs: Vec<Vec<Acc>> = Vec::new();
    let arg_cols: Vec<Option<&Column>> = aggs
        .iter()
        .map(|a| a.arg.as_ref().and_then(|c| input.column(c)))
        .collect();
    for (a, col) in aggs.iter().zip(&arg_cols) {
        if let (Some(arg), None) = (&a.arg, col) {
            return exec_err(format!("aggregate input is missing argument column {arg}"));
        }
    }

    for row in 0..input.num_rows() {
        let key = group_key(input, group_by, row)?;
        let g = groups.get_or_insert(key);
        if g == accs.len() {
            accs.push(aggs.iter().map(Acc::new).collect());
        }
        for (ai, acc) in accs[g].iter_mut().enumerate() {
            let value = arg_cols[ai].map(|c| c.value(row));
            acc.update(value.as_ref());
        }
    }
    // A global aggregate over empty input still yields one (empty) group.
    if group_by.is_empty() && groups.keys.is_empty() {
        groups.get_or_insert(vec![]);
        accs.push(aggs.iter().map(Acc::new).collect());
    }

    let mut out = Batch::new();
    emit_group_columns(&mut out, group_by, &groups);
    for (ai, spec) in aggs.iter().enumerate() {
        match spec.func {
            AggFunc::Count => {
                let vals: Vec<Value> = accs
                    .iter()
                    .map(|a| match &a[ai] {
                        Acc::Count(c) => Value::Int(*c),
                        _ => unreachable!(),
                    })
                    .collect();
                out.push(acc_ref(ai, "count"), column_from_values(&vals));
            }
            AggFunc::Sum => {
                let vals: Vec<Value> = accs
                    .iter()
                    .map(|a| match &a[ai] {
                        Acc::Sum { sum, any } => {
                            if *any {
                                Value::Float(*sum)
                            } else {
                                Value::Null
                            }
                        }
                        _ => unreachable!(),
                    })
                    .collect();
                out.push(acc_ref(ai, "sum"), column_from_values(&vals));
            }
            AggFunc::Min | AggFunc::Max => {
                let tag = if spec.func == AggFunc::Min {
                    "min"
                } else {
                    "max"
                };
                let vals: Vec<Value> = accs
                    .iter()
                    .map(|a| match &a[ai] {
                        Acc::MinMax { best, .. } => best.clone().unwrap_or(Value::Null),
                        _ => unreachable!(),
                    })
                    .collect();
                out.push(acc_ref(ai, tag), column_from_values(&vals));
            }
            AggFunc::Avg => {
                let sums: Vec<Value> = accs
                    .iter()
                    .map(|a| match &a[ai] {
                        Acc::Avg { sum, .. } => Value::Float(*sum),
                        _ => unreachable!(),
                    })
                    .collect();
                let counts: Vec<Value> = accs
                    .iter()
                    .map(|a| match &a[ai] {
                        Acc::Avg { count, .. } => Value::Int(*count),
                        _ => unreachable!(),
                    })
                    .collect();
                out.push(acc_ref(ai, "avg_sum"), column_from_values(&sums));
                out.push(acc_ref(ai, "avg_count"), column_from_values(&counts));
            }
        }
    }
    Ok(out)
}

fn final_merge(
    input: &Batch,
    group_by: &[ColumnRef],
    aggs: &[AggSpec],
) -> Result<Batch, ExecError> {
    let mut groups = Groups::new();
    // Per group, per agg: merged state as (f64 sum, i64 count, Option<Value> best, bool any).
    let mut merged: Vec<Vec<Acc>> = Vec::new();

    for row in 0..input.num_rows() {
        let key = group_key(input, group_by, row)?;
        let g = groups.get_or_insert(key);
        if g == merged.len() {
            merged.push(aggs.iter().map(Acc::new).collect());
        }
        for (ai, spec) in aggs.iter().enumerate() {
            match spec.func {
                AggFunc::Count => {
                    let v = fetch(input, ai, "count", row)?;
                    let Acc::Count(c) = &mut merged[g][ai] else {
                        unreachable!("accumulator/function mismatch")
                    };
                    *c += v.as_i64().unwrap_or(0);
                }
                AggFunc::Sum => {
                    let v = fetch(input, ai, "sum", row)?;
                    let Acc::Sum { sum, any } = &mut merged[g][ai] else {
                        unreachable!("accumulator/function mismatch")
                    };
                    if let Some(x) = v.as_f64() {
                        *sum += x;
                        *any = true;
                    }
                }
                AggFunc::Min | AggFunc::Max => {
                    let tag = if spec.func == AggFunc::Min {
                        "min"
                    } else {
                        "max"
                    };
                    let v = fetch(input, ai, tag, row)?;
                    merged[g][ai].update(Some(&v));
                }
                AggFunc::Avg => {
                    let s = fetch(input, ai, "avg_sum", row)?;
                    let c = fetch(input, ai, "avg_count", row)?;
                    let Acc::Avg { sum, count } = &mut merged[g][ai] else {
                        unreachable!("accumulator/function mismatch")
                    };
                    *sum += s.as_f64().unwrap_or(0.0);
                    *count += c.as_i64().unwrap_or(0);
                }
            }
        }
    }
    if group_by.is_empty() && groups.keys.is_empty() {
        groups.get_or_insert(vec![]);
        merged.push(aggs.iter().map(Acc::new).collect());
    }

    let mut out = Batch::new();
    emit_group_columns(&mut out, group_by, &groups);
    for (ai, _spec) in aggs.iter().enumerate() {
        let vals: Vec<Value> = merged
            .iter()
            .map(|a| match &a[ai] {
                Acc::Count(c) => Value::Int(*c),
                Acc::Sum { sum, any } => {
                    if *any {
                        Value::Float(*sum)
                    } else {
                        Value::Null
                    }
                }
                Acc::MinMax { best, .. } => best.clone().unwrap_or(Value::Null),
                Acc::Avg { sum, count } => {
                    if *count > 0 {
                        Value::Float(*sum / *count as f64)
                    } else {
                        Value::Null
                    }
                }
            })
            .collect();
        out.push(ColumnRef::new(AGG_TABLE, format!("a{ai}")), column_from_values(&vals));
    }
    Ok(out)
}

fn fetch(input: &Batch, ai: usize, tag: &str, row: usize) -> Result<Value, ExecError> {
    let re = acc_ref(ai, tag);
    input.column(&re).map(|c| c.value(row)).ok_or_else(|| ExecError {
        message: format!("final aggregate expects partial column {re}"),
    })
}

fn acc_ref(ai: usize, tag: &str) -> ColumnRef {
    ColumnRef::new(AGG_TABLE, format!("a{ai}_{tag}"))
}

fn emit_group_columns(out: &mut Batch, group_by: &[ColumnRef], groups: &Groups) {
    for (gi, re) in group_by.iter().enumerate() {
        let vals: Vec<Value> = groups.keys.iter().map(|k| k[gi].to_value()).collect();
        out.push(re.clone(), column_from_values(&vals));
    }
}

/// Builds a column from scalars, inferring the type from the first
/// non-NULL value (Int for all-NULL).
fn column_from_values(values: &[Value]) -> Column {
    let kind = values
        .iter()
        .find(|v| !v.is_null())
        .and_then(Value::data_type)
        .unwrap_or(crate::types::DataType::Int);
    match kind {
        crate::types::DataType::Int => {
            let data: Vec<i64> = values.iter().map(|v| v.as_i64().unwrap_or(0)).collect();
            let any_null = values.iter().any(Value::is_null);
            Column {
                data: ColumnData::Int(data),
                validity: any_null.then(|| values.iter().map(|v| !v.is_null()).collect()),
            }
        }
        crate::types::DataType::Float => {
            let data: Vec<f64> = values.iter().map(|v| v.as_f64().unwrap_or(0.0)).collect();
            let any_null = values.iter().any(Value::is_null);
            Column {
                data: ColumnData::Float(data),
                validity: any_null.then(|| values.iter().map(|v| !v.is_null()).collect()),
            }
        }
        crate::types::DataType::Str => {
            let mut b = StrColumnBuilder::new();
            for v in values {
                match v.as_str() {
                    Some(s) => b.push(s),
                    None => b.push_null(),
                }
            }
            b.finish()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input() -> Batch {
        let mut b = Batch::new();
        b.push(ColumnRef::new("t", "g"), Column::non_null(ColumnData::Int(vec![1, 1, 2, 2, 2])));
        b.push(
            ColumnRef::new("t", "x"),
            Column {
                data: ColumnData::Int(vec![10, 20, 30, 40, 0]),
                validity: Some(vec![true, true, true, true, false]),
            },
        );
        b
    }

    fn count_star() -> AggSpec {
        AggSpec { func: AggFunc::Count, arg: None }
    }

    fn agg(func: AggFunc) -> AggSpec {
        AggSpec { func, arg: Some(ColumnRef::new("t", "x")) }
    }

    fn round_trip(group_by: &[ColumnRef], aggs: &[AggSpec]) -> Batch {
        let p = partial(&input(), group_by, aggs).unwrap();
        final_merge(&p, group_by, aggs).unwrap()
    }

    #[test]
    fn global_count_star() {
        let out = round_trip(&[], &[count_star()]);
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.entries()[0].1.value(0).as_i64(), Some(5));
    }

    #[test]
    fn count_column_skips_nulls() {
        let out = round_trip(&[], &[agg(AggFunc::Count)]);
        assert_eq!(out.entries()[0].1.value(0).as_i64(), Some(4));
    }

    #[test]
    fn grouped_count_and_sum() {
        let g = vec![ColumnRef::new("t", "g")];
        let out = round_trip(&g, &[count_star(), agg(AggFunc::Sum)]);
        assert_eq!(out.num_rows(), 2);
        let gcol = out.column(&ColumnRef::new("t", "g")).unwrap();
        let ccol = out.column(&ColumnRef::new(AGG_TABLE, "a0")).unwrap();
        let scol = out.column(&ColumnRef::new(AGG_TABLE, "a1")).unwrap();
        // First-seen order: group 1 then group 2.
        assert_eq!(gcol.value(0).as_i64(), Some(1));
        assert_eq!(ccol.value(0).as_i64(), Some(2));
        assert_eq!(scol.value(0).as_f64(), Some(30.0));
        assert_eq!(ccol.value(1).as_i64(), Some(3));
        assert_eq!(scol.value(1).as_f64(), Some(70.0));
    }

    #[test]
    fn min_max_avg() {
        let out = round_trip(&[], &[agg(AggFunc::Min), agg(AggFunc::Max), agg(AggFunc::Avg)]);
        let min = out.column(&ColumnRef::new(AGG_TABLE, "a0")).unwrap();
        let max = out.column(&ColumnRef::new(AGG_TABLE, "a1")).unwrap();
        let avg = out.column(&ColumnRef::new(AGG_TABLE, "a2")).unwrap();
        assert_eq!(min.value(0).as_i64(), Some(10));
        assert_eq!(max.value(0).as_i64(), Some(40));
        assert_eq!(avg.value(0).as_f64(), Some(25.0));
    }

    #[test]
    fn empty_input_global_aggregate_yields_one_row() {
        let empty = {
            let mut b = Batch::new();
            b.push(ColumnRef::new("t", "x"), Column::non_null(ColumnData::Int(vec![])));
            b
        };
        let aggs = [count_star(), agg(AggFunc::Sum)];
        let p = partial(&empty, &[], &aggs).unwrap();
        let out = final_merge(&p, &[], &aggs).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.entries()[0].1.value(0).as_i64(), Some(0));
        assert!(out.entries()[1].1.value(0).is_null(), "SUM of nothing is NULL");
    }

    #[test]
    fn null_group_keys_form_one_group() {
        let mut b = Batch::new();
        b.push(
            ColumnRef::new("t", "g"),
            Column {
                data: ColumnData::Int(vec![0, 0, 1]),
                validity: Some(vec![false, false, true]),
            },
        );
        let g = vec![ColumnRef::new("t", "g")];
        let aggs = [count_star()];
        let p = partial(&b, &g, &aggs).unwrap();
        let out = final_merge(&p, &g, &aggs).unwrap();
        assert_eq!(out.num_rows(), 2, "NULL group plus group 1");
    }

    #[test]
    fn final_without_partial_columns_errors() {
        let res = final_merge(&input(), &[], &[count_star()]);
        assert!(res.is_err());
    }
}
