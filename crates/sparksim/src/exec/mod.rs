//! Vectorised plan interpreter.
//!
//! Executes a [`PhysicalPlan`] over the catalog's in-memory tables,
//! producing both the result batch and per-node work metrics
//! ([`NodeMetrics`]) — true output cardinalities and byte volumes. The
//! resource-aware time simulator converts those metrics into execution
//! time; the executor itself is resource-agnostic (it computes the *what*,
//! the simulator computes the *how long*).

mod aggregate;
mod join;
pub mod reference;

use crate::batch::Batch;
use crate::catalog::Catalog;
use crate::plan::physical::{NodeId, PhysicalOp, PhysicalPlan};
use crate::schema::ColumnRef;
use crate::types::Value;
use std::fmt;

pub use aggregate::execute_aggregate;
pub use join::{hash_join, merge_join};

/// True work counters observed while executing one plan node.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NodeMetrics {
    /// Rows produced by the node.
    pub rows_out: f64,
    /// Bytes produced by the node (row count × row width).
    pub bytes_out: f64,
    /// Rows consumed: children's output rows, or for a scan the base
    /// table's full row count (what is read off storage).
    pub rows_in: f64,
    /// Bytes consumed: children's output bytes, or for a scan the bytes of
    /// the projected columns over the full table.
    pub bytes_in: f64,
}

/// Result of executing a plan: the root batch plus per-node metrics
/// aligned with the plan's node ids.
#[derive(Debug, Clone)]
pub struct ExecResult {
    /// Output of the root operator.
    pub batch: Batch,
    /// Metrics for node `i` at index `i`.
    pub metrics: Vec<NodeMetrics>,
}

impl ExecResult {
    /// Convenience: the single scalar output of a `COUNT(*)`-style query.
    pub fn scalar_i64(&self) -> Option<i64> {
        if self.batch.num_rows() == 1 && self.batch.num_columns() >= 1 {
            self.batch.entries()[0].1.value(0).as_i64()
        } else {
            None
        }
    }
}

/// Execution failure.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecError {
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "execution error: {}", self.message)
    }
}

impl std::error::Error for ExecError {}

pub(crate) fn exec_err<T>(message: impl Into<String>) -> Result<T, ExecError> {
    Err(ExecError { message: message.into() })
}

/// Default cap on rows materialised by any single operator.
pub const DEFAULT_ROW_LIMIT: usize = 20_000_000;

/// Executes physical plans against a catalog.
#[derive(Debug)]
pub struct Executor<'a> {
    catalog: &'a Catalog,
    row_limit: usize,
}

impl<'a> Executor<'a> {
    /// Creates an executor over a catalog with the default row limit.
    pub fn new(catalog: &'a Catalog) -> Self {
        Self { catalog, row_limit: DEFAULT_ROW_LIMIT }
    }

    /// Overrides the per-operator output-row cap (guards against runaway
    /// join fan-out on skewed keys).
    pub fn with_row_limit(catalog: &'a Catalog, row_limit: usize) -> Self {
        Self { catalog, row_limit }
    }

    /// Executes a plan bottom-up and collects per-node metrics.
    pub fn execute(&self, plan: &PhysicalPlan) -> Result<ExecResult, ExecError> {
        let mut metrics = vec![NodeMetrics::default(); plan.len()];
        let mut outputs: Vec<Option<Batch>> = vec![None; plan.len()];
        for id in 0..plan.len() {
            let batch = self.exec_node(plan, id, &outputs)?;
            let (rows_in, bytes_in) = match &plan.node(id).op {
                PhysicalOp::FileScan { table, output, .. } => {
                    // A scan reads the projected columns of the whole table
                    // off storage, regardless of the pushed filter.
                    let t = self.catalog.table(table).expect("validated in exec_node");
                    let rows = t.num_rows() as f64;
                    let width: usize = output
                        .iter()
                        .filter_map(|re| t.column(&re.column))
                        .map(|c| c.data.row_width())
                        .sum();
                    (rows, rows * width.max(8) as f64)
                }
                _ => {
                    let rows = plan.node(id).children.iter().map(|&c| metrics[c].rows_out).sum();
                    let bytes = plan.node(id).children.iter().map(|&c| metrics[c].bytes_out).sum();
                    (rows, bytes)
                }
            };
            metrics[id] = NodeMetrics {
                rows_out: batch.num_rows() as f64,
                bytes_out: (batch.num_rows() * batch.row_width().max(8)) as f64,
                rows_in,
                bytes_in,
            };
            // Children whose every parent has run can be dropped; with the
            // bottom-up order and tree shape, a child has exactly one parent.
            for &c in &plan.node(id).children {
                outputs[c] = None;
            }
            outputs[id] = Some(batch);
        }
        let batch = outputs[plan.root()]
            .take()
            .expect("root executes last and is never dropped");
        Ok(ExecResult { batch, metrics })
    }

    fn exec_node(
        &self,
        plan: &PhysicalPlan,
        id: NodeId,
        outputs: &[Option<Batch>],
    ) -> Result<Batch, ExecError> {
        let node = plan.node(id);
        let child = |i: usize| -> Result<&Batch, ExecError> {
            node.children
                .get(i)
                .and_then(|&c| outputs[c].as_ref())
                .ok_or_else(|| ExecError { message: format!("node {id} missing child {i}") })
        };
        match &node.op {
            PhysicalOp::FileScan { binding, table, output, pushed_filter } => {
                let t = self
                    .catalog
                    .table(table)
                    .ok_or_else(|| ExecError { message: format!("unknown table '{table}'") })?;
                let mut batch = Batch::new();
                for re in output {
                    let col = t.column(&re.column).ok_or_else(|| ExecError {
                        message: format!("table '{table}' has no column '{}'", re.column),
                    })?;
                    batch.push(ColumnRef::new(binding.clone(), re.column.clone()), col.clone());
                }
                // A scan with no requested columns (e.g. bare COUNT(*))
                // still needs row positions; carry the narrowest column.
                if output.is_empty() {
                    if let Some(first) = t.schema.columns.first() {
                        let col = t.column(&first.name).expect("schema column exists");
                        batch
                            .push(ColumnRef::new(binding.clone(), first.name.clone()), col.clone());
                    }
                }
                match pushed_filter {
                    Some(f) => Ok(apply_filter(&batch, f)),
                    None => Ok(batch),
                }
            }
            PhysicalOp::Filter { predicate } => Ok(apply_filter(child(0)?, predicate)),
            PhysicalOp::Project { columns } => Ok(child(0)?.project(columns)),
            PhysicalOp::ExchangeHash { .. }
            | PhysicalOp::ExchangeSingle
            | PhysicalOp::BroadcastExchange => Ok(child(0)?.clone()),
            PhysicalOp::Sort { keys } => Ok(sort_batch(child(0)?, keys)),
            PhysicalOp::SortMergeJoin { left_key, right_key } => {
                merge_join(child(0)?, child(1)?, left_key, right_key, self.row_limit)
            }
            PhysicalOp::BroadcastHashJoin { probe_key, build_key } => {
                hash_join(child(0)?, child(1)?, probe_key, build_key, self.row_limit)
            }
            PhysicalOp::ShuffledHashJoin { left_key, right_key } => {
                hash_join(child(0)?, child(1)?, left_key, right_key, self.row_limit)
            }
            PhysicalOp::HashAggregate { mode, group_by, aggs } => {
                execute_aggregate(child(0)?, *mode, group_by, aggs)
            }
            PhysicalOp::Limit { n } => {
                let b = child(0)?;
                let keep: Vec<usize> = (0..b.num_rows().min(*n)).collect();
                Ok(b.take(&keep))
            }
        }
    }
}

/// Applies a predicate, keeping rows where it evaluates to TRUE.
pub fn apply_filter(batch: &Batch, predicate: &crate::expr::Expr) -> Batch {
    let mask = predicate.eval_mask(batch);
    let keep: Vec<usize> = mask
        .iter()
        .enumerate()
        .filter_map(|(i, m)| (*m == Some(true)).then_some(i))
        .collect();
    batch.take(&keep)
}

/// Sorts a batch by keys (ascending flags per key; NULLs sort last).
pub fn sort_batch(batch: &Batch, keys: &[(ColumnRef, bool)]) -> Batch {
    let mut indices: Vec<usize> = (0..batch.num_rows()).collect();
    indices.sort_by(|&a, &b| {
        for (re, asc) in keys {
            let Some(col) = batch.column(re) else {
                continue;
            };
            let (va, vb) = (col.value(a), col.value(b));
            let ord = match (va.is_null(), vb.is_null()) {
                (true, true) => std::cmp::Ordering::Equal,
                (true, false) => std::cmp::Ordering::Greater,
                (false, true) => std::cmp::Ordering::Less,
                (false, false) => va.sql_cmp(&vb).unwrap_or(std::cmp::Ordering::Equal),
            };
            let ord = if *asc { ord } else { ord.reverse() };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    batch.take(&indices)
}

/// A hashable, comparable wrapper over [`Value`] for grouping and hash
/// joins. Floats hash by bit pattern; NULL is its own key (SQL GROUP BY
/// semantics put all NULLs in one group).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum KeyValue {
    /// NULL key.
    Null,
    /// Integer key.
    Int(i64),
    /// Float key (bit pattern).
    Float(u64),
    /// String key.
    Str(String),
}

impl KeyValue {
    /// Converts a scalar to a key.
    pub fn from_value(v: &Value) -> KeyValue {
        match v {
            Value::Null => KeyValue::Null,
            Value::Int(i) => KeyValue::Int(*i),
            Value::Float(f) => KeyValue::Float(f.to_bits()),
            Value::Str(s) => KeyValue::Str(s.clone()),
        }
    }

    /// Back to a scalar.
    pub fn to_value(&self) -> Value {
        match self {
            KeyValue::Null => Value::Null,
            KeyValue::Int(i) => Value::Int(*i),
            KeyValue::Float(b) => Value::Float(f64::from_bits(*b)),
            KeyValue::Str(s) => Value::Str(s.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, Expr};
    use crate::storage::{Column, ColumnData};

    fn batch() -> Batch {
        let mut b = Batch::new();
        b.push(ColumnRef::new("t", "id"), Column::non_null(ColumnData::Int(vec![3, 1, 2])));
        b
    }

    #[test]
    fn filter_keeps_true_rows() {
        let f = Expr::cmp(ColumnRef::new("t", "id"), CmpOp::Ge, Value::Int(2));
        let out = apply_filter(&batch(), &f);
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn sort_orders_rows() {
        let out = sort_batch(&batch(), &[(ColumnRef::new("t", "id"), true)]);
        let col = out.column(&ColumnRef::new("t", "id")).unwrap();
        assert_eq!(
            (0..3).map(|i| col.value(i).as_i64().unwrap()).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        let desc = sort_batch(&batch(), &[(ColumnRef::new("t", "id"), false)]);
        let col = desc.column(&ColumnRef::new("t", "id")).unwrap();
        assert_eq!(col.value(0).as_i64(), Some(3));
    }

    #[test]
    fn sort_puts_nulls_last() {
        let mut b = Batch::new();
        b.push(
            ColumnRef::new("t", "x"),
            Column {
                data: ColumnData::Int(vec![5, 0, 1]),
                validity: Some(vec![true, false, true]),
            },
        );
        let out = sort_batch(&b, &[(ColumnRef::new("t", "x"), true)]);
        let col = out.column(&ColumnRef::new("t", "x")).unwrap();
        assert_eq!(col.value(0).as_i64(), Some(1));
        assert_eq!(col.value(1).as_i64(), Some(5));
        assert!(col.value(2).is_null());
    }

    #[test]
    fn key_value_round_trip() {
        for v in [Value::Null, Value::Int(-7), Value::Float(2.5), Value::Str("abc".into())] {
            assert_eq!(KeyValue::from_value(&v).to_value(), v);
        }
    }
}
