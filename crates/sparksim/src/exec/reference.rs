//! Naive reference evaluator.
//!
//! Executes a resolved [`QuerySpec`] by brute force — filtered row lists,
//! nested-loop joins, straightforward aggregation — with no planner, no
//! optimizer and no clever operators. It exists purely as an oracle: every
//! candidate physical plan the planner enumerates must produce exactly the
//! rows this evaluator produces (see the property tests and
//! `tests/plan_equivalence.rs`).

use crate::batch::Batch;
use crate::catalog::Catalog;
use crate::exec::{exec_err, ExecError, KeyValue};
use crate::plan::spec::QuerySpec;
use crate::schema::ColumnRef;
use crate::sql::ast::AggFunc;
use crate::types::Value;
use std::collections::HashMap;

/// A result row of the reference evaluator.
pub type RefRow = Vec<Value>;

/// Evaluates a query spec by brute force, returning rows in the same
/// column layout the engine produces: group-by columns then aggregates,
/// or the plain select list. Row order is unspecified for unordered
/// queries.
pub fn execute_reference(catalog: &Catalog, spec: &QuerySpec) -> Result<Vec<RefRow>, ExecError> {
    // Per-binding full-table batches with qualified columns.
    let mut batches: Vec<Batch> = Vec::with_capacity(spec.bindings.len());
    for b in &spec.bindings {
        let table = catalog
            .table(&b.table)
            .ok_or_else(|| ExecError { message: format!("unknown table '{}'", b.table) })?;
        let mut batch = Batch::new();
        for (def, col) in table.schema.columns.iter().zip(&table.columns) {
            batch.push(ColumnRef::new(b.name.clone(), def.name.clone()), col.clone());
        }
        batches.push(batch);
    }

    // Filtered row lists per binding.
    let mut candidates: Vec<Vec<usize>> = Vec::with_capacity(spec.bindings.len());
    for (bi, b) in spec.bindings.iter().enumerate() {
        let rows: Vec<usize> = match spec.table_filters.get(&b.name) {
            Some(f) => f
                .eval_mask(&batches[bi])
                .iter()
                .enumerate()
                .filter_map(|(i, m)| (*m == Some(true)).then_some(i))
                .collect(),
            None => (0..batches[bi].num_rows()).collect(),
        };
        candidates.push(rows);
    }

    // Nested-loop join: tuples of row indices, one per binding.
    let mut tuples: Vec<Vec<usize>> = candidates[0].iter().map(|&r| vec![r]).collect();
    for cand in candidates.iter().skip(1) {
        let mut next = Vec::new();
        for tuple in &tuples {
            for &r in cand {
                let mut t = tuple.clone();
                t.push(r);
                if join_edges_hold(spec, &batches, &t) {
                    next.push(t);
                }
            }
        }
        tuples = next;
    }

    // Residual predicates over the joined tuples.
    let value_of = |tuple: &[usize], re: &ColumnRef| -> Value {
        let bi = spec
            .bindings
            .iter()
            .position(|b| b.name == re.table)
            .expect("resolved column");
        batches[bi]
            .column(re)
            .map(|c| c.value(tuple[bi]))
            .unwrap_or(Value::Null)
    };
    if !spec.residual.is_empty() {
        tuples.retain(|tuple| {
            spec.residual
                .iter()
                .all(|pred| eval_pred_on_tuple(pred, spec, &batches, tuple) == Some(true))
        });
    }

    // Aggregation or projection.
    let mut rows: Vec<RefRow> = if spec.has_aggregates() || !spec.group_by.is_empty() {
        let mut groups: Vec<Vec<KeyValue>> = Vec::new();
        let mut index: HashMap<Vec<KeyValue>, usize> = HashMap::new();
        let mut accs: Vec<Vec<RefAgg>> = Vec::new();
        for tuple in &tuples {
            let key: Vec<KeyValue> = spec
                .group_by
                .iter()
                .map(|c| KeyValue::from_value(&value_of(tuple, c)))
                .collect();
            let gi = *index.entry(key.clone()).or_insert_with(|| {
                groups.push(key.clone());
                accs.push(spec.aggregates.iter().map(RefAgg::new).collect());
                groups.len() - 1
            });
            for (ai, agg) in spec.aggregates.iter().enumerate() {
                let v = agg.arg.as_ref().map(|c| value_of(tuple, c));
                accs[gi][ai].update(v);
            }
        }
        if spec.group_by.is_empty() && groups.is_empty() {
            groups.push(vec![]);
            accs.push(spec.aggregates.iter().map(RefAgg::new).collect());
        }
        groups
            .into_iter()
            .zip(accs)
            .map(|(key, acc)| {
                let mut row: RefRow = key.iter().map(KeyValue::to_value).collect();
                row.extend(acc.into_iter().map(RefAgg::finish));
                row
            })
            .collect()
    } else {
        let columns: Vec<ColumnRef> = if spec.wildcard {
            spec.bindings
                .iter()
                .enumerate()
                .flat_map(|(bi, _)| batches[bi].refs().cloned().collect::<Vec<_>>())
                .collect()
        } else {
            spec.select_columns.clone()
        };
        tuples
            .iter()
            .map(|tuple| columns.iter().map(|c| value_of(tuple, c)).collect())
            .collect()
    };

    // ORDER BY + LIMIT.
    if !spec.order_by.is_empty() {
        if spec.has_aggregates() && spec.group_by.is_empty() {
            return exec_err("ORDER BY over a global aggregate is meaningless");
        }
        // Only order by output columns (group keys / select list).
        let out_cols: Vec<ColumnRef> = if !spec.group_by.is_empty() {
            spec.group_by.clone()
        } else {
            spec.select_columns.clone()
        };
        let keys: Vec<(usize, bool)> = spec
            .order_by
            .iter()
            .filter_map(|(c, asc)| out_cols.iter().position(|o| o == c).map(|i| (i, *asc)))
            .collect();
        rows.sort_by(|a, b| {
            for &(i, asc) in &keys {
                let ord = match (a[i].is_null(), b[i].is_null()) {
                    (true, true) => std::cmp::Ordering::Equal,
                    (true, false) => std::cmp::Ordering::Greater,
                    (false, true) => std::cmp::Ordering::Less,
                    _ => a[i].sql_cmp(&b[i]).unwrap_or(std::cmp::Ordering::Equal),
                };
                let ord = if asc { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }
    if let Some(n) = spec.limit {
        rows.truncate(n);
    }
    Ok(rows)
}

fn join_edges_hold(spec: &QuerySpec, batches: &[Batch], tuple: &[usize]) -> bool {
    let present = tuple.len();
    for e in &spec.join_edges {
        let li = spec.bindings.iter().position(|b| b.name == e.left.table);
        let ri = spec.bindings.iter().position(|b| b.name == e.right.table);
        let (Some(li), Some(ri)) = (li, ri) else {
            continue;
        };
        if li >= present || ri >= present {
            continue; // edge not yet applicable
        }
        let lv = batches[li].column(&e.left).map(|c| c.value(tuple[li]));
        let rv = batches[ri].column(&e.right).map(|c| c.value(tuple[ri]));
        match (lv, rv) {
            (Some(a), Some(b)) => {
                if a.is_null() || b.is_null() || a.sql_cmp(&b) != Some(std::cmp::Ordering::Equal) {
                    return false;
                }
            }
            _ => return false,
        }
    }
    true
}

fn eval_pred_on_tuple(
    pred: &crate::expr::Expr,
    spec: &QuerySpec,
    batches: &[Batch],
    tuple: &[usize],
) -> Option<bool> {
    // Build a one-row batch containing every referenced column.
    let mut row_batch = Batch::new();
    for re in pred.referenced_columns() {
        let bi = spec.bindings.iter().position(|b| b.name == re.table)?;
        let col = batches[bi].column(re)?;
        row_batch.push(re.clone(), col.take(&[tuple[bi]]));
    }
    match pred.eval_row(&row_batch, 0) {
        Value::Null => None,
        v => Some(v.as_i64() == Some(1)),
    }
}

#[derive(Debug, Clone)]
enum RefAgg {
    Count { spec_counts_rows: bool, n: i64 },
    Sum { sum: f64, any: bool },
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { sum: f64, n: i64 },
}

impl RefAgg {
    fn new(spec: &crate::plan::spec::AggSpec) -> RefAgg {
        match spec.func {
            AggFunc::Count => RefAgg::Count { spec_counts_rows: spec.arg.is_none(), n: 0 },
            AggFunc::Sum => RefAgg::Sum { sum: 0.0, any: false },
            AggFunc::Min => RefAgg::Min(None),
            AggFunc::Max => RefAgg::Max(None),
            AggFunc::Avg => RefAgg::Avg { sum: 0.0, n: 0 },
        }
    }

    fn update(&mut self, value: Option<Value>) {
        match self {
            RefAgg::Count { spec_counts_rows, n } => {
                if *spec_counts_rows || value.as_ref().is_some_and(|v| !v.is_null()) {
                    *n += 1;
                }
            }
            RefAgg::Sum { sum, any } => {
                if let Some(x) = value.and_then(|v| v.as_f64()) {
                    *sum += x;
                    *any = true;
                }
            }
            RefAgg::Min(best) => update_minmax(best, value, true),
            RefAgg::Max(best) => update_minmax(best, value, false),
            RefAgg::Avg { sum, n } => {
                if let Some(x) = value.and_then(|v| v.as_f64()) {
                    *sum += x;
                    *n += 1;
                }
            }
        }
    }

    fn finish(self) -> Value {
        match self {
            RefAgg::Count { n, .. } => Value::Int(n),
            RefAgg::Sum { sum, any } => {
                if any {
                    Value::Float(sum)
                } else {
                    Value::Null
                }
            }
            RefAgg::Min(v) | RefAgg::Max(v) => v.unwrap_or(Value::Null),
            RefAgg::Avg { sum, n } => {
                if n > 0 {
                    Value::Float(sum / n as f64)
                } else {
                    Value::Null
                }
            }
        }
    }
}

fn update_minmax(best: &mut Option<Value>, value: Option<Value>, is_min: bool) {
    let Some(v) = value else { return };
    if v.is_null() {
        return;
    }
    let better = match best {
        None => true,
        Some(b) => match v.sql_cmp(b) {
            Some(std::cmp::Ordering::Less) => is_min,
            Some(std::cmp::Ordering::Greater) => !is_min,
            _ => false,
        },
    };
    if better {
        *best = Some(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::spec::resolve;
    use crate::schema::{ColumnDef, TableSchema};
    use crate::sql::parser::parse;
    use crate::storage::{Column, ColumnData, Table};
    use crate::types::DataType;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(Table::new(
            TableSchema::new(
                "a",
                vec![
                    ColumnDef::new("id", DataType::Int, false),
                    ColumnDef::new("x", DataType::Int, false),
                ],
            ),
            vec![
                Column::non_null(ColumnData::Int(vec![1, 2, 3, 4])),
                Column::non_null(ColumnData::Int(vec![10, 20, 30, 40])),
            ],
        ));
        c.register(Table::new(
            TableSchema::new(
                "b",
                vec![
                    ColumnDef::new("a_id", DataType::Int, false),
                    ColumnDef::new("y", DataType::Int, false),
                ],
            ),
            vec![
                Column::non_null(ColumnData::Int(vec![1, 1, 2, 5])),
                Column::non_null(ColumnData::Int(vec![100, 101, 200, 500])),
            ],
        ));
        c
    }

    fn run(sql: &str) -> Vec<RefRow> {
        let c = catalog();
        let q = parse(sql).unwrap();
        let spec = resolve(&q, &c).unwrap();
        execute_reference(&c, &spec).unwrap()
    }

    #[test]
    fn count_with_filter() {
        let rows = run("SELECT COUNT(*) FROM a WHERE a.x >= 20");
        assert_eq!(rows, vec![vec![Value::Int(3)]]);
    }

    #[test]
    fn join_count() {
        let rows = run("SELECT COUNT(*) FROM a, b WHERE a.id = b.a_id");
        assert_eq!(rows, vec![vec![Value::Int(3)]]);
    }

    #[test]
    fn grouped_aggregate() {
        let mut rows = run("SELECT b.a_id, COUNT(*) FROM a, b WHERE a.id = b.a_id GROUP BY b.a_id");
        rows.sort_by_key(|r| r[0].as_i64());
        assert_eq!(
            rows,
            vec![vec![Value::Int(1), Value::Int(2)], vec![Value::Int(2), Value::Int(1)],]
        );
    }

    #[test]
    fn select_with_order_and_limit() {
        let rows = run("SELECT a.id FROM a WHERE a.x > 10 ORDER BY a.id DESC LIMIT 2");
        assert_eq!(rows, vec![vec![Value::Int(4)], vec![Value::Int(3)]]);
    }

    #[test]
    fn sum_avg_min_max() {
        let rows = run("SELECT SUM(a.x), AVG(a.x), MIN(a.x), MAX(a.x) FROM a");
        assert_eq!(
            rows,
            vec![vec![Value::Float(100.0), Value::Float(25.0), Value::Int(10), Value::Int(40),]]
        );
    }
}
