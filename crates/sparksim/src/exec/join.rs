//! Join implementations: hash join (backs both broadcast-hash and
//! shuffled-hash) and merge join (backs sort-merge). Both are inner
//! equi-joins — the only join shape the paper's workloads (JOB / TPC-H
//! count queries) produce — and both drop NULL keys per SQL semantics.

use super::{exec_err, ExecError, KeyValue};
use crate::batch::Batch;
use crate::schema::ColumnRef;
use std::collections::HashMap;

/// Inner hash join: builds on `build` (right), probes with `probe` (left).
/// Output columns: all probe columns followed by all build columns.
/// Fails once the output would exceed `max_rows` (guards against runaway
/// fan-out on skewed keys).
pub fn hash_join(
    probe: &Batch,
    build: &Batch,
    probe_key: &ColumnRef,
    build_key: &ColumnRef,
    max_rows: usize,
) -> Result<Batch, ExecError> {
    let probe_col = probe.column(probe_key).ok_or_else(|| missing(probe_key, "probe"))?;
    let build_col = build.column(build_key).ok_or_else(|| missing(build_key, "build"))?;

    let mut table: HashMap<KeyValue, Vec<usize>> = HashMap::with_capacity(build.num_rows());
    for i in 0..build.num_rows() {
        if !build_col.is_valid(i) {
            continue;
        }
        table
            .entry(KeyValue::from_value(&build_col.value(i)))
            .or_default()
            .push(i);
    }

    let mut probe_idx = Vec::new();
    let mut build_idx = Vec::new();
    for i in 0..probe.num_rows() {
        if !probe_col.is_valid(i) {
            continue;
        }
        if let Some(matches) = table.get(&KeyValue::from_value(&probe_col.value(i))) {
            if probe_idx.len() + matches.len() > max_rows {
                return exec_err(format!("join output exceeds the {max_rows}-row limit"));
            }
            for &j in matches {
                probe_idx.push(i);
                build_idx.push(j);
            }
        }
    }
    Ok(stitch(probe, build, &probe_idx, &build_idx))
}

/// Inner merge join over inputs already sorted ascending by their keys
/// (NULLs last, as produced by [`super::sort_batch`]).
pub fn merge_join(
    left: &Batch,
    right: &Batch,
    left_key: &ColumnRef,
    right_key: &ColumnRef,
    max_rows: usize,
) -> Result<Batch, ExecError> {
    let lcol = left.column(left_key).ok_or_else(|| missing(left_key, "left"))?;
    let rcol = right.column(right_key).ok_or_else(|| missing(right_key, "right"))?;

    let mut li = 0usize;
    let mut ri = 0usize;
    let (ln, rn) = (left.num_rows(), right.num_rows());
    let mut left_idx = Vec::new();
    let mut right_idx = Vec::new();

    while li < ln && ri < rn {
        // NULL keys sort last and never match: once reached, we're done.
        if !lcol.is_valid(li) || !rcol.is_valid(ri) {
            break;
        }
        let lv = lcol.value(li);
        let rv = rcol.value(ri);
        match lv.sql_cmp(&rv) {
            Some(std::cmp::Ordering::Less) => li += 1,
            Some(std::cmp::Ordering::Greater) => ri += 1,
            Some(std::cmp::Ordering::Equal) => {
                // Find both runs of equal keys and emit their product.
                let l_end = run_end(|i| lcol.is_valid(i) && lcol.value(i) == lv, li, ln);
                let r_end = run_end(|i| rcol.is_valid(i) && rcol.value(i) == rv, ri, rn);
                if left_idx.len() + (l_end - li) * (r_end - ri) > max_rows {
                    return exec_err(format!("join output exceeds the {max_rows}-row limit"));
                }
                for a in li..l_end {
                    for b in ri..r_end {
                        left_idx.push(a);
                        right_idx.push(b);
                    }
                }
                li = l_end;
                ri = r_end;
            }
            None => return exec_err("incomparable join keys (type mismatch)"),
        }
    }
    Ok(stitch(left, right, &left_idx, &right_idx))
}

fn run_end(matches: impl Fn(usize) -> bool, start: usize, n: usize) -> usize {
    let mut end = start + 1;
    while end < n && matches(end) {
        end += 1;
    }
    end
}

fn stitch(left: &Batch, right: &Batch, left_idx: &[usize], right_idx: &[usize]) -> Batch {
    let l = left.take(left_idx);
    let r = right.take(right_idx);
    let mut out = Batch::new();
    for (re, col) in l.entries() {
        out.push(re.clone(), col.clone());
    }
    for (re, col) in r.entries() {
        out.push(re.clone(), col.clone());
    }
    out
}

fn missing(key: &ColumnRef, side: &str) -> ExecError {
    ExecError {
        message: format!("{side} side is missing join key column {key}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::sort_batch;
    use crate::storage::{Column, ColumnData};

    fn batch(table: &str, ids: Vec<i64>, payload: Vec<i64>) -> Batch {
        let mut b = Batch::new();
        b.push(ColumnRef::new(table, "id"), Column::non_null(ColumnData::Int(ids)));
        b.push(ColumnRef::new(table, "v"), Column::non_null(ColumnData::Int(payload)));
        b
    }

    #[test]
    fn hash_join_matches_pairs() {
        let probe = batch("l", vec![1, 2, 3, 2], vec![10, 20, 30, 21]);
        let build = batch("r", vec![2, 4], vec![200, 400]);
        let out = hash_join(
            &probe,
            &build,
            &ColumnRef::new("l", "id"),
            &ColumnRef::new("r", "id"),
            usize::MAX,
        )
        .unwrap();
        assert_eq!(out.num_rows(), 2);
        let lv = out.column(&ColumnRef::new("l", "v")).unwrap();
        assert_eq!(lv.value(0).as_i64(), Some(20));
        assert_eq!(lv.value(1).as_i64(), Some(21));
    }

    #[test]
    fn hash_join_handles_duplicates_on_both_sides() {
        let probe = batch("l", vec![1, 1], vec![10, 11]);
        let build = batch("r", vec![1, 1, 1], vec![100, 101, 102]);
        let out = hash_join(
            &probe,
            &build,
            &ColumnRef::new("l", "id"),
            &ColumnRef::new("r", "id"),
            usize::MAX,
        )
        .unwrap();
        assert_eq!(out.num_rows(), 6, "2 x 3 cross product of matches");
    }

    #[test]
    fn null_keys_never_match() {
        let mut probe = Batch::new();
        probe.push(
            ColumnRef::new("l", "id"),
            Column {
                data: ColumnData::Int(vec![1, 0]),
                validity: Some(vec![true, false]),
            },
        );
        let mut build = Batch::new();
        build.push(
            ColumnRef::new("r", "id"),
            Column {
                data: ColumnData::Int(vec![1, 0]),
                validity: Some(vec![true, false]),
            },
        );
        let out = hash_join(
            &probe,
            &build,
            &ColumnRef::new("l", "id"),
            &ColumnRef::new("r", "id"),
            usize::MAX,
        )
        .unwrap();
        assert_eq!(out.num_rows(), 1, "only the 1=1 match; NULL != NULL");
    }

    #[test]
    fn merge_join_equals_hash_join() {
        let l = batch("l", vec![5, 1, 3, 3, 9], vec![0, 1, 2, 3, 4]);
        let r = batch("r", vec![3, 3, 5, 7], vec![30, 31, 50, 70]);
        let lk = ColumnRef::new("l", "id");
        let rk = ColumnRef::new("r", "id");
        let hj = hash_join(&l, &r, &lk, &rk, usize::MAX).unwrap();
        let ls = sort_batch(&l, &[(lk.clone(), true)]);
        let rs = sort_batch(&r, &[(rk.clone(), true)]);
        let mj = merge_join(&ls, &rs, &lk, &rk, usize::MAX).unwrap();
        assert_eq!(hj.num_rows(), mj.num_rows());
        assert_eq!(mj.num_rows(), 5, "3x2 + 5x1 matches");
    }

    #[test]
    fn merge_join_empty_sides() {
        let l = batch("l", vec![], vec![]);
        let r = batch("r", vec![1], vec![10]);
        let lk = ColumnRef::new("l", "id");
        let rk = ColumnRef::new("r", "id");
        assert_eq!(merge_join(&l, &r, &lk, &rk, usize::MAX).unwrap().num_rows(), 0);
        assert_eq!(merge_join(&r, &l, &rk, &lk, usize::MAX).unwrap().num_rows(), 0);
    }

    #[test]
    fn row_limit_aborts_fanout() {
        let l = batch("l", vec![1; 100], (0..100).collect());
        let r = batch("r", vec![1; 100], (0..100).collect());
        let lk = ColumnRef::new("l", "id");
        let rk = ColumnRef::new("r", "id");
        let err = hash_join(&l, &r, &lk, &rk, 5000).unwrap_err();
        assert!(err.message.contains("row limit"), "{}", err.message);
        let ls = crate::exec::sort_batch(&l, &[(lk.clone(), true)]);
        let rs = crate::exec::sort_batch(&r, &[(rk.clone(), true)]);
        let err = merge_join(&ls, &rs, &lk, &rk, 5000).unwrap_err();
        assert!(err.message.contains("row limit"), "{}", err.message);
    }

    #[test]
    fn missing_key_column_is_error() {
        let l = batch("l", vec![1], vec![10]);
        let r = batch("r", vec![1], vec![10]);
        let res =
            hash_join(&l, &r, &ColumnRef::new("l", "nope"), &ColumnRef::new("r", "id"), usize::MAX);
        assert!(res.is_err());
    }
}
