//! Deterministic fault injection for the execution-time simulator.
//!
//! The base simulator models a fairy-tale cluster: every executor
//! survives, every task runs at the same speed, every shuffle fetch
//! succeeds. Real clouds are not like that, and a resource-aware cost
//! model that never sees a straggler or a lost executor learns a
//! systematically optimistic mapping. This module injects the three
//! dominant cloud failure modes into [`crate::simulator::CostSimulator`]
//! runs, together with Spark-faithful *recovery* so the injected faults
//! cost what they would cost on a real cluster rather than simply
//! failing the query:
//!
//! * **executor loss** — a stage loses executors mid-flight; their
//!   running tasks fail and are re-run under per-task retry with capped
//!   exponential backoff (Spark's `spark.task.maxFailures` semantics),
//!   plus the replacement executor's spin-up delay;
//! * **stragglers** — individual tasks run a configurable multiple
//!   slower; with speculation enabled a backup copy launches once the
//!   task exceeds the speculation multiplier, and the stage takes the
//!   earlier finisher (Spark's `spark.speculation`);
//! * **fetch failure** — a shuffle-fed stage's fetch fails and the
//!   whole stage re-attempts (Spark's stage re-attempt on
//!   `FetchFailedException`), capped by `max_stage_attempts`;
//! * **spill pressure** — working sets are inflated, forcing extra
//!   spill passes at memory sizes that would otherwise be safe.
//!
//! Everything is **deterministic**: faults are drawn from a splitmix64
//! stream keyed by `(fault seed, run seed, stage, lane)`, so the same
//! seeds reproduce the same failures, the same recovery schedule and the
//! same telemetry event log — tests and benches stay reproducible, and a
//! fault sweep is a pure function of its seeds.
//!
//! Every recovery action is bounded (retries and stage attempts are
//! capped), so a simulated run always terminates with either a report or
//! a typed [`FaultError`] — never a hang and never a panic.
//!
//! ```
//! use sparksim::fault::FaultPlan;
//!
//! // The zero plan injects nothing: simulations behave exactly as if
//! // no fault layer existed.
//! assert!(FaultPlan::none().is_zero());
//!
//! // A chaos preset scales all fault classes with one intensity knob.
//! let plan = FaultPlan::chaos(42, 0.2);
//! assert!(!plan.is_zero());
//! assert_eq!(plan, FaultPlan::chaos(42, 0.2)); // fully deterministic
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;

/// Recovery policy: how the simulated cluster reacts to injected faults.
/// Defaults mirror Spark's out-of-the-box configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryConfig {
    /// Attempts allowed per task before the job aborts
    /// (`spark.task.maxFailures`, default 4).
    pub max_task_attempts: u32,
    /// Base delay before a failed task is re-launched, seconds.
    pub retry_backoff_s: f64,
    /// Cap on the exponential backoff, seconds.
    pub max_backoff_s: f64,
    /// Attempts allowed per stage before the job aborts
    /// (`spark.stage.maxConsecutiveAttempts`, default 4).
    pub max_stage_attempts: u32,
    /// Launch backup copies of straggling tasks (`spark.speculation`).
    pub speculation: bool,
    /// How many times slower than the wave median a task must run before
    /// a speculative copy launches (`spark.speculation.multiplier`).
    pub speculation_multiplier: f64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        Self {
            max_task_attempts: 4,
            retry_backoff_s: 0.5,
            max_backoff_s: 8.0,
            max_stage_attempts: 4,
            speculation: true,
            speculation_multiplier: 1.5,
        }
    }
}

/// A seedable, deterministic fault-injection plan for one simulated run.
///
/// All rates are probabilities in `[0, 1]` evaluated against the
/// dedicated fault stream; the same `(FaultPlan, run seed)` pair always
/// produces the same faults. [`FaultPlan::none`] injects nothing and
/// leaves simulator output bit-identical to the fault-free path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of the fault stream (independent of the run's noise seed).
    pub seed: u64,
    /// Per-stage probability that each participating executor is lost
    /// mid-stage (its in-flight tasks fail and retry).
    pub executor_failure_rate: f64,
    /// Per-task probability of running `straggler_multiplier` slower.
    pub straggler_rate: f64,
    /// Slow-down factor for straggler tasks (≥ 1).
    pub straggler_multiplier: f64,
    /// Per-attempt probability that a shuffle-fed stage's fetch fails,
    /// forcing a full stage re-attempt.
    pub fetch_failure_rate: f64,
    /// Multiplier (≥ 1) applied to per-task working sets, forcing spill
    /// at memory sizes that would otherwise be safe.
    pub spill_pressure: f64,
    /// Recovery policy applied to the injected faults.
    pub recovery: RecoveryConfig,
}

impl FaultPlan {
    /// The zero plan: no faults, no behavioural change at all.
    pub fn none() -> Self {
        Self {
            seed: 0,
            executor_failure_rate: 0.0,
            straggler_rate: 0.0,
            straggler_multiplier: 1.0,
            fetch_failure_rate: 0.0,
            spill_pressure: 1.0,
            recovery: RecoveryConfig::default(),
        }
    }

    /// A preset that scales every fault class with one `intensity` knob
    /// in `[0, 1]`: at `0.0` it equals [`FaultPlan::none`] (modulo seed);
    /// at `1.0` executors drop like flies and half the tasks straggle.
    pub fn chaos(seed: u64, intensity: f64) -> Self {
        let i = intensity.clamp(0.0, 1.0);
        Self {
            seed,
            executor_failure_rate: 0.3 * i,
            straggler_rate: 0.5 * i,
            straggler_multiplier: 1.0 + 4.0 * i,
            fetch_failure_rate: 0.25 * i,
            spill_pressure: 1.0 + i,
            recovery: RecoveryConfig::default(),
        }
    }

    /// Whether this plan injects nothing (all rates zero, all
    /// multipliers 1): the simulator output is then bit-identical to a
    /// fault-free run.
    pub fn is_zero(&self) -> bool {
        self.executor_failure_rate == 0.0
            && self.straggler_rate == 0.0
            && self.fetch_failure_rate == 0.0
            && self.spill_pressure <= 1.0
    }
}

/// Typed, recoverable failure of a fault-injected simulation: the
/// injected faults exhausted the recovery policy's bounded budget. The
/// bounded budget is also the termination proof — every retry loop in
/// the simulator is capped by these limits.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultError {
    /// A task failed more than `max_task_attempts` times in one stage.
    TaskRetriesExhausted {
        /// Stage (execution order) whose task ran out of attempts.
        stage: usize,
        /// Attempts consumed, equal to `max_task_attempts`.
        attempts: u32,
    },
    /// A stage re-attempted more than `max_stage_attempts` times on
    /// repeated fetch failures.
    StageAttemptsExhausted {
        /// Stage (execution order) that ran out of attempts.
        stage: usize,
        /// Attempts consumed, equal to `max_stage_attempts`.
        attempts: u32,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::TaskRetriesExhausted { stage, attempts } => {
                write!(f, "stage {stage}: task failed {attempts} attempts (task retry budget)")
            }
            FaultError::StageAttemptsExhausted { stage, attempts } => {
                write!(f, "stage {stage}: fetch failed across {attempts} stage attempts")
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// What the injected faults did to one simulated run, alongside the
/// resulting [`crate::simulator::SimReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSummary {
    /// Executors lost across all stages.
    pub executor_failures: u32,
    /// Task re-launches (failed attempts that were retried).
    pub task_retries: u32,
    /// Speculative backup copies launched for stragglers.
    pub speculative_launches: u32,
    /// Straggler tasks injected.
    pub stragglers: u32,
    /// Whole-stage re-attempts after fetch failures.
    pub stage_reattempts: u32,
    /// Wall-clock seconds added by faults and their recovery (before
    /// run-level noise).
    pub extra_seconds: f64,
}

impl FaultSummary {
    /// A summary with all counts zero.
    pub fn zero() -> Self {
        Self {
            executor_failures: 0,
            task_retries: 0,
            speculative_launches: 0,
            stragglers: 0,
            stage_reattempts: 0,
            extra_seconds: 0.0,
        }
    }

    /// Whether any fault actually fired during the run.
    pub fn any(&self) -> bool {
        self.executor_failures > 0
            || self.task_retries > 0
            || self.speculative_launches > 0
            || self.stragglers > 0
            || self.stage_reattempts > 0
            || self.extra_seconds > 0.0
    }
}

/// Deterministic per-lane fault stream: splitmix64 keyed by the fault
/// seed, the run seed and a lane id, so every decision point in a run
/// draws from its own reproducible substream regardless of evaluation
/// order elsewhere.
#[derive(Debug, Clone)]
pub(crate) struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// A stream for one decision lane. `lane` should encode the stage
    /// and fault class so lanes never alias.
    pub(crate) fn lane(fault_seed: u64, run_seed: u64, lane: u64) -> Self {
        let mut state = fault_seed ^ 0x9E3779B97F4A7C15;
        state = state.wrapping_mul(0xBF58476D1CE4E5B9) ^ run_seed;
        state = state.wrapping_mul(0x94D049BB133111EB) ^ lane;
        Self { state }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// One Bernoulli trial.
    pub(crate) fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.next_f64() < p
    }
}

/// Capped exponential backoff before re-launching a failed task:
/// `base · 2^(attempt−1)`, clamped to `max`. `attempt` is 1-based (the
/// delay before attempt 2 uses `attempt = 1`).
pub fn retry_backoff_s(recovery: &RecoveryConfig, attempt: u32) -> f64 {
    let exp = attempt.saturating_sub(1).min(16);
    (recovery.retry_backoff_s * f64::from(1u32 << exp)).min(recovery.max_backoff_s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_plan_is_zero() {
        assert!(FaultPlan::none().is_zero());
        assert!(FaultPlan::chaos(7, 0.0).is_zero());
        assert!(!FaultPlan::chaos(7, 0.5).is_zero());
    }

    #[test]
    fn lanes_are_deterministic_and_distinct() {
        let mut a = FaultRng::lane(1, 2, 3);
        let mut b = FaultRng::lane(1, 2, 3);
        let mut c = FaultRng::lane(1, 2, 4);
        let (xa, xb, xc) = (a.next_f64(), b.next_f64(), c.next_f64());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
        assert!((0.0..1.0).contains(&xa));
    }

    #[test]
    fn chance_zero_never_fires_and_draws_nothing_harmful() {
        let mut rng = FaultRng::lane(9, 9, 9);
        for _ in 0..100 {
            assert!(!rng.chance(0.0));
        }
        let mut rng = FaultRng::lane(9, 9, 9);
        for _ in 0..100 {
            assert!(rng.chance(1.0));
        }
    }

    #[test]
    fn backoff_grows_and_caps() {
        let r = RecoveryConfig::default();
        assert_eq!(retry_backoff_s(&r, 1), 0.5);
        assert_eq!(retry_backoff_s(&r, 2), 1.0);
        assert_eq!(retry_backoff_s(&r, 3), 2.0);
        assert_eq!(retry_backoff_s(&r, 30), r.max_backoff_s);
    }
}
