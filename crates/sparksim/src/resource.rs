//! Cluster and per-application resource configurations (the paper's
//! Tables I and III), their normalised feature encoding (Eq. 1), and
//! resource-grid generation for data collection.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Physical cluster configuration (Table III analogue: 4 nodes, 4 cores,
/// 16 GB each).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of worker nodes.
    pub nodes: usize,
    /// Physical cores per node.
    pub cores_per_node: usize,
    /// Main memory per node, GB.
    pub memory_per_node_gb: f64,
    /// Peak sequential disk throughput per node, MB/s.
    pub disk_throughput_mbps: f64,
    /// Peak network throughput per node, MB/s.
    pub network_throughput_mbps: f64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        // The paper's evaluation cluster: 4 nodes x 4 cores x 16 GB,
        // cloud block storage and gigabit-class networking.
        Self {
            nodes: 4,
            cores_per_node: 4,
            memory_per_node_gb: 16.0,
            disk_throughput_mbps: 200.0,
            network_throughput_mbps: 120.0,
        }
    }
}

impl ClusterConfig {
    /// Total cores in the cluster.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.cores_per_node
    }

    /// Total memory in the cluster, GB.
    pub fn total_memory_gb(&self) -> f64 {
        self.nodes as f64 * self.memory_per_node_gb
    }
}

/// Resources allocated to one application (Table I): the features the
/// RAAL model consumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceConfig {
    /// Number of executors.
    pub executors: usize,
    /// Cores per executor (concurrent tasks per executor).
    pub cores_per_executor: usize,
    /// Memory per executor, GB.
    pub memory_per_executor_gb: f64,
    /// Real-time available network throughput, MB/s (shared cloud tenancy
    /// can push this below the hardware peak).
    pub network_throughput_mbps: f64,
    /// Real-time available disk throughput, MB/s.
    pub disk_throughput_mbps: f64,
}

impl ResourceConfig {
    /// A sane mid-grid default: 2 executors x 2 cores x 4 GB.
    pub fn default_for(cluster: &ClusterConfig) -> Self {
        Self {
            executors: 2,
            cores_per_executor: 2,
            memory_per_executor_gb: 4.0,
            network_throughput_mbps: cluster.network_throughput_mbps,
            disk_throughput_mbps: cluster.disk_throughput_mbps,
        }
    }

    /// Total task slots.
    pub fn total_slots(&self) -> usize {
        self.executors * self.cores_per_executor
    }

    /// Total executor memory, GB.
    pub fn total_memory_gb(&self) -> f64 {
        self.executors as f64 * self.memory_per_executor_gb
    }

    /// The paper's Eq. 1 encoding: each feature divided by its maximum
    /// available value on the cluster, in Table I order
    /// `[node, core, executor, e-core, e-memory, n-throughput, d-throughput]`.
    pub fn feature_vector(&self, cluster: &ClusterConfig) -> Vec<f32> {
        let max_executors = cluster.total_cores() as f64; // 1 core per executor minimum
        vec![
            // The full set of nodes (and their cores) hosts every
            // application, so the first two Table I features saturate.
            1.0,
            1.0,
            (self.executors as f64 / max_executors) as f32,
            (self.cores_per_executor as f64 / cluster.cores_per_node as f64) as f32,
            (self.memory_per_executor_gb / cluster.memory_per_node_gb) as f32,
            (self.network_throughput_mbps / cluster.network_throughput_mbps) as f32,
            (self.disk_throughput_mbps / cluster.disk_throughput_mbps) as f32,
        ]
    }

    /// Number of features produced by [`ResourceConfig::feature_vector`].
    pub const NUM_FEATURES: usize = 7;
}

/// Generates the resource states a query is observed under during data
/// collection — the cloud-tenancy variation of the paper's Sec. V-A.
#[derive(Debug, Clone)]
pub struct ResourceGrid {
    /// Executor counts to sweep.
    pub executors: Vec<usize>,
    /// Cores-per-executor values to sweep.
    pub cores_per_executor: Vec<usize>,
    /// Memory sizes (GB) to sweep.
    pub memory_gb: Vec<f64>,
    /// Relative jitter applied to network/disk throughput to mimic noisy
    /// neighbours (0.0 = none).
    pub throughput_jitter: f64,
}

impl Default for ResourceGrid {
    fn default() -> Self {
        Self {
            executors: vec![1, 2, 3, 4, 6, 8],
            cores_per_executor: vec![1, 2, 4],
            memory_gb: vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0],
            throughput_jitter: 0.25,
        }
    }
}

impl ResourceGrid {
    /// All grid points (without jitter).
    pub fn enumerate(&self, cluster: &ClusterConfig) -> Vec<ResourceConfig> {
        let mut out = Vec::new();
        for &e in &self.executors {
            for &c in &self.cores_per_executor {
                for &m in &self.memory_gb {
                    out.push(ResourceConfig {
                        executors: e,
                        cores_per_executor: c,
                        memory_per_executor_gb: m,
                        network_throughput_mbps: cluster.network_throughput_mbps,
                        disk_throughput_mbps: cluster.disk_throughput_mbps,
                    });
                }
            }
        }
        out
    }

    /// Samples one random grid point with throughput jitter — one
    /// "real-time resource state" observation.
    pub fn sample(&self, cluster: &ClusterConfig, rng: &mut impl Rng) -> ResourceConfig {
        let e = self.executors[rng.gen_range(0..self.executors.len())];
        let c = self.cores_per_executor[rng.gen_range(0..self.cores_per_executor.len())];
        let m = self.memory_gb[rng.gen_range(0..self.memory_gb.len())];
        let jitter = |rng: &mut dyn rand::RngCore, base: f64| {
            let f = 1.0 - self.throughput_jitter * rng.gen_range(0.0..1.0);
            base * f
        };
        ResourceConfig {
            executors: e,
            cores_per_executor: c,
            memory_per_executor_gb: m,
            network_throughput_mbps: jitter(rng, cluster.network_throughput_mbps),
            disk_throughput_mbps: jitter(rng, cluster.disk_throughput_mbps),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn feature_vector_is_normalised() {
        let cluster = ClusterConfig::default();
        let res = ResourceConfig::default_for(&cluster);
        let f = res.feature_vector(&cluster);
        assert_eq!(f.len(), ResourceConfig::NUM_FEATURES);
        assert!(f.iter().all(|&x| (0.0..=1.0).contains(&x)), "{f:?}");
    }

    #[test]
    fn slots_and_memory_totals() {
        let r = ResourceConfig {
            executors: 3,
            cores_per_executor: 2,
            memory_per_executor_gb: 4.0,
            network_throughput_mbps: 100.0,
            disk_throughput_mbps: 200.0,
        };
        assert_eq!(r.total_slots(), 6);
        assert_eq!(r.total_memory_gb(), 12.0);
    }

    #[test]
    fn grid_enumerates_cartesian_product() {
        let grid = ResourceGrid {
            executors: vec![1, 2],
            cores_per_executor: vec![1],
            memory_gb: vec![2.0, 4.0],
            throughput_jitter: 0.0,
        };
        let pts = grid.enumerate(&ClusterConfig::default());
        assert_eq!(pts.len(), 4);
    }

    #[test]
    fn sample_respects_jitter_bounds() {
        let cluster = ClusterConfig::default();
        let grid = ResourceGrid::default();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let r = grid.sample(&cluster, &mut rng);
            assert!(r.network_throughput_mbps <= cluster.network_throughput_mbps);
            assert!(
                r.network_throughput_mbps
                    >= cluster.network_throughput_mbps * (1.0 - grid.throughput_jitter) - 1e-9
            );
            assert!(grid.executors.contains(&r.executors));
        }
    }

    #[test]
    fn sampling_is_deterministic_under_seed() {
        let cluster = ClusterConfig::default();
        let grid = ResourceGrid::default();
        let a = grid.sample(&cluster, &mut StdRng::seed_from_u64(9));
        let b = grid.sample(&cluster, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
