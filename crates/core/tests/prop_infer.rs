//! Property test: the tape-free inference engine agrees with the
//! autograd-tape reference forward pass across random plans, random
//! resource vectors and every model variant.

use encoding::plan_encoder::{EncodedPlan, PLAN_STAT_FEATURES};
use proptest::prelude::*;
use raal::{CostModel, ModelConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NODE_DIM: usize = 10;

/// A random plan: a chain backbone (every node consumes its predecessor)
/// with extra child edges thrown in, so node-aware attention sees both
/// leaf nodes and multi-child joins.
fn random_plan(rng: &mut StdRng, n: usize) -> EncodedPlan {
    let node_features = (0..n)
        .map(|_| (0..NODE_DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    let children = (0..n)
        .map(|i| {
            if i == 0 {
                return Vec::new();
            }
            let mut kids = vec![i - 1];
            for j in 0..i - 1 {
                if rng.gen_bool(0.3) {
                    kids.push(j);
                }
            }
            kids
        })
        .collect();
    EncodedPlan {
        node_features,
        children,
        plan_stats: (0..PLAN_STAT_FEATURES).map(|_| rng.gen_range(0.0f32..1.0)).collect(),
    }
}

fn variant(idx: usize) -> ModelConfig {
    let cfg = match idx % 4 {
        0 => ModelConfig::raal(NODE_DIM),
        1 => ModelConfig::na_lstm(NODE_DIM),
        2 => ModelConfig::raac(NODE_DIM),
        _ => ModelConfig::raal(NODE_DIM).without_resources(),
    };
    // Small dims keep the tape pass cheap; the kernels are dimension
    // generic, so agreement at 12/6/10 implies nothing special at 64/32.
    ModelConfig { hidden: 12, latent_k: 6, head_hidden: 10, ..cfg }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn fast_path_agrees_with_tape(
        n in 1usize..9,
        seed in 0u64..1_000_000,
        variant_idx in 0usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = random_plan(&mut rng, n);
        let cfg = ModelConfig { seed: seed ^ 0x5eed, ..variant(variant_idx) };
        let resources: Vec<f32> =
            (0..cfg.resource_dim).map(|_| rng.gen_range(0.0f32..1.0)).collect();
        let model = CostModel::new(cfg);

        let fast = model.predict_seconds(&plan, &resources);
        let tape = model.predict_seconds_tape(&plan, &resources);
        let rel = (fast - tape).abs() / tape.abs().max(1e-6);
        prop_assert!(
            rel <= 1e-5,
            "fast={fast} tape={tape} rel={rel} n={n} variant={variant_idx}"
        );

        // The cached-context path must agree with the one-shot fast path.
        let ctx = model.plan_context(&plan);
        prop_assert_eq!(model.predict_with_context(&ctx, &resources), fast);
    }
}
