//! Integration tests for degraded-mode serving: every guard rail must
//! produce a fallback answer (never a panic) and count the trip.

use encoding::word2vec::{train as w2v_train, W2vConfig};
use encoding::{EncoderConfig, PlanEncoder};
use raal::model::{CostModel, ModelConfig};
use raal::persist::ModelBundle;
use raal::serving::{FallbackReason, PredictionSource, ServingConfig, ServingModel};
use sparksim::catalog::Catalog;
use sparksim::engine::Engine;
use sparksim::plan::physical::PhysicalPlan;
use sparksim::resource::{ClusterConfig, ResourceConfig};
use sparksim::schema::{ColumnDef, TableSchema};
use sparksim::storage::{Column, ColumnData, Table};
use sparksim::types::DataType;
use std::time::Duration;

fn engine() -> Engine {
    let mut catalog = Catalog::new();
    catalog.register(Table::new(
        TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", DataType::Int, false),
                ColumnDef::new("x", DataType::Int, false),
            ],
        ),
        vec![
            Column::non_null(ColumnData::Int((0..200).collect())),
            Column::non_null(ColumnData::Int((0..200).map(|i| i % 10).collect())),
        ],
    ));
    catalog.register(Table::new(
        TableSchema::new(
            "u",
            vec![
                ColumnDef::new("t_id", DataType::Int, false),
                ColumnDef::new("y", DataType::Int, false),
            ],
        ),
        vec![
            Column::non_null(ColumnData::Int((0..400).map(|i| i % 200).collect())),
            Column::non_null(ColumnData::Int((0..400).map(|i| i % 7).collect())),
        ],
    ));
    Engine::new(catalog)
}

fn some_plan(engine: &Engine) -> PhysicalPlan {
    engine
        .plan_candidates("SELECT t.x, COUNT(*) FROM t GROUP BY t.x")
        .unwrap()
        .remove(0)
}

fn resources() -> ResourceConfig {
    ResourceConfig::default_for(&ClusterConfig::default())
}

fn tiny_bundle() -> ModelBundle {
    let corpus = vec![vec!["filescan".to_string(), "hashaggregate".to_string()]];
    let encoder = PlanEncoder::new(
        w2v_train(&corpus, &W2vConfig { dim: 4, epochs: 1, ..Default::default() }),
        EncoderConfig { max_nodes: 32, structure: true },
    );
    let model = CostModel::new(ModelConfig {
        hidden: 8,
        latent_k: 4,
        head_hidden: 8,
        ..ModelConfig::raal(encoder.node_dim())
    });
    ModelBundle::new(model, &encoder)
}

fn gpsj_fallback() -> Box<dyn raal::serving::FallbackModel + Send> {
    Box::new(|plan: &PhysicalPlan, _res: &ResourceConfig| 1.0 + plan.len() as f64)
}

#[test]
fn corrupted_checkpoint_degrades_with_counter() {
    let dir = std::env::temp_dir().join("raal_serving_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("corrupt.json");
    std::fs::write(&path, "{\"not\": \"a bundle\"}").unwrap();

    let engine = engine();
    let plan = some_plan(&engine);
    let lines = telemetry::testing::capture(|| {
        let mut serving =
            ServingModel::from_checkpoint(&path, gpsj_fallback(), ServingConfig::default());
        assert!(serving.is_degraded());
        let pred = serving.predict(&plan, &resources());
        assert_eq!(pred.source, PredictionSource::Fallback(FallbackReason::Checkpoint));
        assert_eq!(pred.seconds, 1.0 + plan.len() as f64);
    });
    assert!(
        lines.iter().any(|l| l.contains("serving.fallback.checkpoint")),
        "fallback counter missing from log"
    );
}

#[test]
fn missing_checkpoint_degrades_instead_of_panicking() {
    let engine = engine();
    let plan = some_plan(&engine);
    let mut serving = ServingModel::from_checkpoint(
        std::path::Path::new("/nonexistent/raal.json"),
        gpsj_fallback(),
        ServingConfig::default(),
    );
    let pred = serving.predict(&plan, &resources());
    assert_eq!(pred.source, PredictionSource::Fallback(FallbackReason::Checkpoint));
}

#[test]
fn oversized_plans_are_not_admitted() {
    let engine = engine();
    let plan = some_plan(&engine);
    let cfg = ServingConfig { max_plan_nodes: 1, ..ServingConfig::default() };
    let mut serving = ServingModel::new(tiny_bundle(), gpsj_fallback(), cfg);
    assert!(!serving.is_degraded());
    let pred = serving.predict(&plan, &resources());
    assert_eq!(pred.source, PredictionSource::Fallback(FallbackReason::Admission));
}

#[test]
fn healthy_model_answers_within_generous_deadline() {
    let engine = engine();
    let plan = some_plan(&engine);
    // Serving quantizes at freeze time by default, so the reference
    // answer comes from an identically-seeded frozen (quantized) model.
    let expected = {
        let bundle = tiny_bundle();
        let encoder = bundle.encoder();
        let features = resources().feature_vector(&ClusterConfig::default());
        let frozen = raal::model::FrozenModel::freeze(bundle.model);
        frozen.predict_seconds(&encoder.encode(&plan), &features)
    };
    let cfg = ServingConfig {
        deadline: Duration::from_secs(10),
        ..ServingConfig::default()
    };
    let lines = telemetry::testing::capture(|| {
        let mut serving = ServingModel::new(tiny_bundle(), gpsj_fallback(), cfg);
        let pred = serving.predict(&plan, &resources());
        assert_eq!(pred.source, PredictionSource::Model);
        assert_eq!(pred.seconds, expected);
    });
    assert!(lines.iter().any(|l| l.contains("serving.predict.model")));
}

#[test]
fn predict_many_scores_candidates_in_one_trip_with_per_plan_admission() {
    let engine = engine();
    let candidates = engine
        .plan_candidates("SELECT t.x, COUNT(*) FROM t, u WHERE t.id = u.t_id GROUP BY t.x")
        .unwrap();
    assert!(candidates.len() >= 2, "need at least two candidate plans");
    let refs: Vec<&PhysicalPlan> = candidates.iter().collect();
    // Admit nothing larger than the smallest candidate: mixed batches
    // must answer oversized plans analytically and the rest by model.
    let max_nodes = refs.iter().map(|p| p.len()).min().unwrap();
    let cfg = ServingConfig {
        deadline: Duration::from_secs(10),
        max_plan_nodes: max_nodes,
        ..ServingConfig::default()
    };
    let mut serving = ServingModel::new(tiny_bundle(), gpsj_fallback(), cfg);
    let preds = serving.predict_many(&refs, &resources());
    assert_eq!(preds.len(), refs.len());
    for (plan, pred) in refs.iter().zip(&preds) {
        if plan.len() > max_nodes {
            assert_eq!(pred.source, PredictionSource::Fallback(FallbackReason::Admission));
            assert_eq!(pred.seconds, 1.0 + plan.len() as f64);
        } else {
            assert_eq!(pred.source, PredictionSource::Model);
        }
    }
    // Batched answers agree with one-at-a-time serving.
    for (plan, pred) in refs.iter().zip(&preds) {
        let single = serving.predict(plan, &resources());
        assert_eq!(single.seconds, pred.seconds);
        assert_eq!(single.source, pred.source);
    }
}

#[test]
fn drop_with_requests_in_flight_joins_the_worker() {
    let engine = engine();
    let plan = some_plan(&engine);
    let cfg = ServingConfig {
        deadline: Duration::ZERO,
        ..ServingConfig::default()
    };
    let mut serving = ServingModel::new(tiny_bundle(), gpsj_fallback(), cfg);
    // Each zero-deadline predict abandons its request mid-inference;
    // fire several so the worker is busy when the model is dropped.
    for _ in 0..3 {
        let pred = serving.predict(&plan, &resources());
        assert!(matches!(pred.source, PredictionSource::Fallback(_)));
    }
    // Dropping must close the request channel and join the worker —
    // completion of this test is the assertion (a lost-wakeup or
    // missed close would hang here; the model-check suite proves the
    // same property across all bounded interleavings).
    drop(serving);
}

#[test]
fn shutdown_from_a_scoped_thread_with_predict_traffic() {
    let engine = engine();
    let plan = some_plan(&engine);
    let cfg = ServingConfig {
        deadline: Duration::from_millis(1),
        ..ServingConfig::default()
    };
    let mut serving = ServingModel::new(tiny_bundle(), gpsj_fallback(), cfg);
    // Hammer predicts from another thread (tight deadline: a mix of
    // model answers and in-flight misses), then drop on this one while
    // the worker may be mid-request.
    std::thread::scope(|s| {
        s.spawn(|| {
            for _ in 0..20 {
                let pred = serving.predict(&plan, &resources());
                assert!(pred.seconds.is_finite());
            }
        });
    });
    drop(serving);
}

#[test]
fn dropping_a_degraded_model_is_trivially_clean() {
    let serving = ServingModel::from_checkpoint(
        std::path::Path::new("/nonexistent/raal.json"),
        gpsj_fallback(),
        ServingConfig::default(),
    );
    assert!(serving.is_degraded());
    drop(serving); // no worker to join
}

#[test]
fn slo_stats_meter_hits_fallbacks_and_budget_burn() {
    let engine = engine();
    let plan = some_plan(&engine);
    // No telemetry capture here on purpose: the SLO tracker is plain
    // counters and must work with the registry disabled.
    let cfg = ServingConfig {
        deadline: Duration::from_secs(10),
        slo_target: 0.5,
        ..ServingConfig::default()
    };
    let mut serving = ServingModel::new(tiny_bundle(), gpsj_fallback(), cfg);
    assert_eq!(serving.slo_stats().hit_rate(), 1.0, "idle server has not missed");

    for _ in 0..3 {
        assert_eq!(serving.predict(&plan, &resources()).source, PredictionSource::Model);
    }
    // Shrink admission so the next predict falls back.
    let mut stats = serving.slo_stats();
    assert_eq!((stats.total, stats.model), (3, 3));
    assert_eq!(stats.hit_rate(), 1.0);
    assert_eq!(stats.fallback_rate(), 0.0);

    let cfg = ServingConfig { max_plan_nodes: 1, ..serving.config().clone() };
    let mut serving2 = ServingModel::new(tiny_bundle(), gpsj_fallback(), cfg);
    serving2.predict(&plan, &resources());
    stats = serving2.slo_stats();
    assert_eq!(stats.count(FallbackReason::Admission), 1);
    assert_eq!(stats.hit_rate(), 0.0);
    assert_eq!(stats.fallback_rate(), 1.0);
    // target 0.5 → budget is half the traffic; one miss in one predict
    // burns 2x the budget.
    assert_eq!(stats.error_budget_burn(FallbackReason::Admission), 2.0);
    assert_eq!(stats.error_budget_burn(FallbackReason::Deadline), 0.0);
}

#[test]
fn slo_gauges_and_latency_reach_the_registry() {
    let engine = engine();
    let plan = some_plan(&engine);
    let cfg = ServingConfig { max_plan_nodes: 1, ..ServingConfig::default() };
    telemetry::testing::capture(|| {
        let mut serving = ServingModel::new(tiny_bundle(), gpsj_fallback(), cfg);
        serving.predict(&plan, &resources());
        let snap = serving.metrics_snapshot();
        assert_eq!(snap.gauges["serving.slo.hit_rate"], 0.0);
        assert_eq!(snap.gauges["serving.slo.fallback_rate"], 1.0);
        assert!(snap.gauges["serving.slo.burn.admission"] > 0.0);
        assert_eq!(snap.gauges["serving.slo.burn.deadline"], 0.0);
        assert_eq!(snap.counters["serving.fallback.admission"], 1);
        assert_eq!(snap.hists["serving.predict_us"].all.count, 1);
    });
}

#[test]
fn zero_deadline_falls_back_then_recovers() {
    let engine = engine();
    let plan = some_plan(&engine);
    let cfg = ServingConfig {
        deadline: Duration::ZERO,
        ..ServingConfig::default()
    };
    let mut serving = ServingModel::new(tiny_bundle(), gpsj_fallback(), cfg);

    // A zero deadline cannot be met: the analytical answer comes back.
    let pred = serving.predict(&plan, &resources());
    assert!(matches!(
        pred.source,
        PredictionSource::Fallback(FallbackReason::Deadline | FallbackReason::Busy)
    ));
    assert_eq!(pred.seconds, 1.0 + plan.len() as f64);

    // Once the deadline is realistic again the worker drains the stale
    // request and the deep model resumes answering.
    serving.set_deadline(Duration::from_secs(10));
    let mut recovered = false;
    for _ in 0..50 {
        if serving.predict(&plan, &resources()).source == PredictionSource::Model {
            recovered = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(recovered, "serving never recovered after a deadline miss");
    assert!(!serving.is_degraded());
}
