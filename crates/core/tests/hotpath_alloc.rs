//! Dynamic witness for the static hot-path guarantee checked by
//! `analysis::panic` (`raal-lint --strict`): after warmup, a
//! steady-state prediction performs **zero heap allocations**.
//!
//! A counting `#[global_allocator]` wraps the system allocator and
//! tallies every `alloc`/`realloc` made by the *armed thread*. The
//! counters are thread-local on purpose: the prediction runs entirely
//! on the calling thread, while the libtest harness's main thread may
//! concurrently park on its test-completion channel — which lazily
//! allocates a waker — and a process-global counter would (flakily)
//! pick that up. The test warms the thread-local inference arena, arms
//! the counter, runs a batch of predictions through both weight tiers,
//! and asserts the count stayed at zero.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use encoding::plan_encoder::{EncodedPlan, PLAN_STAT_FEATURES};
use raal::{CostModel, FrozenModel, ModelConfig};

/// System allocator wrapper that counts the armed thread's allocations.
struct CountingAlloc;

thread_local! {
    // const-initialized so the TLS access itself never allocates (a
    // lazily-initialized thread-local would recurse into `alloc`).
    static ARMED: Cell<bool> = const { Cell::new(false) };
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn tally() {
    // try_with: TLS may be unavailable during thread teardown; those
    // allocations belong to the runtime, not the measured code.
    let _ = ARMED.try_with(|armed| {
        if armed.get() {
            let _ = ALLOCS.try_with(|n| n.set(n.get() + 1));
        }
    });
}

// SAFETY: defers every operation to `System`, which upholds the
// `GlobalAlloc` contract; the counter is a side effect only.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        tally();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: same deferral to `System` as `alloc` above.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        tally();
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs `f` with this thread's allocation counter armed; returns its
/// tally.
fn count_allocs<R>(f: impl FnOnce() -> R) -> (u64, R) {
    ALLOCS.with(|n| n.set(0));
    ARMED.with(|a| a.set(true));
    let r = f();
    ARMED.with(|a| a.set(false));
    (ALLOCS.with(|n| n.get()), r)
}

const DIM: usize = 10;

fn toy_plan(n: usize) -> EncodedPlan {
    EncodedPlan {
        node_features: (0..n)
            .map(|i| (0..DIM).map(|d| ((i * 5 + d) % 11) as f32 / 11.0).collect())
            .collect(),
        children: (0..n).map(|i| if i == 0 { vec![] } else { vec![i - 1] }).collect(),
        plan_stats: vec![0.2; PLAN_STAT_FEATURES],
    }
}

#[test]
fn steady_state_predict_is_allocation_free() {
    let model = CostModel::new(ModelConfig {
        hidden: 8,
        latent_k: 4,
        head_hidden: 8,
        ..ModelConfig::raal(DIM)
    });
    let frozen = FrozenModel::freeze(model);
    let plan = toy_plan(6);
    let resources = vec![1.0f32, 1.0, 0.25, 0.5, 0.25, 0.9, 0.8];

    // Warmup: populate the thread-local arena pools (and any lazy
    // telemetry state) for both weight tiers.
    let mut warm = 0.0;
    for _ in 0..32 {
        warm += frozen.predict_seconds(&plan, &resources);
        warm += frozen.predict_seconds_f32(&plan, &resources);
    }
    assert!(warm.is_finite());

    // Steady state: every buffer comes from the arena, so the global
    // allocator must not be touched at all.
    let (n_quant, y_quant) = count_allocs(|| {
        (0..64)
            .map(|_| frozen.predict_seconds(&plan, &resources))
            .sum::<f64>()
    });
    let (n_f32, y_f32) = count_allocs(|| {
        (0..64)
            .map(|_| frozen.predict_seconds_f32(&plan, &resources))
            .sum::<f64>()
    });

    assert!(y_quant.is_finite() && y_f32.is_finite());
    assert_eq!(
        n_quant, 0,
        "quantized steady-state predict_seconds touched the heap {n_quant} time(s)"
    );
    assert_eq!(n_f32, 0, "f32 steady-state predict_seconds touched the heap {n_f32} time(s)");
}
