//! Integration tests for the sharded multi-tenant serving service:
//! guard rails, fair-share shedding, shutdown semantics, and the
//! bit-identity property — batched (coalesced) predictions must equal
//! the same requests served one at a time, exactly.

use encoding::word2vec::{train as w2v_train, W2vConfig};
use encoding::{EncoderConfig, PlanEncoder};
use raal::model::{CostModel, FrozenModel, ModelConfig};
use raal::persist::ModelBundle;
use raal::serving::shard::{BatchQueue, ReplySlot, ShardConfig, ShardedServing};
use raal::serving::{FallbackModel, FallbackReason, PredictionSource, ServingConfig};
use sparksim::catalog::Catalog;
use sparksim::engine::Engine;
use sparksim::plan::physical::PhysicalPlan;
use sparksim::resource::{ClusterConfig, ResourceConfig};
use sparksim::schema::{ColumnDef, TableSchema};
use sparksim::storage::{Column, ColumnData, Table};
use sparksim::types::DataType;
use std::sync::Arc;
use std::time::Duration;

fn engine() -> Engine {
    let mut catalog = Catalog::new();
    catalog.register(Table::new(
        TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", DataType::Int, false),
                ColumnDef::new("x", DataType::Int, false),
            ],
        ),
        vec![
            Column::non_null(ColumnData::Int((0..200).collect())),
            Column::non_null(ColumnData::Int((0..200).map(|i| i % 10).collect())),
        ],
    ));
    catalog.register(Table::new(
        TableSchema::new(
            "u",
            vec![
                ColumnDef::new("t_id", DataType::Int, false),
                ColumnDef::new("y", DataType::Int, false),
            ],
        ),
        vec![
            Column::non_null(ColumnData::Int((0..400).map(|i| i % 200).collect())),
            Column::non_null(ColumnData::Int((0..400).map(|i| i % 7).collect())),
        ],
    ));
    Engine::new(catalog)
}

fn some_plan(engine: &Engine) -> PhysicalPlan {
    engine
        .plan_candidates("SELECT t.x, COUNT(*) FROM t GROUP BY t.x")
        .unwrap()
        .remove(0)
}

fn candidate_plans(engine: &Engine) -> Vec<PhysicalPlan> {
    engine
        .plan_candidates("SELECT t.x, COUNT(*) FROM t, u WHERE t.id = u.t_id GROUP BY t.x")
        .unwrap()
}

fn resources() -> ResourceConfig {
    ResourceConfig::default_for(&ClusterConfig::default())
}

fn tiny_bundle() -> ModelBundle {
    let corpus = vec![vec!["filescan".to_string(), "hashaggregate".to_string()]];
    let encoder = PlanEncoder::new(
        w2v_train(&corpus, &W2vConfig { dim: 4, epochs: 1, ..Default::default() }),
        EncoderConfig { max_nodes: 32, structure: true },
    );
    let model = CostModel::new(ModelConfig {
        hidden: 8,
        latent_k: 4,
        head_hidden: 8,
        ..ModelConfig::raal(encoder.node_dim())
    });
    ModelBundle::new(model, &encoder)
}

fn analytical() -> Arc<dyn FallbackModel + Send + Sync> {
    Arc::new(|plan: &PhysicalPlan, _res: &ResourceConfig| 1.0 + plan.len() as f64)
}

fn generous(shards: usize) -> ShardConfig {
    ShardConfig {
        shards,
        serving: ServingConfig {
            deadline: Duration::from_secs(10),
            ..Default::default()
        },
        ..Default::default()
    }
}

#[test]
fn sharded_service_is_send_and_sync() {
    fn assert_shareable<T: Send + Sync>() {}
    assert_shareable::<ShardedServing>();
}

#[test]
fn corrupt_checkpoint_degrades_the_whole_service() {
    let dir = std::env::temp_dir().join("raal_shard_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("corrupt.json");
    std::fs::write(&path, "{\"not\": \"a bundle\"}").unwrap();

    let engine = engine();
    let plan = some_plan(&engine);
    let service = ShardedServing::from_checkpoint(&path, analytical(), ShardConfig::default());
    assert!(service.is_degraded());
    assert_eq!(service.shards(), 0);
    let pred = service.predict("tenant-a", &plan, &resources());
    assert_eq!(pred.source, PredictionSource::Fallback(FallbackReason::Checkpoint));
    assert_eq!(pred.seconds, 1.0 + plan.len() as f64);
    let stats = service.slo_stats();
    assert_eq!(stats.total, 1);
    assert_eq!(stats.count(FallbackReason::Checkpoint), 1);
}

#[test]
fn healthy_service_answers_with_the_model() {
    let engine = engine();
    let plan = some_plan(&engine);
    // The reference answer: an identically-seeded frozen model.
    let expected = {
        let bundle = tiny_bundle();
        let encoder = bundle.encoder();
        let features = resources().feature_vector(&ClusterConfig::default());
        FrozenModel::freeze(bundle.model).predict_seconds(&encoder.encode(&plan), &features)
    };
    let lines = telemetry::testing::capture(|| {
        let service = ShardedServing::new(tiny_bundle(), analytical(), generous(2));
        let pred = service.predict("tenant-a", &plan, &resources());
        assert_eq!(pred.source, PredictionSource::Model);
        assert_eq!(pred.seconds, expected);
        let stats = service.slo_stats();
        assert_eq!((stats.total, stats.model), (1, 1));
        assert_eq!(stats.hit_rate(), 1.0);
        service.shutdown();
    });
    assert!(lines.iter().any(|l| l.contains("serving.predict.model")));
    assert!(lines.iter().any(|l| l.contains("serving.shard.batches")));
    assert!(
        lines.iter().any(|l| l.contains("serving.tenant.predict.tenant_a")),
        "per-tenant counter missing (tenant id should be sanitized)"
    );
}

#[test]
fn oversized_plans_fall_back_at_admission() {
    let engine = engine();
    let plan = some_plan(&engine);
    let cfg = ShardConfig {
        serving: ServingConfig {
            deadline: Duration::from_secs(10),
            max_plan_nodes: 1,
            ..Default::default()
        },
        ..Default::default()
    };
    let service = ShardedServing::new(tiny_bundle(), analytical(), cfg);
    let pred = service.predict("tenant-a", &plan, &resources());
    assert_eq!(pred.source, PredictionSource::Fallback(FallbackReason::Admission));
}

#[test]
fn tenant_over_quota_is_shed_but_others_are_not() {
    let engine = engine();
    let plan = some_plan(&engine);
    // A zero in-flight budget sheds every admitted request of the
    // noisy tenant deterministically, without any concurrency setup.
    let cfg = ShardConfig { tenant_inflight: 0, ..generous(1) };
    let lines = telemetry::testing::capture(|| {
        let service = ShardedServing::new(tiny_bundle(), analytical(), cfg);
        let pred = service.predict("noisy", &plan, &resources());
        assert_eq!(pred.source, PredictionSource::Fallback(FallbackReason::TenantQuota));
        assert_eq!(pred.seconds, 1.0 + plan.len() as f64);
        let stats = service.slo_stats();
        assert_eq!(stats.count(FallbackReason::TenantQuota), 1);
    });
    assert!(lines.iter().any(|l| l.contains("serving.fallback.tenant_quota")));
    assert!(lines.iter().any(|l| l.contains("serving.tenant.shed.noisy")));
}

#[test]
fn quota_slots_are_released_after_each_predict() {
    let engine = engine();
    let plan = some_plan(&engine);
    // Budget of one in flight: sequential predicts must all succeed,
    // because each release happens before the next acquire.
    let cfg = ShardConfig { tenant_inflight: 1, ..generous(1) };
    let service = ShardedServing::new(tiny_bundle(), analytical(), cfg);
    for _ in 0..5 {
        let pred = service.predict("tenant-a", &plan, &resources());
        assert_eq!(pred.source, PredictionSource::Model);
    }
    // Deadline-abandoned predicts must release their slot too. A zero
    // deadline races the dispatcher: each predict either abandons
    // (client releases) or still wins a model answer (dispatcher
    // releases) — the slot must come back either way.
    let cfg = ShardConfig {
        tenant_inflight: 1,
        serving: ServingConfig { deadline: Duration::ZERO, ..Default::default() },
        ..ShardConfig::default()
    };
    let service = ShardedServing::new(tiny_bundle(), analytical(), cfg);
    for _ in 0..5 {
        let pred = service.predict("tenant-a", &plan, &resources());
        assert!(pred.seconds.is_finite());
    }
    let stats = service.slo_stats();
    assert_eq!(
        stats.count(FallbackReason::TenantQuota),
        0,
        "abandoned predicts leaked their in-flight slots"
    );
}

#[test]
fn zero_capacity_queue_sheds_busy() {
    let engine = engine();
    let plan = some_plan(&engine);
    let cfg = ShardConfig { queue_capacity: 0, ..generous(1) };
    let service = ShardedServing::new(tiny_bundle(), analytical(), cfg);
    let pred = service.predict("tenant-a", &plan, &resources());
    assert_eq!(pred.source, PredictionSource::Fallback(FallbackReason::Busy));
}

#[test]
fn predict_many_batches_with_per_plan_admission() {
    let engine = engine();
    let candidates = candidate_plans(&engine);
    assert!(candidates.len() >= 2, "need at least two candidate plans");
    let refs: Vec<&PhysicalPlan> = candidates.iter().collect();
    let max_nodes = refs.iter().map(|p| p.len()).min().unwrap();
    let cfg = ShardConfig {
        serving: ServingConfig {
            deadline: Duration::from_secs(10),
            max_plan_nodes: max_nodes,
            ..Default::default()
        },
        ..Default::default()
    };
    let service = ShardedServing::new(tiny_bundle(), analytical(), cfg);
    let preds = service.predict_many("tenant-a", &refs, &resources());
    assert_eq!(preds.len(), refs.len());
    for (plan, pred) in refs.iter().zip(&preds) {
        if plan.len() > max_nodes {
            assert_eq!(pred.source, PredictionSource::Fallback(FallbackReason::Admission));
            assert_eq!(pred.seconds, 1.0 + plan.len() as f64);
        } else {
            assert_eq!(pred.source, PredictionSource::Model);
        }
    }
}

/// The coalescing property: predictions must be **bit-identical**
/// whether a plan is priced alone, in a caller batch, or coalesced with
/// other tenants' concurrent requests — cross-request batching may
/// change throughput, never answers.
#[test]
fn coalesced_predictions_are_bit_identical_to_sequential() {
    let engine = engine();
    let mut plans = candidate_plans(&engine);
    plans.push(some_plan(&engine));
    let features = resources().feature_vector(&ClusterConfig::default());

    // Reference: every plan priced one at a time, straight through the
    // frozen model.
    let bundle = tiny_bundle();
    let encoder = bundle.encoder();
    let frozen = FrozenModel::freeze(bundle.model);
    let expected: Vec<f64> = plans
        .iter()
        .map(|p| frozen.predict_seconds(&encoder.encode(p), &features))
        .collect();

    // Concurrent clients hammer a small shard fleet so dispatch-time
    // coalescing actually happens (one shard, many waiting clients).
    let service = Arc::new(ShardedServing::new(tiny_bundle(), analytical(), generous(1)));
    let threads = 8;
    let rounds = 12;
    std::thread::scope(|s| {
        for t in 0..threads {
            let service = Arc::clone(&service);
            let plans = &plans;
            let expected = &expected;
            s.spawn(move || {
                let res = resources();
                let tenant = format!("tenant-{t}");
                for r in 0..rounds {
                    // Rotate through single-plan and multi-plan calls.
                    if (t + r) % 2 == 0 {
                        let i = (t + r) % plans.len();
                        let pred = service.predict(&tenant, &plans[i], &res);
                        assert_eq!(pred.source, PredictionSource::Model);
                        assert_eq!(
                            pred.seconds.to_bits(),
                            expected[i].to_bits(),
                            "coalesced single predict diverged from sequential reference"
                        );
                    } else {
                        let refs: Vec<&PhysicalPlan> = plans.iter().collect();
                        let preds = service.predict_many(&tenant, &refs, &res);
                        assert_eq!(preds.len(), plans.len());
                        for (k, pred) in preds.iter().enumerate() {
                            assert_eq!(pred.source, PredictionSource::Model);
                            assert_eq!(
                                pred.seconds.to_bits(),
                                expected[k].to_bits(),
                                "coalesced batch predict diverged from sequential reference"
                            );
                        }
                    }
                }
            });
        }
    });
    let stats = service.slo_stats();
    assert_eq!(stats.hit_rate(), 1.0, "every coalesced predict should hit the model");
}

#[test]
fn shutdown_under_traffic_completes_and_sheds_later_predicts() {
    let engine = engine();
    let plan = some_plan(&engine);
    let service = Arc::new(ShardedServing::new(tiny_bundle(), analytical(), generous(2)));
    std::thread::scope(|s| {
        for t in 0..4 {
            let service = Arc::clone(&service);
            let plan = &plan;
            s.spawn(move || {
                let res = resources();
                let tenant = format!("tenant-{t}");
                for _ in 0..10 {
                    // Every call completes with *some* finite answer,
                    // before, during and after shutdown.
                    let pred = service.predict(&tenant, plan, &res);
                    assert!(pred.seconds.is_finite());
                }
            });
        }
        service.shutdown();
    });
    // After shutdown the queues are closed: predicts shed immediately.
    let pred = service.predict("late", &plan, &resources());
    assert_eq!(pred.source, PredictionSource::Fallback(FallbackReason::Busy));
    // Idempotent (and Drop will run it again).
    service.shutdown();
}

#[test]
fn dropping_a_busy_service_joins_all_threads() {
    let engine = engine();
    let plan = some_plan(&engine);
    let cfg = ShardConfig {
        shards: 2,
        serving: ServingConfig { deadline: Duration::ZERO, ..Default::default() },
        ..Default::default()
    };
    let service = ShardedServing::new(tiny_bundle(), analytical(), cfg);
    // Zero-deadline predicts usually abandon their jobs mid-flight
    // (though a fast dispatcher may still win the race); drop must
    // drain, close and join every dispatcher + worker regardless (a
    // hang here is the failure).
    for _ in 0..6 {
        let pred = service.predict("tenant-a", &plan, &resources());
        assert!(pred.seconds.is_finite());
    }
    drop(service);
}

#[test]
fn slo_gauges_and_batch_histograms_reach_the_registry() {
    let engine = engine();
    let plan = some_plan(&engine);
    telemetry::testing::capture(|| {
        let service = ShardedServing::new(tiny_bundle(), analytical(), generous(1));
        let refs = [&plan, &plan];
        let preds = service.predict_many("tenant-a", &refs, &resources());
        assert_eq!(preds.len(), 2);
        service.shutdown();
        let snap = service.metrics_snapshot();
        assert_eq!(snap.gauges["serving.slo.hit_rate"], 1.0);
        assert_eq!(snap.gauges["serving.slo.burn.tenant_quota"], 0.0);
        assert!(snap.counters["serving.shard.batches"] >= 1);
        assert!(snap.hists["serving.batch_size"].all.count >= 1);
        assert_eq!(snap.counters["serving.tenant.predict.tenant_a"], 2);
    });
}

/// Building blocks behave sanely outside the service too (the
/// model-check suite explores their interleavings; this pins the
/// single-threaded contract).
#[test]
fn batch_queue_and_reply_slot_contracts() {
    let q: BatchQueue<u32> = BatchQueue::bounded(2);
    assert!(q.push(1).is_ok());
    assert!(q.push(2).is_ok());
    assert_eq!(q.push(3), Err(3), "full queue hands the item back");
    assert_eq!(q.len(), 2);
    let mut got = Vec::new();
    assert!(q.drain(8, &mut got));
    assert_eq!(got, vec![1, 2]);
    q.close();
    assert_eq!(q.push(4), Err(4), "closed queue rejects pushes");
    assert!(!q.drain(8, &mut got), "closed+empty queue signals exit");

    let slot: ReplySlot<u32> = ReplySlot::new();
    assert!(slot.complete(7), "first completion wins");
    assert!(!slot.complete(8), "second completion is rejected");
    assert_eq!(slot.wait_deadline(Duration::from_secs(1)), Some(7));

    let slot: ReplySlot<u32> = ReplySlot::new();
    assert_eq!(slot.wait_deadline(Duration::ZERO), None, "timeout abandons");
    assert!(!slot.complete(9), "completing an abandoned slot reports false");
}
