//! [`raal::PlanContext`] freshness: a cached context must be rejected
//! after any model mutation (weight updates, retraining, label-stat
//! changes) and must never survive a serde round trip.

use encoding::plan_encoder::{EncodedPlan, Sample, PLAN_STAT_FEATURES};
use raal::{train, CostModel, ModelConfig, TrainConfig};

const DIM: usize = 10;

fn toy_plan(n: usize) -> EncodedPlan {
    EncodedPlan {
        node_features: (0..n)
            .map(|i| (0..DIM).map(|d| ((i * 5 + d) % 11) as f32 / 11.0).collect())
            .collect(),
        children: (0..n).map(|i| if i == 0 { vec![] } else { vec![i - 1] }).collect(),
        plan_stats: vec![0.2; PLAN_STAT_FEATURES],
    }
}

fn resources() -> Vec<f32> {
    vec![1.0, 1.0, 0.25, 0.5, 0.25, 0.9, 0.8]
}

fn small_model() -> CostModel {
    CostModel::new(ModelConfig {
        hidden: 8,
        latent_k: 4,
        head_hidden: 8,
        ..ModelConfig::raal(DIM)
    })
}

#[test]
fn fresh_context_is_current_and_usable() {
    let model = small_model();
    let plan = toy_plan(4);
    let ctx = model.plan_context(&plan);
    assert!(model.context_is_current(&ctx));
    assert_eq!(ctx.num_nodes(), 4);
    assert_eq!(
        model.predict_with_context(&ctx, &resources()),
        model.predict_seconds(&plan, &resources())
    );
}

#[test]
fn stale_after_store_mutation() {
    let mut model = small_model();
    let ctx = model.plan_context(&toy_plan(3));
    // Even a borrow that could change weights invalidates outstanding
    // contexts — freshness must be conservative.
    let _ = model.store_mut();
    assert!(!model.context_is_current(&ctx));
}

#[test]
fn stale_after_label_stats_change() {
    let mut model = small_model();
    let ctx = model.plan_context(&toy_plan(3));
    model.set_label_stats(0.4, 0.2);
    assert!(!model.context_is_current(&ctx));
}

#[test]
fn stale_after_retraining() {
    let mut model = small_model();
    let plan = toy_plan(4);
    let ctx = model.plan_context(&plan);
    let before = model.predict_with_context(&ctx, &resources());
    let samples: Vec<Sample> = (1..9)
        .map(|i| Sample {
            plan: toy_plan(1 + i % 4),
            resources: resources(),
            seconds: 3.0 * i as f64,
        })
        .collect();
    train(
        &mut model,
        &samples,
        &TrainConfig {
            epochs: 1,
            batch_size: 4,
            threads: 1,
            ..Default::default()
        },
    );
    assert!(!model.context_is_current(&ctx), "training must invalidate contexts");
    let fresh = model.plan_context(&plan);
    let after = model.predict_with_context(&fresh, &resources());
    assert_ne!(before, after, "training changed the weights");
}

#[test]
#[should_panic(expected = "stale PlanContext")]
fn stale_context_panics_on_use() {
    let mut model = small_model();
    let ctx = model.plan_context(&toy_plan(3));
    let _ = model.store_mut();
    let _ = model.predict_with_context(&ctx, &resources());
}

#[test]
fn serde_round_trip_does_not_resurrect_contexts() {
    let model = small_model();
    let plan = toy_plan(4);
    let ctx = model.plan_context(&plan);

    let json = serde_json::to_string(&model).unwrap();
    let mut back: CostModel = serde_json::from_str(&json).unwrap();
    back.restore();

    // The deserialised model has a fresh identity: the old context must
    // not validate against it, even though the weights are identical.
    assert!(!back.context_is_current(&ctx));
    assert!(model.context_is_current(&ctx), "original model is untouched");

    // A context recomputed on the restored model gives the same answer.
    let fresh = back.plan_context(&plan);
    assert_eq!(
        back.predict_with_context(&fresh, &resources()),
        model.predict_with_context(&ctx, &resources())
    );
}

#[test]
fn clone_shares_context_validity_until_divergence() {
    let model = small_model();
    let ctx = model.plan_context(&toy_plan(3));
    let mut twin = model.clone();
    // An unmutated clone is state-identical, so the context is valid...
    assert!(twin.context_is_current(&ctx));
    // ...until the clone diverges.
    let _ = twin.store_mut();
    assert!(!twin.context_is_current(&ctx));
    assert!(model.context_is_current(&ctx), "original unaffected by the clone");
}
