//! The quantized inference tier's accuracy and resource contracts:
//!
//! * int8 predictions stay within a relative-error budget of the f32
//!   path across random plans and every model variant (the gate the
//!   ISSUE pins the quantized tier behind);
//! * packed/batched scoring agrees with per-item scoring bit-for-bit;
//! * mixing tiers (an f32 context with quantized weights) panics
//!   instead of silently mispricing;
//! * `FrozenModel` is a shareable `Send + Sync` handle and replicas
//!   share one weight copy;
//! * a warmed serving loop stops allocating inference scratch;
//! * fig1-style plan selection ranks plans the same in both tiers.

use encoding::plan_encoder::{EncodedPlan, PLAN_STAT_FEATURES};
use encoding::word2vec::W2vConfig;
use encoding::EncoderConfig;
use proptest::prelude::*;
use raal::dataset::{collect, CollectionConfig};
use raal::model::{CostModel, FrozenModel, ModelConfig};
use raal::train::{train, TrainConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparksim::resource::ResourceConfig;
use workloads::imdb;

const NODE_DIM: usize = 10;

/// Same random-plan generator as `prop_infer.rs`: a chain backbone with
/// extra child edges, so attention sees leaves and multi-child joins.
fn random_plan(rng: &mut StdRng, n: usize) -> EncodedPlan {
    let node_features = (0..n)
        .map(|_| (0..NODE_DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    let children = (0..n)
        .map(|i| {
            if i == 0 {
                return Vec::new();
            }
            let mut kids = vec![i - 1];
            for j in 0..i - 1 {
                if rng.gen_bool(0.3) {
                    kids.push(j);
                }
            }
            kids
        })
        .collect();
    EncodedPlan {
        node_features,
        children,
        plan_stats: (0..PLAN_STAT_FEATURES).map(|_| rng.gen_range(0.0f32..1.0)).collect(),
    }
}

fn variant(idx: usize) -> ModelConfig {
    let cfg = match idx % 4 {
        0 => ModelConfig::raal(NODE_DIM),
        1 => ModelConfig::na_lstm(NODE_DIM),
        2 => ModelConfig::raac(NODE_DIM),
        _ => ModelConfig::raal(NODE_DIM).without_resources(),
    };
    ModelConfig { hidden: 12, latent_k: 6, head_hidden: 10, ..cfg }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// The accuracy gate on the quantized tier: int8 predictions track
    /// the f32 path within a small relative error in normalised label
    /// space. Per-row scales bound each weight's quantization error by
    /// scale/2 (≲ 0.4% of the row maximum); the budget below leaves
    /// headroom for that error compounding through the LSTM recurrence,
    /// two attention softmaxes and the three head layers.
    #[test]
    fn quantized_predictions_within_relative_error_budget(
        n in 1usize..9,
        seed in 0u64..1_000_000,
        variant_idx in 0usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = random_plan(&mut rng, n);
        let cfg = ModelConfig { seed: seed ^ 0x5eed, ..variant(variant_idx) };
        let resources: Vec<f32> =
            (0..cfg.resource_dim).map(|_| rng.gen_range(0.0f32..1.0)).collect();
        let model = CostModel::new(cfg);
        let f32_pred = model.predict_seconds(&plan, &resources);

        let frozen = FrozenModel::freeze(model);
        let q_pred = frozen.predict_seconds(&plan, &resources);
        prop_assert_eq!(frozen.predict_seconds_f32(&plan, &resources), f32_pred);

        // Compare in the space the model actually regresses (normalised
        // log-seconds): relative error there is what plan ranking sees.
        // Untrained Xavier-random nets are the worst case for int8 —
        // a 2000-model scan put the error at ≤0.11 absolute / ≤8%
        // relative — so the gate sits at 15% with a unit floor.
        let (yq, yf) = ((1.0 + q_pred).ln(), (1.0 + f32_pred).ln());
        let rel = (yq - yf).abs() / yf.abs().max(1.0);
        prop_assert!(
            rel <= 0.15,
            "quant={q_pred} f32={f32_pred} rel={rel} n={n} variant={variant_idx}"
        );

        // Context path agreement within the quantized tier itself.
        let ctx = frozen.plan_context(&plan);
        prop_assert_eq!(frozen.predict_with_context(&ctx, &resources), q_pred);
        frozen.recycle_context(ctx);
    }

    /// Packed K-plan scoring is bit-identical to per-item scoring in
    /// both tiers: head matmuls accumulate each row independently in
    /// the same order at any row count.
    #[test]
    fn packed_batch_matches_per_item_in_both_tiers(
        k in 1usize..6,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let plans: Vec<EncodedPlan> =
            (0..k).map(|i| random_plan(&mut rng, 2 + (i % 6))).collect();
        let cfg = ModelConfig {
            seed: seed ^ 0xba7c4,
            hidden: 12,
            latent_k: 6,
            head_hidden: 10,
            ..ModelConfig::raal(NODE_DIM)
        };
        let resources: Vec<f32> =
            (0..cfg.resource_dim).map(|_| rng.gen_range(0.0f32..1.0)).collect();
        let frozen = FrozenModel::freeze(CostModel::new(cfg));
        let items: Vec<(&EncodedPlan, &[f32])> =
            plans.iter().map(|p| (p, resources.as_slice())).collect();

        let packed = frozen.predict_packed(&items);
        let batched = frozen.predict_batch(&items);
        for (i, plan) in plans.iter().enumerate() {
            let single = frozen.predict_seconds(plan, &resources);
            prop_assert_eq!(packed[i], single, "packed row {} diverged", i);
            prop_assert_eq!(batched[i], single, "batch row {} diverged", i);
        }
    }
}

#[test]
#[should_panic(expected = "tier mismatch")]
fn f32_context_with_quantized_weights_panics() {
    let mut rng = StdRng::seed_from_u64(7);
    let plan = random_plan(&mut rng, 4);
    let cfg = ModelConfig {
        hidden: 12,
        latent_k: 6,
        head_hidden: 10,
        ..ModelConfig::raal(NODE_DIM)
    };
    let resources: Vec<f32> = vec![0.5; cfg.resource_dim];
    let frozen = FrozenModel::freeze(CostModel::new(cfg));
    // An f32-tier context fed to the quantized predictor must panic,
    // not silently mix projection spaces.
    let ctx = frozen.model().plan_context(&plan);
    let _ = frozen.predict_with_context(&ctx, &resources);
}

#[test]
fn frozen_model_is_send_sync_and_shares_weights() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<FrozenModel>();

    let cfg = ModelConfig {
        hidden: 12,
        latent_k: 6,
        head_hidden: 10,
        ..ModelConfig::raal(NODE_DIM)
    };
    let frozen = FrozenModel::freeze(CostModel::new(cfg));
    assert_eq!(frozen.replicas(), 1);
    let replica = frozen.clone();
    assert_eq!(frozen.replicas(), 2);

    // Replicas answer from the same weights, concurrently.
    let mut rng = StdRng::seed_from_u64(11);
    let plan = random_plan(&mut rng, 5);
    let resources: Vec<f32> = vec![0.5; frozen.model().config().resource_dim];
    let expected = frozen.predict_seconds(&plan, &resources);
    let got = std::thread::spawn(move || replica.predict_seconds(&plan, &resources))
        .join()
        .unwrap();
    assert_eq!(got, expected);
    assert_eq!(frozen.replicas(), 1);
}

/// The arena contract the serving loop relies on: after a warm-up
/// prediction sizes the thread-local pool, further predictions on
/// same-shaped inputs perform no fresh inference-scratch allocations
/// and the arena's high-water mark stays put.
#[test]
fn warmed_predictions_reuse_arena_scratch() {
    let mut rng = StdRng::seed_from_u64(23);
    let plan = random_plan(&mut rng, 6);
    let cfg = ModelConfig {
        hidden: 12,
        latent_k: 6,
        head_hidden: 10,
        ..ModelConfig::raal(NODE_DIM)
    };
    let resources: Vec<f32> = vec![0.5; cfg.resource_dim];
    let frozen = FrozenModel::freeze(CostModel::new(cfg));

    // Run on a dedicated thread so this test owns its thread-local arena.
    let stats = std::thread::spawn(move || {
        for _ in 0..3 {
            let _ = frozen.predict_seconds(&plan, &resources);
            let _ = frozen.model().predict_seconds(&plan, &resources);
        }
        let warm = raal::thread_arena_stats();
        for _ in 0..32 {
            let _ = frozen.predict_seconds(&plan, &resources);
            let _ = frozen.model().predict_seconds(&plan, &resources);
        }
        (warm, raal::thread_arena_stats())
    })
    .join()
    .unwrap();
    let (warm, done) = stats;
    assert!(done.takes > warm.takes, "the steady-state loop never touched the arena");
    assert_eq!(
        done.fresh_allocs, warm.fresh_allocs,
        "steady-state predictions allocated fresh scratch: {done:?} after warm-up {warm:?}"
    );
    assert_eq!(
        done.high_water_len, warm.high_water_len,
        "arena high-water mark moved in steady state"
    );
}

/// The end-to-end accuracy gate from the ISSUE: quantization must not
/// change which plan fig1-style selection picks. A trained model ranks
/// a join query's candidates in both tiers; the quantized tier must
/// agree on every pairwise order unless the f32 costs are a near-tie
/// (within 5%), in which case either order is acceptable.
#[test]
fn plan_selection_ranking_survives_quantization() {
    let data = imdb::generate(&imdb::ImdbConfig { title_rows: 400, seed: 5 });
    let scale = data.simulated_scale();
    let graph = data.graph.clone();
    let sim_cfg = sparksim::SimulatorConfig {
        data_scale: scale,
        ..sparksim::SimulatorConfig::default()
    };
    let engine = sparksim::Engine::with_options(
        data.catalog,
        sparksim::plan::planner::PlannerOptions::default(),
        sparksim::ClusterConfig::default(),
        sim_cfg,
    );
    let cfg = CollectionConfig {
        num_queries: 10,
        resource_states_per_plan: 2,
        runs_per_observation: 1,
        threads: 2,
        ..Default::default()
    };
    let coll = collect(&engine, &graph, &cfg);
    let encoder = coll.build_encoder(
        &W2vConfig { dim: 8, epochs: 1, ..Default::default() },
        EncoderConfig::default(),
    );
    let samples = coll.encode(&encoder, &engine);
    let mut model = CostModel::new(ModelConfig {
        hidden: 16,
        latent_k: 8,
        head_hidden: 16,
        ..ModelConfig::raal(encoder.node_dim())
    });
    train(
        &mut model,
        &samples,
        &TrainConfig {
            epochs: 2,
            batch_size: 16,
            threads: 2,
            ..Default::default()
        },
    );

    let plans = engine
        .plan_candidates("SELECT COUNT(*) FROM title t, movie_keyword mk WHERE t.id = mk.movie_id")
        .unwrap();
    assert!(plans.len() >= 2, "join query should enumerate several candidates");
    let res = ResourceConfig::default_for(engine.simulator().cluster());
    let features = res.feature_vector(engine.simulator().cluster());
    let encoded: Vec<_> = plans.iter().map(|p| encoder.encode(p)).collect();
    let items: Vec<_> = encoded.iter().map(|e| (e, features.as_slice())).collect();

    let f32_costs = model.predict_batch(&items);
    let frozen = FrozenModel::freeze(model);
    let q_costs = frozen.predict_packed(&items);

    for i in 0..f32_costs.len() {
        for j in i + 1..f32_costs.len() {
            let near_tie = (f32_costs[i] - f32_costs[j]).abs()
                <= 0.05 * f32_costs[i].max(f32_costs[j]).max(1e-9);
            if near_tie {
                continue;
            }
            assert_eq!(
                f32_costs[i] < f32_costs[j],
                q_costs[i] < q_costs[j],
                "quantization flipped the order of plans {i} ({} vs {}) and {j} ({} vs {})",
                f32_costs[i],
                q_costs[i],
                f32_costs[j],
                q_costs[j],
            );
        }
    }
}
