//! Model-check suite for the serving worker handoff. Compiled only in
//! the model-check configuration (`RUSTFLAGS="--cfg raal_model_check"`),
//! where `raal_sync` swaps its std re-exports for schedule-explored
//! twins: these tests run the *production* [`Handoff`] code — the same
//! channel protocol `ServingModel::predict_many` drives — across every
//! thread interleaving up to the preemption bound, with trivial work
//! functions standing in for inference.
//!
//! A plain `cargo test` compiles this file to nothing; CI runs it in the
//! dedicated model-check job. See DESIGN.md §14 for how to write and
//! replay these tests.
#![cfg(raal_model_check)]

use raal::serving::handoff::Handoff;
use raal::serving::shard::{BatchQueue, ReplySlot};
use raal_sync::model::{check, explore, replay, Config, FailureKind};
use raal_sync::mpsc::RecvTimeoutError;
use raal_sync::sync::Mutex;
use raal_sync::thread;
use std::sync::Arc;
use std::time::Duration;

fn cfg() -> Config {
    Config {
        max_preemptions: 2,
        max_schedules: 200_000,
        max_steps: 10_000,
    }
}

/// The deadline path of `predict_many`, end to end: ship a request,
/// wait with a timeout (which the explorer treats as a nondeterministic
/// branch — both "response arrived" and "deadline missed" schedules are
/// covered), and on a miss drain the stale response the way the serving
/// state machine does before its next send. No interleaving may
/// deadlock, lose the response, or deliver a wrong value.
#[test]
fn worker_handoff_delivers_or_stays_in_flight() {
    explore("serving-worker-handoff", cfg(), || {
        let h = Handoff::spawn(|x: u32| x + 1);
        assert!(h.send(1));
        match h.recv_timeout(Duration::from_millis(5)) {
            Ok(v) => assert_eq!(v, 2),
            Err(RecvTimeoutError::Timeout) => {
                // Deadline missed: the request is still in flight. The
                // caller drains it opportunistically, exactly like
                // predict_many's pending-response bookkeeping.
                if let Ok(v) = h.try_recv() {
                    assert_eq!(v, 2);
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                panic!("worker exited while the handoff handle was live")
            }
        }
        // Dropping the handoff closes the request channel and joins the
        // worker — in every schedule, including mid-work ones.
    });
}

/// Tearing the handoff down while a request is mid-work must terminate:
/// the drop path closes the request channel, the worker finishes the
/// request it holds, fails or succeeds its last response send, and
/// exits; join completes either way.
#[test]
fn drop_with_request_in_flight_never_deadlocks() {
    explore("serving-drop-in-flight", cfg(), || {
        let h = Handoff::spawn(|x: u32| x);
        assert!(h.send(7));
        drop(h);
    });
}

/// FIFO survives deadline misses: with two requests and a worker that
/// echoes them, the successful receives — whether from `recv_timeout`
/// or a stale-response drain — must form a prefix-ordered subsequence
/// of the request order. A stale response can be *delayed* past a
/// deadline, never reordered or duplicated.
#[test]
fn stale_drain_preserves_response_order() {
    explore("serving-stale-drain", cfg(), || {
        let h = Handoff::spawn(|x: u32| x);
        let mut seen = Vec::new();
        assert!(h.send(1));
        match h.recv_timeout(Duration::from_millis(5)) {
            Ok(v) => seen.push(v),
            Err(RecvTimeoutError::Timeout) => {
                if let Ok(v) = h.try_recv() {
                    seen.push(v);
                }
            }
            Err(RecvTimeoutError::Disconnected) => panic!("worker died"),
        }
        assert!(h.send(2));
        if let Ok(v) = h.recv_timeout(Duration::from_millis(5)) {
            seen.push(v);
        }
        assert!(
            seen.is_empty() || seen == [1] || seen == [1, 2],
            "responses reordered or duplicated: {seen:?}"
        );
    });
}

/// The sharded coalescer's core promise, explored on the production
/// [`BatchQueue`]/[`ReplySlot`] types: every pushed job is drained by
/// the dispatcher **exactly once** (no lost requests, no
/// double-dispatch), and for every job the dispatcher's `complete()`
/// verdict agrees with what the client observed — `true` iff the
/// client's wait returned the value. The model treats every timed wait
/// as a nondeterministic branch, so both the delivered and the
/// abandoned outcome of each job are covered.
#[test]
fn coalescer_drains_each_job_exactly_once() {
    explore("shard-coalescer-exactly-once", cfg(), || {
        let q: Arc<BatchQueue<(u32, Arc<ReplySlot<u32>>)>> = Arc::new(BatchQueue::bounded(4));
        let slots: Vec<Arc<ReplySlot<u32>>> = (0..2).map(|_| Arc::new(ReplySlot::new())).collect();
        let qd = q.clone();
        let dispatcher = thread::spawn(move || {
            // The real dispatch loop's shape: drain in coalesced
            // batches until closed-and-empty, settle every job.
            let mut batch = Vec::new();
            let mut log = Vec::new();
            while qd.drain(2, &mut batch) {
                for (v, slot) in batch.drain(..) {
                    log.push((v, slot.complete(v * 10)));
                }
            }
            log
        });
        for (i, slot) in slots.iter().enumerate() {
            assert!(q.push((i as u32 + 1, slot.clone())).is_ok(), "queue has room");
        }
        q.close();
        let got: Vec<Option<u32>> = slots
            .iter()
            .map(|s| s.wait_deadline(Duration::from_millis(5)))
            .collect();
        let log = dispatcher.join().unwrap();
        // No lost requests, no double-dispatch: both jobs drained, once
        // each, in FIFO order.
        let drained: Vec<u32> = log.iter().map(|&(v, _)| v).collect();
        assert_eq!(drained, [1, 2], "jobs lost, duplicated or reordered: {log:?}");
        // Exactly-once settle: the dispatcher delivered iff the client
        // saw the value; an abandoned wait never observes one.
        for (&(v, delivered), got) in log.iter().zip(&got) {
            match got {
                Some(x) => {
                    assert!(delivered, "client got a value the dispatcher never delivered");
                    assert_eq!(*x, v * 10, "wrong value delivered");
                }
                None => assert!(!delivered, "value delivered but the client saw nothing"),
            }
        }
    });
}

/// Shutdown with requests still queued: a producer races `close()`
/// against its own pushes, then the dispatcher drains. Every job must
/// be settled exactly once — by the dispatcher if the push won, by the
/// producer's shed path if `close` won — and the dispatcher must
/// terminate (a hang on `drain` after close is the classic lost-wakeup
/// bug this exists to catch).
#[test]
fn shutdown_with_queued_requests_sheds_or_serves_every_job() {
    explore("shard-coalescer-shutdown", cfg(), || {
        let q: Arc<BatchQueue<Arc<ReplySlot<u32>>>> = Arc::new(BatchQueue::bounded(4));
        let qc = q.clone();
        let closer = thread::spawn(move || qc.close());
        let mut settled_by_producer = 0u32;
        let slots: Vec<Arc<ReplySlot<u32>>> = (0..2).map(|_| Arc::new(ReplySlot::new())).collect();
        for slot in &slots {
            if q.push(slot.clone()).is_err() {
                // close() won the race: shed, like serving's Busy path.
                assert!(slot.complete(0), "producer owns the slot it failed to enqueue");
                settled_by_producer += 1;
            }
        }
        closer.join().unwrap();
        // Dispatcher arrives only after close: the backlog must still
        // come out before drain reports closed-and-empty.
        let mut batch = Vec::new();
        let mut settled_by_dispatcher = 0u32;
        while q.drain(2, &mut batch) {
            for slot in batch.drain(..) {
                assert!(slot.complete(1), "job settled twice");
                settled_by_dispatcher += 1;
            }
        }
        assert_eq!(
            settled_by_producer + settled_by_dispatcher,
            2,
            "a queued request was lost across shutdown"
        );
    });
}

/// The abandon race, isolated: a client with a tiny deadline against a
/// dispatcher completing the slot. In every interleaving exactly one
/// side owns the outcome — `complete()` returns `true` iff the client's
/// wait returned `Some` — which is the agreement the service uses to
/// release a tenant's in-flight slot exactly once.
#[test]
fn reply_slot_settles_exactly_once_under_abandonment() {
    explore("shard-replyslot-abandon", cfg(), || {
        let slot: Arc<ReplySlot<u32>> = Arc::new(ReplySlot::new());
        let sd = slot.clone();
        let dispatcher = thread::spawn(move || sd.complete(7));
        let got = slot.wait_deadline(Duration::from_millis(1));
        let delivered = dispatcher.join().unwrap();
        assert_eq!(
            delivered,
            got.is_some(),
            "settle protocol split-brain: delivered={delivered}, got={got:?}"
        );
        if let Some(v) = got {
            assert_eq!(v, 7);
        }
        // A late completion after the race is always rejected.
        assert!(!slot.complete(8), "slot accepted a second outcome");
    });
}

/// Two completers race one slot: exactly one wins in every schedule —
/// the queue-level exactly-once guarantee cannot be faked by the slot
/// accepting both answers.
#[test]
fn racing_completers_produce_exactly_one_winner() {
    explore("shard-replyslot-race", cfg(), || {
        let slot: Arc<ReplySlot<u32>> = Arc::new(ReplySlot::new());
        let s2 = slot.clone();
        let rival = thread::spawn(move || s2.complete(2));
        let mine = slot.complete(1);
        let theirs = rival.join().unwrap();
        assert!(mine ^ theirs, "expected exactly one winner: mine={mine}, theirs={theirs}");
        let got = slot.wait_deadline(Duration::from_millis(1));
        if let Some(v) = got {
            assert_eq!(v, if mine { 1 } else { 2 }, "loser's value observed");
        }
    });
}

/// The injected-deadlock regression: an intentionally inverted lock
/// order MUST make the checker fail with a deadlock report, and the
/// seed it prints MUST deterministically replay the same failure. If
/// this test ever passes the inverted program, the model checker has
/// lost its teeth — CI runs it to keep the gate honest (raal-lint's
/// `lock-order` rule is the static half of the same regression).
#[test]
fn injected_deadlock_fails_the_checker_and_replays_by_seed() {
    let run = || {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (a.clone(), b.clone());
        let t = thread::spawn(move || {
            let _g1 = b2.lock().unwrap();
            let _g2 = a2.lock().unwrap();
        });
        let _g1 = a.lock().unwrap();
        let _g2 = b.lock().unwrap();
        drop(_g2);
        drop(_g1);
        t.join().unwrap();
    };
    let failure = check(cfg(), run).expect_err("inverted lock order must be caught");
    assert!(
        matches!(failure.kind, FailureKind::Deadlock(_)),
        "unexpected failure: {failure}"
    );
    assert!(failure.seed.starts_with("mc1:"), "unprintable seed: {}", failure.seed);

    let replayed =
        replay(cfg(), &failure.seed, run).expect_err("printed seed must reproduce the deadlock");
    assert!(matches!(replayed.kind, FailureKind::Deadlock(_)), "replay diverged: {replayed}");
}
