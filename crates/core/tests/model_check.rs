//! Model-check suite for the serving worker handoff. Compiled only in
//! the model-check configuration (`RUSTFLAGS="--cfg raal_model_check"`),
//! where `raal_sync` swaps its std re-exports for schedule-explored
//! twins: these tests run the *production* [`Handoff`] code — the same
//! channel protocol `ServingModel::predict_many` drives — across every
//! thread interleaving up to the preemption bound, with trivial work
//! functions standing in for inference.
//!
//! A plain `cargo test` compiles this file to nothing; CI runs it in the
//! dedicated model-check job. See DESIGN.md §14 for how to write and
//! replay these tests.
#![cfg(raal_model_check)]

use raal::serving::handoff::Handoff;
use raal_sync::model::{check, explore, replay, Config, FailureKind};
use raal_sync::mpsc::RecvTimeoutError;
use raal_sync::sync::Mutex;
use raal_sync::thread;
use std::sync::Arc;
use std::time::Duration;

fn cfg() -> Config {
    Config {
        max_preemptions: 2,
        max_schedules: 200_000,
        max_steps: 10_000,
    }
}

/// The deadline path of `predict_many`, end to end: ship a request,
/// wait with a timeout (which the explorer treats as a nondeterministic
/// branch — both "response arrived" and "deadline missed" schedules are
/// covered), and on a miss drain the stale response the way the serving
/// state machine does before its next send. No interleaving may
/// deadlock, lose the response, or deliver a wrong value.
#[test]
fn worker_handoff_delivers_or_stays_in_flight() {
    explore("serving-worker-handoff", cfg(), || {
        let h = Handoff::spawn(|x: u32| x + 1);
        assert!(h.send(1));
        match h.recv_timeout(Duration::from_millis(5)) {
            Ok(v) => assert_eq!(v, 2),
            Err(RecvTimeoutError::Timeout) => {
                // Deadline missed: the request is still in flight. The
                // caller drains it opportunistically, exactly like
                // predict_many's pending-response bookkeeping.
                if let Ok(v) = h.try_recv() {
                    assert_eq!(v, 2);
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                panic!("worker exited while the handoff handle was live")
            }
        }
        // Dropping the handoff closes the request channel and joins the
        // worker — in every schedule, including mid-work ones.
    });
}

/// Tearing the handoff down while a request is mid-work must terminate:
/// the drop path closes the request channel, the worker finishes the
/// request it holds, fails or succeeds its last response send, and
/// exits; join completes either way.
#[test]
fn drop_with_request_in_flight_never_deadlocks() {
    explore("serving-drop-in-flight", cfg(), || {
        let h = Handoff::spawn(|x: u32| x);
        assert!(h.send(7));
        drop(h);
    });
}

/// FIFO survives deadline misses: with two requests and a worker that
/// echoes them, the successful receives — whether from `recv_timeout`
/// or a stale-response drain — must form a prefix-ordered subsequence
/// of the request order. A stale response can be *delayed* past a
/// deadline, never reordered or duplicated.
#[test]
fn stale_drain_preserves_response_order() {
    explore("serving-stale-drain", cfg(), || {
        let h = Handoff::spawn(|x: u32| x);
        let mut seen = Vec::new();
        assert!(h.send(1));
        match h.recv_timeout(Duration::from_millis(5)) {
            Ok(v) => seen.push(v),
            Err(RecvTimeoutError::Timeout) => {
                if let Ok(v) = h.try_recv() {
                    seen.push(v);
                }
            }
            Err(RecvTimeoutError::Disconnected) => panic!("worker died"),
        }
        assert!(h.send(2));
        if let Ok(v) = h.recv_timeout(Duration::from_millis(5)) {
            seen.push(v);
        }
        assert!(
            seen.is_empty() || seen == [1] || seen == [1, 2],
            "responses reordered or duplicated: {seen:?}"
        );
    });
}

/// The injected-deadlock regression: an intentionally inverted lock
/// order MUST make the checker fail with a deadlock report, and the
/// seed it prints MUST deterministically replay the same failure. If
/// this test ever passes the inverted program, the model checker has
/// lost its teeth — CI runs it to keep the gate honest (raal-lint's
/// `lock-order` rule is the static half of the same regression).
#[test]
fn injected_deadlock_fails_the_checker_and_replays_by_seed() {
    let run = || {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (a.clone(), b.clone());
        let t = thread::spawn(move || {
            let _g1 = b2.lock().unwrap();
            let _g2 = a2.lock().unwrap();
        });
        let _g1 = a.lock().unwrap();
        let _g2 = b.lock().unwrap();
        drop(_g2);
        drop(_g1);
        t.join().unwrap();
    };
    let failure = check(cfg(), run).expect_err("inverted lock order must be caught");
    assert!(
        matches!(failure.kind, FailureKind::Deadlock(_)),
        "unexpected failure: {failure}"
    );
    assert!(failure.seed.starts_with("mc1:"), "unprintable seed: {}", failure.seed);

    let replayed =
        replay(cfg(), &failure.seed, run).expect_err("printed seed must reproduce the deadlock");
    assert!(matches!(replayed.kind, FailureKind::Deadlock(_)), "replay diverged: {replayed}");
}
