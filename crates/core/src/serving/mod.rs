//! Degraded-mode serving: deadlines, admission control and an
//! analytical fallback around the deep cost model.
//!
//! A trained [`CostModel`](crate::model::CostModel) is the *fast path*;
//! production plan selection cannot afford to block on it forever or to
//! crash when a checkpoint is corrupt. [`ServingModel`] wraps the model
//! with three guard rails, every trip counted in telemetry:
//!
//! * **checkpoint validation** — a bundle that fails
//!   [`ModelBundle::load`](crate::persist::ModelBundle::load) produces a
//!   permanently degraded server instead of a panic
//!   (`serving.fallback.checkpoint`);
//! * **admission control** — plans larger than
//!   [`ServingConfig::max_plan_nodes`] skip the network
//!   (`serving.fallback.admission`);
//! * **per-predict deadline** — inference runs on a dedicated worker
//!   thread; if it misses [`ServingConfig::deadline`] the caller gets the
//!   analytical estimate instead (`serving.fallback.deadline`), and the
//!   next call falls back immediately while the worker is still busy
//!   (`serving.fallback.busy`).
//!
//! The fallback is any [`FallbackModel`] — in this workspace the GPSJ
//! analytical baseline (`baselines::gpsj::GpsjModel`) implements it, and
//! plain closures work too:
//!
//! ```
//! use raal::serving::{FallbackReason, PredictionSource, ServingConfig, ServingModel};
//! use sparksim::catalog::Catalog;
//! use sparksim::engine::Engine;
//! use sparksim::resource::{ClusterConfig, ResourceConfig};
//! use sparksim::schema::{ColumnDef, TableSchema};
//! use sparksim::storage::{Column, ColumnData, Table};
//! use sparksim::types::DataType;
//!
//! let mut catalog = Catalog::new();
//! catalog.register(Table::new(
//!     TableSchema::new("t", vec![ColumnDef::new("id", DataType::Int, false)]),
//!     vec![Column::non_null(ColumnData::Int((0..100).collect()))],
//! ));
//! let engine = Engine::new(catalog);
//! let plan = engine.plan_candidates("SELECT COUNT(*) FROM t").unwrap().remove(0);
//!
//! // A missing/corrupt checkpoint degrades instead of panicking.
//! let mut serving = ServingModel::from_checkpoint(
//!     std::path::Path::new("/nonexistent/raal.json"),
//!     Box::new(|_plan: &sparksim::PhysicalPlan, _res: &ResourceConfig| 42.0),
//!     ServingConfig::default(),
//! );
//! let pred = serving.predict(&plan, &ResourceConfig::default_for(&ClusterConfig::default()));
//! assert_eq!(pred.seconds, 42.0);
//! assert_eq!(pred.source, PredictionSource::Fallback(FallbackReason::Checkpoint));
//! ```

pub mod handoff;
pub mod shard;

use crate::model::FrozenModel;
use crate::persist::ModelBundle;
use encoding::plan_encoder::EncodedPlan;
use encoding::PlanEncoder;
use handoff::Handoff;
use raal_sync::mpsc::RecvTimeoutError;
use sparksim::plan::physical::PhysicalPlan;
use sparksim::resource::{ClusterConfig, ResourceConfig};
use std::path::Path;
use std::time::Duration;

/// An always-available analytical estimator that backs up the deep
/// model. Implementations must be cheap and total: no I/O, no panics.
///
/// `baselines::gpsj::GpsjModel` implements this; closures of the right
/// shape do too via the blanket impl.
pub trait FallbackModel {
    /// Estimated wall-clock seconds for `plan` under `res`.
    fn estimate_seconds(&self, plan: &PhysicalPlan, res: &ResourceConfig) -> f64;
}

impl<F> FallbackModel for F
where
    F: Fn(&PhysicalPlan, &ResourceConfig) -> f64,
{
    fn estimate_seconds(&self, plan: &PhysicalPlan, res: &ResourceConfig) -> f64 {
        self(plan, res)
    }
}

/// Serving-time guard-rail settings.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Per-predict budget; a model answer that misses it is discarded in
    /// favour of the fallback.
    pub deadline: Duration,
    /// Largest plan (in physical nodes) admitted to the deep model.
    pub max_plan_nodes: usize,
    /// Cluster used to normalise resource feature vectors.
    pub cluster: ClusterConfig,
    /// Serve predictions through the int8 weight tier (the default).
    /// Disable to pin the f32 fast path, e.g. while calibrating the
    /// quantization error budget against production traffic.
    pub quantized: bool,
    /// Target fraction of predictions the deep model should answer
    /// (the serving SLO). The complement is the error budget that
    /// [`SloStats::error_budget_burn`] meters per fallback reason.
    pub slo_target: f64,
}

impl Default for ServingConfig {
    fn default() -> Self {
        Self {
            deadline: Duration::from_millis(50),
            max_plan_nodes: 64,
            cluster: ClusterConfig::default(),
            quantized: true,
            slo_target: 0.99,
        }
    }
}

/// Why a prediction came from the fallback rather than the deep model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// The checkpoint failed to load or failed shape validation.
    Checkpoint,
    /// The plan exceeded [`ServingConfig::max_plan_nodes`].
    Admission,
    /// The model did not answer within [`ServingConfig::deadline`].
    Deadline,
    /// The worker was still busy with a previously timed-out request.
    Busy,
    /// The worker thread died; the server is permanently degraded.
    WorkerLost,
    /// The tenant already had its fair share of requests in flight
    /// ([`shard::ShardConfig::tenant_inflight`]); only the sharded
    /// service produces this reason.
    TenantQuota,
}

impl FallbackReason {
    /// Every reason, in a stable order (indexes [`SloStats::by_reason`]).
    pub const ALL: [FallbackReason; 6] = [
        FallbackReason::Checkpoint,
        FallbackReason::Admission,
        FallbackReason::Deadline,
        FallbackReason::Busy,
        FallbackReason::WorkerLost,
        FallbackReason::TenantQuota,
    ];

    /// The registered telemetry counter for this reason.
    pub fn counter(self) -> &'static str {
        match self {
            FallbackReason::Checkpoint => "serving.fallback.checkpoint",
            FallbackReason::Admission => "serving.fallback.admission",
            FallbackReason::Deadline => "serving.fallback.deadline",
            FallbackReason::Busy => "serving.fallback.busy",
            FallbackReason::WorkerLost => "serving.fallback.worker_lost",
            FallbackReason::TenantQuota => "serving.fallback.tenant_quota",
        }
    }

    /// The registered telemetry gauge for this reason's error-budget
    /// burn ([`SloStats::error_budget_burn`]).
    pub fn burn_gauge(self) -> &'static str {
        match self {
            FallbackReason::Checkpoint => "serving.slo.burn.checkpoint",
            FallbackReason::Admission => "serving.slo.burn.admission",
            FallbackReason::Deadline => "serving.slo.burn.deadline",
            FallbackReason::Busy => "serving.slo.burn.busy",
            FallbackReason::WorkerLost => "serving.slo.burn.worker_lost",
            FallbackReason::TenantQuota => "serving.slo.burn.tenant_quota",
        }
    }

    fn idx(self) -> usize {
        match self {
            FallbackReason::Checkpoint => 0,
            FallbackReason::Admission => 1,
            FallbackReason::Deadline => 2,
            FallbackReason::Busy => 3,
            FallbackReason::WorkerLost => 4,
            FallbackReason::TenantQuota => 5,
        }
    }
}

/// Point-in-time serving-quality statistics: how often the deep model
/// actually answered, and which guard rail ate the misses. Maintained
/// by [`ServingModel`] itself (plain counters, no telemetry required)
/// and mirrored into the `serving.slo.*` gauges after every call when
/// telemetry is enabled.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SloStats {
    /// Predictions served in total.
    pub total: u64,
    /// Predictions answered by the deep model.
    pub model: u64,
    /// Fallback counts, indexed per [`FallbackReason::ALL`].
    pub by_reason: [u64; 6],
    /// The configured [`ServingConfig::slo_target`].
    pub slo_target: f64,
}

impl SloStats {
    /// Fraction of predictions the deep model answered (1.0 before any
    /// traffic — an idle server has not missed its SLO).
    pub fn hit_rate(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.model as f64 / self.total as f64
        }
    }

    /// Fraction of predictions answered by the fallback.
    pub fn fallback_rate(&self) -> f64 {
        1.0 - self.hit_rate()
    }

    /// Fallbacks attributed to `reason`.
    pub fn count(&self, reason: FallbackReason) -> u64 {
        // PANIC-FREE: idx() enumerates the FallbackReason variants and
        // by_reason is sized to that variant count.
        self.by_reason[reason.idx()]
    }

    /// Fraction of the error budget consumed by `reason`: the budget is
    /// `total * (1 - slo_target)` predictions, and each fallback for
    /// this reason burns one. Exceeds 1.0 once the reason alone has
    /// blown the SLO; infinite when the target leaves no budget at all.
    pub fn error_budget_burn(&self, reason: FallbackReason) -> f64 {
        let burned = self.count(reason);
        if self.total == 0 {
            return 0.0;
        }
        let budget = self.total as f64 * (1.0 - self.slo_target.clamp(0.0, 1.0));
        if budget <= 0.0 {
            if burned == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            burned as f64 / budget
        }
    }
}

/// Where a [`ServingPrediction`] came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictionSource {
    /// The deep cost model answered within its deadline.
    Model,
    /// The analytical fallback answered, for the given reason.
    Fallback(FallbackReason),
}

/// One serving-time answer: always produced, never a panic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServingPrediction {
    /// Estimated wall-clock seconds.
    pub seconds: f64,
    /// Which estimator produced it.
    pub source: PredictionSource,
}

struct Request {
    generation: u64,
    /// The K candidate plans of one serving call; the worker scores them
    /// as a single packed batch (one head matmul per layer).
    plans: Vec<EncodedPlan>,
    resources: Vec<f32>,
}

struct Response {
    generation: u64,
    seconds: Vec<f64>,
}

/// The deep cost model behind deadlines, admission control and an
/// analytical fallback. See the [module docs](self) for the contract.
pub struct ServingModel {
    /// The inference worker behind its request/response channels; `None`
    /// once the server is degraded (no worker was ever spawned, or it
    /// was lost and torn down).
    handoff: Option<Handoff<Request, Response>>,
    encoder: Option<PlanEncoder>,
    /// The frozen (`Arc`-shared, quantized-at-load) model; the worker
    /// thread holds a clone of the same handle, so both see one copy of
    /// the weights.
    model: Option<FrozenModel>,
    fallback: Box<dyn FallbackModel + Send>,
    cfg: ServingConfig,
    generation: u64,
    /// A request whose response we stopped waiting for is still in
    /// flight; the worker must drain it before accepting new work.
    pending: bool,
    degraded: Option<FallbackReason>,
    /// Lifetime serving-quality counters, updated from the predictions
    /// actually returned (so they work with telemetry disabled).
    slo: SloStats,
}

impl ServingModel {
    /// Serves a loaded bundle. Quantizes and freezes the model once
    /// ([`FrozenModel::freeze`]) and spawns the inference worker
    /// immediately; the worker shares the frozen weights by reference
    /// count, not by copy.
    pub fn new(
        bundle: ModelBundle,
        fallback: Box<dyn FallbackModel + Send>,
        cfg: ServingConfig,
    ) -> Self {
        let encoder = bundle.encoder();
        let frozen = FrozenModel::freeze(bundle.model);
        let worker_model = frozen.clone();
        let quantized = cfg.quantized;
        let handoff = Handoff::spawn(move |req: Request| {
            let items: Vec<(&EncodedPlan, &[f32])> =
                req.plans.iter().map(|p| (p, req.resources.as_slice())).collect();
            // Packed scoring on the worker thread itself: the worker's
            // arena is reused across requests, so a warmed serving
            // loop performs no inference-scratch allocation.
            let seconds = if quantized {
                worker_model.predict_packed(&items)
            } else {
                worker_model.model().predict_packed(&items)
            };
            Response { generation: req.generation, seconds }
        });
        let slo = SloStats { slo_target: cfg.slo_target, ..SloStats::default() };
        Self {
            handoff: Some(handoff),
            encoder: Some(encoder),
            model: Some(frozen),
            fallback,
            cfg,
            generation: 0,
            pending: false,
            degraded: None,
            slo,
        }
    }

    /// Loads a checkpoint and serves it; a bundle that fails
    /// [`ModelBundle::load`] validation yields a permanently degraded
    /// server (every predict answered by the fallback) instead of an
    /// error or panic.
    pub fn from_checkpoint(
        path: &Path,
        fallback: Box<dyn FallbackModel + Send>,
        cfg: ServingConfig,
    ) -> Self {
        match ModelBundle::load(path) {
            Ok(bundle) => Self::new(bundle, fallback, cfg),
            Err(_) => Self::degraded(fallback, cfg, FallbackReason::Checkpoint),
        }
    }

    /// A server with no deep model at all — every predict is answered by
    /// the fallback with the given sticky reason.
    pub fn degraded(
        fallback: Box<dyn FallbackModel + Send>,
        cfg: ServingConfig,
        reason: FallbackReason,
    ) -> Self {
        let slo = SloStats { slo_target: cfg.slo_target, ..SloStats::default() };
        Self {
            handoff: None,
            encoder: None,
            model: None,
            fallback,
            cfg,
            generation: 0,
            pending: false,
            degraded: Some(reason),
            slo,
        }
    }

    /// The frozen model handle, when the server is healthy. Cloning it
    /// is a reference-count bump — replicas share one copy of the
    /// weights ([`FrozenModel`]).
    pub fn model(&self) -> Option<&FrozenModel> {
        self.model.as_ref()
    }

    /// True when the deep model is out of the serving path for good.
    pub fn is_degraded(&self) -> bool {
        self.degraded.is_some()
    }

    /// The active configuration.
    pub fn config(&self) -> &ServingConfig {
        &self.cfg
    }

    /// Adjusts the per-predict deadline at runtime (e.g. tightening
    /// under load, loosening for batch scoring).
    pub fn set_deadline(&mut self, deadline: Duration) {
        self.cfg.deadline = deadline;
    }

    /// Scores a plan, never failing and never exceeding roughly one
    /// deadline of latency: the deep model's answer if it arrives in
    /// time, the fallback's otherwise. Increments `serving.predict`
    /// plus either `serving.predict.model` or the per-reason
    /// `serving.fallback.*` counter.
    pub fn predict(&mut self, plan: &PhysicalPlan, res: &ResourceConfig) -> ServingPrediction {
        let mut out = self.predict_many(&[plan], res);
        debug_assert_eq!(out.len(), 1);
        out.remove(0)
    }

    /// Scores K candidate plans under one resource configuration in a
    /// single worker round trip: the admitted plans are shipped together
    /// and the worker prices them as one packed batch (one head matmul
    /// per layer, [`crate::model::CostModel::predict_packed`]), so
    /// candidate selection pays one deadline, not K. Oversized plans
    /// fall back individually (`serving.fallback.admission`); a deadline
    /// miss falls back for every admitted plan. Increments
    /// `serving.predict` once per plan.
    pub fn predict_many(
        &mut self,
        plans: &[&PhysicalPlan],
        res: &ResourceConfig,
    ) -> Vec<ServingPrediction> {
        let t0 = telemetry::clock_us();
        let out = self.predict_many_inner(plans, res);
        telemetry::observe("serving.predict_us", telemetry::clock_us().saturating_sub(t0));
        for p in &out {
            self.slo.total += 1;
            match p.source {
                PredictionSource::Model => self.slo.model += 1,
                // PANIC-FREE: idx() enumerates the variants and
                // by_reason is sized to the variant count.
                PredictionSource::Fallback(reason) => self.slo.by_reason[reason.idx()] += 1,
            }
        }
        if !out.is_empty() {
            self.publish_slo();
        }
        out
    }

    /// Lifetime serving-quality counters for this server.
    pub fn slo_stats(&self) -> SloStats {
        self.slo
    }

    /// A consistent snapshot of the process-wide metrics registry —
    /// serving counters, `serving.slo.*` gauges and the
    /// `serving.predict_us` latency histogram included. Empty when
    /// telemetry is disabled; [`Self::slo_stats`] is the always-on view.
    pub fn metrics_snapshot(&self) -> telemetry::MetricsSnapshot {
        telemetry::metrics_snapshot()
    }

    /// Mirrors [`SloStats`] into the registered `serving.slo.*` gauges.
    fn publish_slo(&self) {
        telemetry::gauge("serving.slo.hit_rate", self.slo.hit_rate());
        telemetry::gauge("serving.slo.fallback_rate", self.slo.fallback_rate());
        for reason in FallbackReason::ALL {
            telemetry::gauge(reason.burn_gauge(), self.slo.error_budget_burn(reason));
        }
    }

    fn predict_many_inner(
        &mut self,
        plans: &[&PhysicalPlan],
        res: &ResourceConfig,
    ) -> Vec<ServingPrediction> {
        let _span = telemetry::span("serving.predict");
        telemetry::count("serving.predict", plans.len() as u64);
        if plans.is_empty() {
            // HOT-ALLOC: Vec::new is capacity 0 — no heap allocation.
            return Vec::new();
        }
        if let Some(reason) = self.degraded {
            // HOT-ALLOC: one response vector per request — the serving
            // API hands owned predictions back to the caller.
            return plans.iter().map(|p| self.fall_back(p, res, reason)).collect();
        }
        // Per-plan admission: oversized plans are answered analytically,
        // the rest ride in one batch.
        // HOT-ALLOC: per-request batch assembly — the slot vector, the
        // admitted-index list and the response vector are all sized by
        // the caller's batch and returned to (or dropped with) it.
        // PANIC-FREE: i ranges over 0..plans.len() == out.len().
        let mut out: Vec<Option<ServingPrediction>> = plans
            .iter()
            .map(|p| {
                (p.len() > self.cfg.max_plan_nodes)
                    .then(|| self.fall_back(p, res, FallbackReason::Admission))
            })
            .collect();
        let admitted: Vec<usize> = (0..plans.len()).filter(|&i| out[i].is_none()).collect();
        if admitted.is_empty() {
            // HOT-ALLOC: the per-request response vector.
            return out.into_iter().flatten().collect();
        }
        // Drain any response from a request we previously abandoned.
        if self.pending {
            if let Some(handoff) = &self.handoff {
                while handoff.try_recv().is_ok() {
                    self.pending = false;
                }
            }
            if self.pending {
                return self.resolve_all(out, plans, res, FallbackReason::Busy);
            }
        }
        let (encoded, features) = match &self.encoder {
            // HOT-ALLOC: encoding builds one owned EncodedPlan per
            // admitted plan; the worker takes ownership across the
            // channel. PANIC-FREE: admitted holds indices < plans.len().
            Some(encoder) => (
                admitted.iter().map(|&i| encoder.encode(plans[i])).collect::<Vec<_>>(),
                res.feature_vector(&self.cfg.cluster),
            ),
            None => return self.mark_lost(out, plans, res),
        };
        self.generation += 1;
        let generation = self.generation;
        let sent = match &self.handoff {
            Some(handoff) => {
                handoff.send(Request { generation, plans: encoded, resources: features })
            }
            None => false,
        };
        if !sent {
            return self.mark_lost(out, plans, res);
        }
        loop {
            let received = match &self.handoff {
                Some(handoff) => handoff.recv_timeout(self.cfg.deadline),
                None => Err(RecvTimeoutError::Disconnected),
            };
            match received {
                Ok(resp) if resp.generation == generation => {
                    telemetry::count("serving.predict.model", admitted.len() as u64);
                    // PANIC-FREE: admitted holds indices < out.len().
                    // HOT-ALLOC: the per-request response vector.
                    for (&i, &seconds) in admitted.iter().zip(resp.seconds.iter()) {
                        out[i] =
                            Some(ServingPrediction { seconds, source: PredictionSource::Model });
                    }
                    return out.into_iter().flatten().collect();
                }
                // A stale response from an abandoned request; keep
                // waiting (each drained stale answer frees the worker,
                // so this loop is bounded by the generation counter).
                Ok(_stale) => continue,
                Err(RecvTimeoutError::Timeout) => {
                    self.pending = true;
                    return self.resolve_all(out, plans, res, FallbackReason::Deadline);
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return self.mark_lost(out, plans, res);
                }
            }
        }
    }

    /// Fills every unresolved slot with a fallback answer for `reason`.
    fn resolve_all(
        &self,
        out: Vec<Option<ServingPrediction>>,
        plans: &[&PhysicalPlan],
        res: &ResourceConfig,
        reason: FallbackReason,
    ) -> Vec<ServingPrediction> {
        // HOT-ALLOC: the per-request response vector.
        out.into_iter()
            .zip(plans.iter())
            .map(|(slot, plan)| match slot {
                Some(p) => p,
                None => self.fall_back(plan, res, reason),
            })
            .collect()
    }

    fn mark_lost(
        &mut self,
        out: Vec<Option<ServingPrediction>>,
        plans: &[&PhysicalPlan],
        res: &ResourceConfig,
    ) -> Vec<ServingPrediction> {
        self.degraded = Some(FallbackReason::WorkerLost);
        // Tearing down the handoff closes the request channel and joins
        // the (dead or dying) worker thread.
        self.handoff = None;
        self.resolve_all(out, plans, res, FallbackReason::WorkerLost)
    }

    fn fall_back(
        &self,
        plan: &PhysicalPlan,
        res: &ResourceConfig,
        reason: FallbackReason,
    ) -> ServingPrediction {
        telemetry::count(reason.counter(), 1);
        ServingPrediction {
            seconds: self.fallback.estimate_seconds(plan, res),
            source: PredictionSource::Fallback(reason),
        }
    }
}
