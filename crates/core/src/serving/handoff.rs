//! The worker handoff behind [`ServingModel`](super::ServingModel):
//! one dedicated worker thread, one request channel, one response
//! channel, and a deadline-aware receive path.
//!
//! Extracted as its own generic component for two reasons. First, the
//! protocol — close-to-stop, generation tags above, stale-response
//! draining — is exactly what a sharded serving layer will need per
//! shard, so it should exist once. Second, it is built on
//! [`raal_sync`]'s primitives, which means the *real* handoff code (not
//! a test double) runs under the schedule explorer in the
//! model-check build: `crates/core/tests/model_check.rs` proves the
//! protocol deadlock-free across all bounded interleavings with trivial
//! work functions standing in for inference.
//!
//! The component is deliberately dumb: no generations, no pending
//! flags. Those belong to the caller ([`predict_many`]'s state
//! machine), because they are per-*request-stream* policy, not
//! per-channel mechanics.
//!
//! [`predict_many`]: super::ServingModel::predict_many

use raal_sync::mpsc::{self, RecvTimeoutError, TryRecvError};
use raal_sync::thread;
use std::time::Duration;

/// A dedicated worker thread processing `Req → Resp` over a pair of
/// channels. Dropping the handle closes the request channel (stopping
/// the worker loop) and joins the thread.
pub struct Handoff<Req, Resp> {
    tx: Option<mpsc::Sender<Req>>,
    rx: mpsc::Receiver<Resp>,
    worker: Option<thread::JoinHandle<()>>,
}

impl<Req: Send + 'static, Resp: Send + 'static> Handoff<Req, Resp> {
    /// Spawns the worker. It applies `work` to each request in arrival
    /// order and exits when the request channel closes (handle dropped)
    /// or a response cannot be delivered (receiver gone).
    pub fn spawn<F>(mut work: F) -> Self
    where
        F: FnMut(Req) -> Resp + Send + 'static,
    {
        let (req_tx, req_rx) = mpsc::channel::<Req>();
        let (resp_tx, resp_rx) = mpsc::channel::<Resp>();
        let worker = thread::spawn(move || {
            while let Ok(req) = req_rx.recv() {
                if resp_tx.send(work(req)).is_err() {
                    break;
                }
            }
        });
        Self {
            tx: Some(req_tx),
            rx: resp_rx,
            worker: Some(worker),
        }
    }

    /// Ships a request to the worker; false means the worker is gone
    /// (its thread exited, e.g. the work function panicked).
    pub fn send(&self, req: Req) -> bool {
        match &self.tx {
            Some(tx) => tx.send(req).is_ok(),
            None => false,
        }
    }

    /// Waits up to `timeout` for the next response. `Timeout` means the
    /// worker is still busy — the request stays in flight and its
    /// response must eventually be drained ([`Handoff::try_recv`]) or
    /// consumed by a later receive.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Resp, RecvTimeoutError> {
        self.rx.recv_timeout(timeout)
    }

    /// Non-blocking receive, used to drain responses of abandoned
    /// requests before shipping a new one.
    pub fn try_recv(&self) -> Result<Resp, TryRecvError> {
        self.rx.try_recv()
    }
}

impl<Req, Resp> Drop for Handoff<Req, Resp> {
    fn drop(&mut self) {
        // Closing the request channel stops the worker loop; joining
        // bounds shutdown (the worker finishes at most the request it
        // already holds).
        self.tx = None;
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}
