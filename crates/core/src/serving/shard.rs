//! Sharded multi-tenant serving: N frozen-model replicas behind
//! striped request queues, with cross-request batching and per-tenant
//! fair-share admission.
//!
//! [`ServingModel`](super::ServingModel) is one worker behind one
//! caller; this module is the cluster-scale version. A
//! [`ShardedServing`] service owns [`ShardConfig::shards`] *shards*,
//! each a [`BatchQueue`] + dispatcher thread + [`Handoff`] inference
//! worker holding a clone of one Arc-shared [`FrozenModel`] (a
//! reference-count bump — all shards price with the same weights).
//! Client threads call [`ShardedServing::predict`] concurrently through
//! `&self`; each call is striped round-robin onto a shard queue, and
//! the shard's **coalescer** packs every request that is queued at
//! dispatch time — up to [`ShardConfig::max_batch`] of them — into a
//! single [`predict_packed`](FrozenModel::predict_packed) call, so
//! concurrent tenants share one head matmul per layer exactly the way
//! one caller's `predict_many` batch does.
//!
//! The guard rails of the single-worker server all carry over, per
//! shard: the dispatcher runs `predict_many`'s generation/pending
//! state machine over the same [`Handoff`] protocol (deadline →
//! `serving.fallback.deadline`, wedged worker → `serving.fallback.busy`,
//! dead worker → `serving.fallback.worker_lost`), oversized plans fall
//! back at admission, and a corrupt checkpoint degrades the whole
//! service instead of panicking. Two additions are new here:
//!
//! * **fair-share admission** — a tenant with
//!   [`ShardConfig::tenant_inflight`] requests already in flight is
//!   shed analytically (`serving.fallback.tenant_quota`), so one noisy
//!   tenant cannot queue out the rest;
//! * **per-tenant telemetry** — every call counts
//!   `serving.tenant.predict.<tenant>`, every shed request counts
//!   `serving.tenant.shed.<tenant>`.
//!
//! A permanently degraded service still answers every call from the
//! analytical fallback:
//!
//! ```
//! use raal::serving::shard::{ShardConfig, ShardedServing};
//! use raal::serving::{FallbackReason, PredictionSource};
//! use sparksim::catalog::Catalog;
//! use sparksim::engine::Engine;
//! use sparksim::resource::{ClusterConfig, ResourceConfig};
//! use sparksim::schema::{ColumnDef, TableSchema};
//! use sparksim::storage::{Column, ColumnData, Table};
//! use sparksim::types::DataType;
//! use std::sync::Arc;
//!
//! let mut catalog = Catalog::new();
//! catalog.register(Table::new(
//!     TableSchema::new("t", vec![ColumnDef::new("id", DataType::Int, false)]),
//!     vec![Column::non_null(ColumnData::Int((0..100).collect()))],
//! ));
//! let engine = Engine::new(catalog);
//! let plan = engine.plan_candidates("SELECT COUNT(*) FROM t").unwrap().remove(0);
//!
//! let service = ShardedServing::from_checkpoint(
//!     std::path::Path::new("/nonexistent/raal.json"),
//!     Arc::new(|_: &sparksim::PhysicalPlan, _: &ResourceConfig| 42.0),
//!     ShardConfig::default(),
//! );
//! assert!(service.is_degraded());
//! let pred = service.predict("tenant-a", &plan, &ResourceConfig::default_for(&ClusterConfig::default()));
//! assert_eq!(pred.seconds, 42.0);
//! assert_eq!(pred.source, PredictionSource::Fallback(FallbackReason::Checkpoint));
//! ```
//!
//! The building blocks ([`BatchQueue`], [`ReplySlot`]) are public on
//! purpose: they are built on [`raal_sync`] primitives, so the
//! model-check suite (`crates/core/tests/model_check.rs`) explores the
//! *real* coalescer protocol — not a test double — across all bounded
//! schedules, proving no request is lost, none is answered twice, and
//! shutdown completes with requests still queued.

#![deny(missing_docs)]

use super::handoff::Handoff;
use super::{
    FallbackModel, FallbackReason, PredictionSource, ServingConfig, ServingPrediction, SloStats,
};
use crate::model::FrozenModel;
use crate::persist::ModelBundle;
use encoding::plan_encoder::EncodedPlan;
use encoding::PlanEncoder;
use raal_sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use raal_sync::mpsc::RecvTimeoutError;
use raal_sync::sync::{Condvar, Mutex, MutexGuard};
use raal_sync::thread;
use sparksim::plan::physical::PhysicalPlan;
use sparksim::resource::ResourceConfig;
use std::collections::{HashMap, VecDeque};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// Acquires a mutex, recovering the guard from a poisoned lock: every
/// protected value here (queue states, reply slots, the tenant map)
/// stays consistent across a panicking holder, because each critical
/// section is a handful of field writes with no invariant spanning an
/// unwind point.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Blocks on a condvar, recovering from poison like [`lock`].
fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    match cv.wait(guard) {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Timed condvar wait; returns the reacquired guard and whether the
/// wait timed out.
fn wait_timeout<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: Duration,
) -> (MutexGuard<'a, T>, bool) {
    match cv.wait_timeout(guard, dur) {
        Ok((guard, timeout)) => (guard, timeout.timed_out()),
        Err(poisoned) => {
            let (guard, timeout) = poisoned.into_inner();
            (guard, timeout.timed_out())
        }
    }
}

/// Sharded-service settings. The per-request guard rails (deadline,
/// admission size, quantization tier, SLO target) live in the embedded
/// [`ServingConfig`]; the fields here shape the fleet around them.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of shards (queue + dispatcher + inference worker trios).
    /// Each shard prices one coalesced batch at a time, so this is the
    /// service's inference parallelism. Clamped to at least 1.
    pub shards: usize,
    /// Most requests one dispatch may coalesce into a single packed
    /// inference call. Larger batches amortise the per-layer matmul
    /// further but put more requests behind one deadline. Clamped to
    /// at least 1.
    pub max_batch: usize,
    /// Bound on queued requests per shard; a full queue sheds new
    /// arrivals to the fallback (`serving.fallback.busy`) instead of
    /// growing without limit.
    pub queue_capacity: usize,
    /// Fair-share cap: the most requests one tenant may have in flight
    /// (queued or being priced) across the whole service before new
    /// ones are shed (`serving.fallback.tenant_quota`).
    pub tenant_inflight: u32,
    /// The per-request guard rails, shared with the single-worker
    /// [`ServingModel`](super::ServingModel).
    pub serving: ServingConfig,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            max_batch: 32,
            queue_capacity: 1024,
            tenant_inflight: 64,
            serving: ServingConfig::default(),
        }
    }
}

/// A single-use completion cell: the serving client parks on it while
/// the shard dispatcher works, and exactly one of them settles it.
///
/// The three states make the settle race explicit: the dispatcher's
/// [`complete`](Self::complete) moves `Waiting → Done` and returns
/// `true`; a client whose [`wait_deadline`](Self::wait_deadline)
/// expires moves `Waiting → Abandoned`, after which `complete` returns
/// `false` — so both sides always agree on who owned the outcome (the
/// service uses that agreement to release the tenant's in-flight slot
/// exactly once).
pub struct ReplySlot<T> {
    state: Mutex<SlotState<T>>,
    cv: Condvar,
}

enum SlotState<T> {
    Waiting,
    Done(T),
    Abandoned,
}

impl<T> ReplySlot<T> {
    /// A fresh slot in the `Waiting` state.
    pub fn new() -> Self {
        Self {
            state: Mutex::new(SlotState::Waiting),
            cv: Condvar::new(),
        }
    }

    /// Settles the slot with `value` if it is still awaited; `true`
    /// means this call delivered the outcome, `false` that the waiter
    /// already abandoned it (or it was settled before).
    pub fn complete(&self, value: T) -> bool {
        let mut state = lock(&self.state);
        match *state {
            SlotState::Waiting => {
                *state = SlotState::Done(value);
                self.cv.notify_all();
                true
            }
            _ => false,
        }
    }

    /// Waits up to `deadline` for the outcome. `None` means the wait
    /// expired and the slot is now `Abandoned`: a later `complete` will
    /// return `false` and the value will be dropped by the completer.
    pub fn wait_deadline(&self, deadline: Duration) -> Option<T> {
        let mut state = lock(&self.state);
        loop {
            match std::mem::replace(&mut *state, SlotState::Abandoned) {
                SlotState::Done(value) => return Some(value),
                SlotState::Abandoned => return None,
                SlotState::Waiting => {}
            }
            *state = SlotState::Waiting;
            let (reacquired, timed_out) = wait_timeout(&self.cv, state, deadline);
            state = reacquired;
            if timed_out {
                // The completer may have slipped in between the timeout
                // and reacquiring the lock; prefer its answer.
                return match std::mem::replace(&mut *state, SlotState::Abandoned) {
                    SlotState::Done(value) => Some(value),
                    _ => None,
                };
            }
            // Woken without timeout: re-check the state. Only
            // `complete` notifies, so a wake without `Done` is a
            // spurious one and the loop re-arms the full deadline —
            // acceptable, since that costs latency only on a wakeup
            // that real condvars essentially never deliver.
        }
    }
}

impl<T> Default for ReplySlot<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// A bounded multi-producer queue drained in batches by one consumer —
/// the mutex-striped buffer between serving clients and a shard's
/// dispatcher.
///
/// [`push`](Self::push) never blocks (a full or closed queue rejects
/// the item back to the caller, which sheds it to the fallback);
/// [`drain`](Self::drain) blocks until work or close. After
/// [`close`](Self::close), pushes fail but drains keep returning the
/// backlog until it is empty, which is how shutdown guarantees no
/// queued request is lost.
pub struct BatchQueue<T> {
    state: Mutex<QueueState<T>>,
    cv: Condvar,
    capacity: usize,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> BatchQueue<T> {
    /// A queue holding at most `capacity` items (0 rejects everything).
    pub fn bounded(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState { items: VecDeque::new(), closed: false }),
            cv: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues `item`, or hands it back if the queue is full or
    /// closed. Never blocks.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = lock(&self.state);
        if state.closed || state.items.len() >= self.capacity {
            return Err(item);
        }
        state.items.push_back(item);
        self.cv.notify_one();
        Ok(())
    }

    /// Moves up to `max` queued items into `into`, blocking while the
    /// queue is empty and open. Returns `false` only when the queue is
    /// closed *and* fully drained — the consumer's signal to exit.
    pub fn drain(&self, max: usize, into: &mut Vec<T>) -> bool {
        let mut state = lock(&self.state);
        loop {
            if !state.items.is_empty() {
                let take = max.max(1).min(state.items.len());
                into.extend(state.items.drain(..take));
                return true;
            }
            if state.closed {
                return false;
            }
            state = wait(&self.cv, state);
        }
    }

    /// Closes the queue: future pushes fail, and drains return the
    /// remaining backlog then `false`.
    pub fn close(&self) {
        let mut state = lock(&self.state);
        state.closed = true;
        self.cv.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        lock(&self.state).items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One tenant's admission state and cached telemetry names. The names
/// are built once at first sighting so the per-predict counter bumps
/// borrow them without allocating.
struct TenantEntry {
    inflight: AtomicU32,
    predict_counter: String,
    shed_counter: String,
}

impl TenantEntry {
    /// Claims an in-flight slot under `limit`; `false` means the tenant
    /// is at its fair share and the request must be shed.
    fn try_acquire(&self, limit: u32) -> bool {
        // ORDERING: the in-flight gate is a saturation counter; no data
        // is published through it, so relaxed increments suffice.
        let prev = self.inflight.fetch_add(1, Ordering::Relaxed);
        if prev >= limit {
            // ORDERING: undo of the optimistic relaxed increment above.
            self.inflight.fetch_sub(1, Ordering::Relaxed);
            return false;
        }
        true
    }

    /// Returns an in-flight slot claimed by [`Self::try_acquire`].
    fn release(&self) {
        // ORDERING: matches the relaxed admission counter in try_acquire.
        self.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The tenant registry: interns one [`TenantEntry`] per tenant id.
struct TenantTable {
    map: Mutex<HashMap<String, Arc<TenantEntry>>>,
    limit: u32,
}

impl TenantTable {
    fn new(limit: u32) -> Self {
        Self { map: Mutex::new(HashMap::new()), limit }
    }

    /// The interned entry for `tenant`, created on first sighting. The
    /// sanitized `serving.tenant.*` counter names are built exactly
    /// once, here.
    fn entry(&self, tenant: &str) -> Arc<TenantEntry> {
        let mut map = lock(&self.map);
        if let Some(entry) = map.get(tenant) {
            // HOT-ALLOC: Arc::clone is a reference-count bump, not a
            // heap allocation.
            return entry.clone();
        }
        // First sighting of this tenant: one-time registration cost
        // (sanitized name strings, map entry); every later predict
        // takes the borrow-only path above.
        let sanitized = sanitize_tenant(tenant);
        // HOT-ALLOC: once per tenant lifetime, not per predict.
        let entry = Arc::new(TenantEntry {
            inflight: AtomicU32::new(0),
            predict_counter: format!("serving.tenant.predict.{sanitized}"),
            shed_counter: format!("serving.tenant.shed.{sanitized}"),
        });
        // HOT-ALLOC: once per tenant lifetime (see above).
        map.insert(tenant.to_string(), entry.clone());
        entry
    }
}

/// Folds a tenant id into the telemetry name alphabet (`[a-z0-9_]`),
/// so the `serving.tenant.*` counter families stay Prometheus-safe no
/// matter what callers pass.
fn sanitize_tenant(tenant: &str) -> String {
    let mut out: String = tenant
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect();
    if out.is_empty() {
        out.push_str("anon");
    }
    out
}

/// The answer a dispatcher settles a [`ReplySlot`] with: one source for
/// the whole coalesced job, and one estimate per admitted plan.
struct JobOutcome {
    source: PredictionSource,
    seconds: Vec<f64>,
}

/// One queued serving call: the admitted plans of a `predict_many`,
/// pre-encoded and priced analytically on the client thread (the
/// fallback must be cheap and total, and pricing it eagerly means the
/// dispatcher never needs the borrowed `PhysicalPlan`s).
struct ShardJob {
    plans: Vec<EncodedPlan>,
    resources: Vec<f32>,
    fallback: Vec<f64>,
    tenant: Arc<TenantEntry>,
    reply: Arc<ReplySlot<JobOutcome>>,
}

/// One coalesced batch shipped to a shard's inference worker.
struct WorkRequest {
    generation: u64,
    /// Per job: its encoded plans and its resource feature vector.
    jobs: Vec<(Vec<EncodedPlan>, Vec<f32>)>,
}

/// The worker's packed answer, tagged with the request generation so
/// the dispatcher can discard answers to batches it stopped waiting on.
struct WorkResponse {
    generation: u64,
    seconds: Vec<f64>,
}

/// Everything a shard's dispatcher thread needs.
struct ShardRuntime {
    queue: Arc<BatchQueue<ShardJob>>,
    deadline: Duration,
    max_batch: usize,
}

/// A shard dispatcher: drains the queue in coalesced batches, ships
/// each batch to the inference worker over the [`Handoff`], and settles
/// every job's [`ReplySlot`] — with the packed model answer when it
/// arrives in time, with the job's precomputed analytical estimates
/// otherwise. Runs `predict_many`'s generation/pending state machine,
/// so a deadline miss degrades exactly like the single-worker server:
/// the next batch falls back `Busy` until the stale answer is drained,
/// and a dead worker turns every later batch into `WorkerLost`.
///
/// Exits when the queue is closed and fully drained; dropping the
/// handoff then closes the request channel and joins the worker.
fn dispatch_loop(rt: ShardRuntime, handoff: Handoff<WorkRequest, WorkResponse>) {
    // HOT-ALLOC: two scratch vectors per dispatcher lifetime, reused
    // across every batch.
    let mut batch: Vec<ShardJob> = Vec::with_capacity(rt.max_batch);
    let mut counts: Vec<usize> = Vec::with_capacity(rt.max_batch);
    let mut generation: u64 = 0;
    let mut pending = false;
    let mut lost = false;
    loop {
        debug_assert!(batch.is_empty());
        if !rt.queue.drain(rt.max_batch, &mut batch) {
            return;
        }
        let _span = telemetry::span("serving.shard.dispatch");
        telemetry::count("serving.shard.batches", 1);
        let total_plans: usize = batch.iter().map(|job| job.plans.len()).sum();
        telemetry::observe("serving.batch_size", total_plans as u64);
        if lost {
            settle_fallback(&mut batch, FallbackReason::WorkerLost);
            continue;
        }
        // Drain any response from a batch we previously abandoned; the
        // worker is busy until it lands.
        if pending {
            while handoff.try_recv().is_ok() {
                pending = false;
            }
            if pending {
                settle_fallback(&mut batch, FallbackReason::Busy);
                continue;
            }
        }
        generation = generation.wrapping_add(1);
        counts.clear();
        // HOT-ALLOC: per-batch assembly — the job payloads are moved
        // (not copied) into the request shipped across the channel.
        let mut jobs = Vec::with_capacity(batch.len());
        for job in &mut batch {
            counts.push(job.plans.len());
            jobs.push((std::mem::take(&mut job.plans), std::mem::take(&mut job.resources)));
        }
        if !handoff.send(WorkRequest { generation, jobs }) {
            lost = true;
            settle_fallback(&mut batch, FallbackReason::WorkerLost);
            continue;
        }
        loop {
            match handoff.recv_timeout(rt.deadline) {
                Ok(resp) if resp.generation == generation => {
                    settle_model(&mut batch, &counts, resp.seconds);
                    break;
                }
                // A stale response from an abandoned batch; each
                // drained one frees the worker, so this is bounded by
                // the generation counter.
                Ok(_stale) => continue,
                Err(RecvTimeoutError::Timeout) => {
                    pending = true;
                    settle_fallback(&mut batch, FallbackReason::Deadline);
                    break;
                }
                Err(RecvTimeoutError::Disconnected) => {
                    lost = true;
                    settle_fallback(&mut batch, FallbackReason::WorkerLost);
                    break;
                }
            }
        }
    }
}

/// Settles every job in `batch` with its precomputed analytical
/// estimates for `reason`. Telemetry counts only the jobs this side
/// actually delivered — a job whose client already timed out and
/// counted its own fallback is not double-counted.
fn settle_fallback(batch: &mut Vec<ShardJob>, reason: FallbackReason) {
    for job in batch.drain(..) {
        let ShardJob { fallback, tenant, reply, .. } = job;
        let delivered = fallback.len() as u64;
        let outcome = JobOutcome {
            source: PredictionSource::Fallback(reason),
            seconds: fallback,
        };
        if reply.complete(outcome) {
            tenant.release();
            telemetry::count(reason.counter(), delivered);
        }
    }
}

/// Splits the worker's packed `seconds` back per job and settles each
/// slot with the model answer. A length mismatch (a mangled batch —
/// never produced by a correct worker) falls back analytically rather
/// than handing a client someone else's estimate.
fn settle_model(batch: &mut Vec<ShardJob>, counts: &[usize], seconds: Vec<f64>) {
    let mut remaining = seconds.into_iter();
    for (i, job) in batch.drain(..).enumerate() {
        let want = counts.get(i).copied().unwrap_or(0);
        // HOT-ALLOC: the per-job response vector handed to the waiting
        // client.
        let secs: Vec<f64> = remaining.by_ref().take(want).collect();
        let ShardJob { fallback, tenant, reply, .. } = job;
        let intact = secs.len() == want && want == fallback.len();
        let delivered = fallback.len() as u64;
        let outcome = if intact {
            JobOutcome { source: PredictionSource::Model, seconds: secs }
        } else {
            JobOutcome {
                source: PredictionSource::Fallback(FallbackReason::WorkerLost),
                seconds: fallback,
            }
        };
        if reply.complete(outcome) {
            tenant.release();
            if intact {
                telemetry::count("serving.predict.model", delivered);
            } else {
                telemetry::count(FallbackReason::WorkerLost.counter(), delivered);
            }
        }
    }
}

/// Lifetime service-quality counters, shared by every client thread.
struct ServiceStats {
    total: AtomicU64,
    model: AtomicU64,
    by_reason: [AtomicU64; 6],
}

impl ServiceStats {
    fn new() -> Self {
        Self {
            total: AtomicU64::new(0),
            model: AtomicU64::new(0),
            by_reason: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
        }
    }

    fn record(&self, out: &[ServingPrediction]) {
        // ORDERING: monotone statistics counters; readers only report,
        // no data is published through them.
        self.total.fetch_add(out.len() as u64, Ordering::Relaxed);
        for p in out {
            match p.source {
                // ORDERING: same monotone statistics counters.
                PredictionSource::Model => {
                    self.model.fetch_add(1, Ordering::Relaxed);
                }
                PredictionSource::Fallback(reason) => {
                    // PANIC-FREE: idx() enumerates the FallbackReason
                    // variants and by_reason is sized to that count.
                    // ORDERING: same monotone statistics counters.
                    self.by_reason[reason.idx()].fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

/// The sharded, batching, multi-tenant serving service. See the
/// [module docs](self) for the architecture and `docs/SERVING.md` for
/// the operator's guide.
///
/// Unlike [`ServingModel`](super::ServingModel), every method takes
/// `&self`: the service is `Send + Sync` and meant to be shared across
/// client threads (`Arc<ShardedServing>` or a scoped borrow).
///
/// ```
/// use encoding::word2vec::{train as w2v_train, W2vConfig};
/// use encoding::{EncoderConfig, PlanEncoder};
/// use raal::serving::shard::{ShardConfig, ShardedServing};
/// use raal::serving::{PredictionSource, ServingConfig};
/// use raal::{CostModel, ModelBundle, ModelConfig};
/// use sparksim::catalog::Catalog;
/// use sparksim::engine::Engine;
/// use sparksim::resource::{ClusterConfig, ResourceConfig};
/// use sparksim::schema::{ColumnDef, TableSchema};
/// use sparksim::storage::{Column, ColumnData, Table};
/// use sparksim::types::DataType;
/// use std::sync::Arc;
/// use std::time::Duration;
///
/// // A tiny (untrained) bundle keeps the example fast; production
/// // loads a trained checkpoint with `ShardedServing::from_checkpoint`.
/// let corpus = vec![vec!["filescan".to_string(), "hashaggregate".to_string()]];
/// let encoder = PlanEncoder::new(
///     w2v_train(&corpus, &W2vConfig { dim: 4, epochs: 1, ..Default::default() }),
///     EncoderConfig { max_nodes: 32, structure: true },
/// );
/// let model = CostModel::new(ModelConfig {
///     hidden: 8,
///     latent_k: 4,
///     head_hidden: 8,
///     ..ModelConfig::raal(encoder.node_dim())
/// });
/// let bundle = ModelBundle::new(model, &encoder);
///
/// let mut catalog = Catalog::new();
/// catalog.register(Table::new(
///     TableSchema::new("t", vec![ColumnDef::new("id", DataType::Int, false)]),
///     vec![Column::non_null(ColumnData::Int((0..100).collect()))],
/// ));
/// let engine = Engine::new(catalog);
/// let plan = engine.plan_candidates("SELECT COUNT(*) FROM t").unwrap().remove(0);
/// let res = ResourceConfig::default_for(&ClusterConfig::default());
///
/// let cfg = ShardConfig {
///     shards: 2,
///     serving: ServingConfig { deadline: Duration::from_secs(10), ..Default::default() },
///     ..Default::default()
/// };
/// let service = ShardedServing::new(
///     bundle,
///     Arc::new(|plan: &sparksim::PhysicalPlan, _: &ResourceConfig| 1.0 + plan.len() as f64),
///     cfg,
/// );
///
/// // Concurrent tenants share the service through &self.
/// let pred = service.predict("tenant-a", &plan, &res);
/// assert_eq!(pred.source, PredictionSource::Model);
/// assert!(pred.seconds.is_finite());
/// assert_eq!(service.slo_stats().total, 1);
///
/// // Shutdown drains the queues, joins every dispatcher and worker,
/// // and is idempotent; later predicts shed to the fallback.
/// service.shutdown();
/// assert!(service.predict("tenant-a", &plan, &res).source != PredictionSource::Model);
/// ```
pub struct ShardedServing {
    queues: Vec<Arc<BatchQueue<ShardJob>>>,
    dispatchers: Mutex<Vec<thread::JoinHandle<()>>>,
    encoder: Option<PlanEncoder>,
    model: Option<FrozenModel>,
    fallback: Arc<dyn FallbackModel + Send + Sync>,
    cfg: ShardConfig,
    tenants: TenantTable,
    next_shard: AtomicUsize,
    degraded: Option<FallbackReason>,
    stats: ServiceStats,
}

impl ShardedServing {
    /// Serves a loaded bundle across [`ShardConfig::shards`] shards.
    /// The model is quantized and frozen once ([`FrozenModel::freeze`]);
    /// every shard's worker holds a reference-counted clone of the same
    /// weights. Spawns two threads per shard (dispatcher + inference
    /// worker) immediately.
    pub fn new(
        bundle: ModelBundle,
        fallback: Arc<dyn FallbackModel + Send + Sync>,
        cfg: ShardConfig,
    ) -> Self {
        let encoder = bundle.encoder();
        let frozen = FrozenModel::freeze(bundle.model);
        let shards = cfg.shards.max(1);
        let mut queues = Vec::with_capacity(shards);
        let mut dispatchers = Vec::with_capacity(shards);
        for _ in 0..shards {
            let queue = Arc::new(BatchQueue::bounded(cfg.queue_capacity));
            let worker_model = frozen.clone();
            let quantized = cfg.serving.quantized;
            let handoff = Handoff::spawn(move |req: WorkRequest| {
                // One packed pricing pass over the whole coalesced
                // batch: every job's plans share one head matmul per
                // layer, and the worker's thread-local arena is reused
                // across requests.
                let items: Vec<(&EncodedPlan, &[f32])> = req
                    .jobs
                    .iter()
                    .flat_map(|(plans, res)| plans.iter().map(move |p| (p, res.as_slice())))
                    .collect();
                let seconds = if quantized {
                    worker_model.predict_packed(&items)
                } else {
                    worker_model.model().predict_packed(&items)
                };
                WorkResponse { generation: req.generation, seconds }
            });
            let rt = ShardRuntime {
                queue: queue.clone(),
                deadline: cfg.serving.deadline,
                max_batch: cfg.max_batch.max(1),
            };
            dispatchers.push(thread::spawn(move || dispatch_loop(rt, handoff)));
            queues.push(queue);
        }
        let tenants = TenantTable::new(cfg.tenant_inflight);
        Self {
            queues,
            dispatchers: Mutex::new(dispatchers),
            encoder: Some(encoder),
            model: Some(frozen),
            fallback,
            cfg,
            tenants,
            next_shard: AtomicUsize::new(0),
            degraded: None,
            stats: ServiceStats::new(),
        }
    }

    /// Loads a checkpoint and serves it sharded; a bundle that fails
    /// [`ModelBundle::load`] validation yields a permanently degraded
    /// service (every predict answered by the fallback) instead of an
    /// error or panic. See the [module docs](self) for an example.
    pub fn from_checkpoint(
        path: &Path,
        fallback: Arc<dyn FallbackModel + Send + Sync>,
        cfg: ShardConfig,
    ) -> Self {
        match ModelBundle::load(path) {
            Ok(bundle) => Self::new(bundle, fallback, cfg),
            Err(_) => Self::degraded(fallback, cfg, FallbackReason::Checkpoint),
        }
    }

    /// A service with no deep model at all — every predict is answered
    /// by the fallback with the given sticky reason. No threads are
    /// spawned.
    pub fn degraded(
        fallback: Arc<dyn FallbackModel + Send + Sync>,
        cfg: ShardConfig,
        reason: FallbackReason,
    ) -> Self {
        let tenants = TenantTable::new(cfg.tenant_inflight);
        Self {
            queues: Vec::new(),
            dispatchers: Mutex::new(Vec::new()),
            encoder: None,
            model: None,
            fallback,
            cfg,
            tenants,
            next_shard: AtomicUsize::new(0),
            degraded: Some(reason),
            stats: ServiceStats::new(),
        }
    }

    /// True when the deep model is out of the serving path for good.
    pub fn is_degraded(&self) -> bool {
        self.degraded.is_some()
    }

    /// The active configuration.
    pub fn config(&self) -> &ShardConfig {
        &self.cfg
    }

    /// Number of live shards (0 for a degraded service).
    pub fn shards(&self) -> usize {
        self.queues.len()
    }

    /// The frozen model handle, when the service is healthy.
    pub fn model(&self) -> Option<&FrozenModel> {
        self.model.as_ref()
    }

    /// Scores one plan for `tenant`: the deep model's packed answer if
    /// it arrives within [`ServingConfig::deadline`], the analytical
    /// fallback's otherwise — never a panic, never an unbounded wait.
    ///
    /// ```
    /// use raal::serving::shard::{ShardConfig, ShardedServing};
    /// use raal::serving::{FallbackReason, PredictionSource};
    /// use sparksim::resource::{ClusterConfig, ResourceConfig};
    /// # use sparksim::catalog::Catalog;
    /// # use sparksim::engine::Engine;
    /// # use sparksim::schema::{ColumnDef, TableSchema};
    /// # use sparksim::storage::{Column, ColumnData, Table};
    /// # use sparksim::types::DataType;
    /// # let mut catalog = Catalog::new();
    /// # catalog.register(Table::new(
    /// #     TableSchema::new("t", vec![ColumnDef::new("id", DataType::Int, false)]),
    /// #     vec![Column::non_null(ColumnData::Int((0..100).collect()))],
    /// # ));
    /// # let engine = Engine::new(catalog);
    /// # let plan = engine.plan_candidates("SELECT COUNT(*) FROM t").unwrap().remove(0);
    /// let service = ShardedServing::degraded(
    ///     std::sync::Arc::new(|_: &sparksim::PhysicalPlan, _: &ResourceConfig| 7.0),
    ///     ShardConfig::default(),
    ///     FallbackReason::Checkpoint,
    /// );
    /// let res = ResourceConfig::default_for(&ClusterConfig::default());
    /// let pred = service.predict("ad-hoc", &plan, &res);
    /// assert_eq!(pred.seconds, 7.0);
    /// assert_eq!(pred.source, PredictionSource::Fallback(FallbackReason::Checkpoint));
    /// ```
    pub fn predict(
        &self,
        tenant: &str,
        plan: &PhysicalPlan,
        res: &ResourceConfig,
    ) -> ServingPrediction {
        let mut out = self.predict_many(tenant, &[plan], res);
        debug_assert_eq!(out.len(), 1);
        // PANIC-FREE: predict_many returns exactly one prediction per
        // input plan.
        out.remove(0)
    }

    /// Scores K candidate plans for `tenant` under one resource
    /// configuration. The admitted plans travel as one job; the shard's
    /// coalescer may pack them together with other tenants' concurrent
    /// jobs into a single [`FrozenModel::predict_packed`] call.
    /// Oversized plans fall back individually at admission; a shed,
    /// timed-out or failed job falls back for every admitted plan.
    pub fn predict_many(
        &self,
        tenant: &str,
        plans: &[&PhysicalPlan],
        res: &ResourceConfig,
    ) -> Vec<ServingPrediction> {
        let t0 = telemetry::clock_us();
        let out = self.predict_many_inner(tenant, plans, res);
        telemetry::observe("serving.predict_us", telemetry::clock_us().saturating_sub(t0));
        self.stats.record(&out);
        if !out.is_empty() {
            self.publish_slo();
        }
        out
    }

    /// Lifetime serving-quality counters for this service, aggregated
    /// across every shard and client thread.
    pub fn slo_stats(&self) -> SloStats {
        // ORDERING: monotone statistics counters, read for reporting.
        SloStats {
            total: self.stats.total.load(Ordering::Relaxed),
            model: self.stats.model.load(Ordering::Relaxed),
            // PANIC-FREE: from_fn indexes 0..6 into the length-6 array.
            // ORDERING: same monotone statistics counters.
            by_reason: std::array::from_fn(|i| self.stats.by_reason[i].load(Ordering::Relaxed)),
            slo_target: self.cfg.serving.slo_target,
        }
    }

    /// A consistent snapshot of the process-wide metrics registry.
    /// Empty when telemetry is disabled; [`Self::slo_stats`] is the
    /// always-on view.
    pub fn metrics_snapshot(&self) -> telemetry::MetricsSnapshot {
        telemetry::metrics_snapshot()
    }

    /// Drains and stops the service: closes every shard queue (later
    /// pushes shed to the fallback), lets each dispatcher finish the
    /// backlog, then joins the dispatcher and inference-worker threads.
    /// Idempotent; also run by `Drop`.
    ///
    /// ```
    /// use raal::serving::shard::{ShardConfig, ShardedServing};
    /// use raal::serving::FallbackReason;
    /// use sparksim::resource::ResourceConfig;
    /// let service = ShardedServing::degraded(
    ///     std::sync::Arc::new(|_: &sparksim::PhysicalPlan, _: &ResourceConfig| 1.0),
    ///     ShardConfig::default(),
    ///     FallbackReason::Checkpoint,
    /// );
    /// service.shutdown();
    /// service.shutdown(); // idempotent
    /// ```
    pub fn shutdown(&self) {
        for queue in &self.queues {
            queue.close();
        }
        for handle in self.take_dispatchers() {
            let _ = handle.join();
        }
    }

    /// Takes the dispatcher handles exactly once (empty after the first
    /// call), so concurrent shutdowns join disjoint sets.
    fn take_dispatchers(&self) -> Vec<thread::JoinHandle<()>> {
        std::mem::take(&mut *lock(&self.dispatchers))
    }

    /// Round-robin stripe cursor; only called on a healthy service,
    /// where at least one queue exists.
    fn pick_shard(&self) -> usize {
        // ORDERING: the stripe cursor is load-balancing state only; no
        // data is published through it.
        let n = self.next_shard.fetch_add(1, Ordering::Relaxed);
        // PANIC-FREE: queues is non-empty on every healthy-service
        // path (ShardConfig::shards is clamped to >= 1), so the
        // modulus is never zero.
        n % self.queues.len()
    }

    fn predict_many_inner(
        &self,
        tenant: &str,
        plans: &[&PhysicalPlan],
        res: &ResourceConfig,
    ) -> Vec<ServingPrediction> {
        let _span = telemetry::span("serving.predict");
        telemetry::count("serving.predict", plans.len() as u64);
        if plans.is_empty() {
            // HOT-ALLOC: Vec::new is capacity 0 — no heap allocation.
            return Vec::new();
        }
        let entry = self.tenants.entry(tenant);
        telemetry::count(&entry.predict_counter, plans.len() as u64);
        if let Some(reason) = self.degraded {
            // HOT-ALLOC: one response vector per request — the serving
            // API hands owned predictions back to the caller.
            return plans.iter().map(|p| self.fall_back(p, res, reason)).collect();
        }
        // Per-plan admission: oversized plans are answered analytically,
        // the rest ride in one job.
        // HOT-ALLOC: per-request batch assembly — the slot vector, the
        // admitted-index list and the response vector are all sized by
        // the caller's batch and returned to (or dropped with) it.
        // PANIC-FREE: i ranges over 0..plans.len() == out.len().
        let mut out: Vec<Option<ServingPrediction>> = plans
            .iter()
            .map(|p| {
                (p.len() > self.cfg.serving.max_plan_nodes)
                    .then(|| self.fall_back(p, res, FallbackReason::Admission))
            })
            .collect();
        let admitted: Vec<usize> = (0..plans.len()).filter(|&i| out[i].is_none()).collect();
        if admitted.is_empty() {
            // HOT-ALLOC: the per-request response vector.
            return out.into_iter().flatten().collect();
        }
        // Fair share: a tenant at its in-flight cap is shed before any
        // queue or encoding work happens on its behalf.
        if !entry.try_acquire(self.tenants.limit) {
            telemetry::count(&entry.shed_counter, admitted.len() as u64);
            return self.resolve_all(out, plans, res, FallbackReason::TenantQuota);
        }
        let (encoded, features) = match &self.encoder {
            // HOT-ALLOC: encoding builds one owned EncodedPlan per
            // admitted plan; the shard takes ownership via the queue.
            // PANIC-FREE: admitted holds indices < plans.len().
            Some(encoder) => (
                admitted.iter().map(|&i| encoder.encode(plans[i])).collect::<Vec<_>>(),
                res.feature_vector(&self.cfg.serving.cluster),
            ),
            None => {
                entry.release();
                return self.resolve_all(out, plans, res, FallbackReason::WorkerLost);
            }
        };
        // The fallback is priced eagerly on the client thread: it must
        // be cheap and total, and this keeps borrowed plans off the
        // dispatcher entirely.
        // HOT-ALLOC: per-request job payload (owned by the shard until
        // settle). PANIC-FREE: admitted holds indices < plans.len().
        let fallback_secs: Vec<f64> = admitted
            .iter()
            .map(|&i| self.fallback.estimate_seconds(plans[i], res))
            .collect();
        // HOT-ALLOC: one reply cell per request, shared with the shard.
        let reply = Arc::new(ReplySlot::new());
        // HOT-ALLOC: Arc::clone bumps reference counts; the job struct
        // itself rides inline in the queue's VecDeque slot.
        let job = ShardJob {
            plans: encoded,
            resources: features,
            fallback: fallback_secs,
            tenant: entry.clone(),
            reply: reply.clone(),
        };
        let shard = self.pick_shard();
        // PANIC-FREE: pick_shard returns an index < queues.len().
        // HOT-ALLOC: BatchQueue::push moves the job into a VecDeque
        // slot; ring growth is amortized and capped by queue_capacity.
        if self.queues[shard].push(job).is_err() {
            // Full or closed queue: shed immediately.
            entry.release();
            return self.resolve_all(out, plans, res, FallbackReason::Busy);
        }
        match reply.wait_deadline(self.cfg.serving.deadline) {
            Some(outcome) => {
                // PANIC-FREE: admitted holds indices < out.len().
                // HOT-ALLOC: the per-request response vector.
                for (k, &i) in admitted.iter().enumerate() {
                    out[i] = Some(match outcome.seconds.get(k) {
                        Some(&seconds) => ServingPrediction { seconds, source: outcome.source },
                        // Defensive: a short outcome (never produced by
                        // a correct dispatcher) answers analytically.
                        None => self.fall_back(plans[i], res, FallbackReason::WorkerLost),
                    });
                }
                // HOT-ALLOC: the per-request response vector.
                out.into_iter().flatten().collect()
            }
            None => {
                // We abandoned the slot: the in-flight release is ours
                // (the dispatcher's later complete() returns false and
                // skips it), and so is the fallback accounting.
                entry.release();
                self.resolve_all(out, plans, res, FallbackReason::Deadline)
            }
        }
    }

    /// Fills every unresolved slot with a fallback answer for `reason`.
    fn resolve_all(
        &self,
        out: Vec<Option<ServingPrediction>>,
        plans: &[&PhysicalPlan],
        res: &ResourceConfig,
        reason: FallbackReason,
    ) -> Vec<ServingPrediction> {
        // HOT-ALLOC: the per-request response vector.
        out.into_iter()
            .zip(plans.iter())
            .map(|(slot, plan)| match slot {
                Some(p) => p,
                None => self.fall_back(plan, res, reason),
            })
            .collect()
    }

    fn fall_back(
        &self,
        plan: &PhysicalPlan,
        res: &ResourceConfig,
        reason: FallbackReason,
    ) -> ServingPrediction {
        telemetry::count(reason.counter(), 1);
        ServingPrediction {
            seconds: self.fallback.estimate_seconds(plan, res),
            source: PredictionSource::Fallback(reason),
        }
    }

    /// Mirrors [`SloStats`] into the registered `serving.slo.*` gauges.
    fn publish_slo(&self) {
        let slo = self.slo_stats();
        telemetry::gauge("serving.slo.hit_rate", slo.hit_rate());
        telemetry::gauge("serving.slo.fallback_rate", slo.fallback_rate());
        for reason in FallbackReason::ALL {
            telemetry::gauge(reason.burn_gauge(), slo.error_budget_burn(reason));
        }
    }
}

impl Drop for ShardedServing {
    fn drop(&mut self) {
        self.shutdown();
    }
}
