//! Checkpointing: a trained cost model together with the encoder that
//! produced its inputs (the word2vec table and encoder configuration) —
//! everything needed to score plans in a fresh process.

use crate::model::{CostModel, FrozenModel};
use encoding::word2vec::Word2Vec;
use encoding::{EncoderConfig, PlanEncoder};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// A self-contained, serialisable model checkpoint.
#[derive(Serialize, Deserialize)]
pub struct ModelBundle {
    /// The trained network.
    pub model: CostModel,
    /// The word-embedding table used by the encoder.
    pub word2vec: Word2Vec,
    /// Encoder dimensions/flags.
    pub encoder_config: EncoderConfig,
}

impl ModelBundle {
    /// Packs a model with its encoder.
    pub fn new(model: CostModel, encoder: &PlanEncoder) -> Self {
        Self {
            model,
            word2vec: encoder.word2vec().clone(),
            encoder_config: encoder.config().clone(),
        }
    }

    /// Rebuilds the plan encoder.
    pub fn encoder(&self) -> PlanEncoder {
        PlanEncoder::new(self.word2vec.clone(), self.encoder_config.clone())
    }

    /// Writes the bundle as JSON.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let json = serde_json::to_string(self).map_err(std::io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Loads a bundle from JSON and restores optimizer buffers.
    ///
    /// Before the model is handed out, the symbolic shape checker runs
    /// over the deserialised parameter tensors and the bundled encoder's
    /// feature width is checked against the model's declared input — so a
    /// corrupted or tampered checkpoint fails here with a layer-level
    /// diagnostic (`InvalidData`), not as a kernel panic on first use.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        let mut bundle: ModelBundle = serde_json::from_str(&json).map_err(std::io::Error::other)?;
        bundle.model.restore();
        bundle.model.validate_shapes().map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("checkpoint {} failed the shape check: {e}", path.display()),
            )
        })?;
        let encoder_dim = bundle.encoder().node_dim();
        let model_dim = bundle.model.config().node_dim;
        if encoder_dim != model_dim {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "checkpoint {}: bundled encoder emits {encoder_dim}-wide node features but \
                     the model expects {model_dim}",
                    path.display()
                ),
            ));
        }
        Ok(bundle)
    }

    /// Consumes the bundle into a serving-ready pair: the model frozen
    /// (quantized once, [`FrozenModel::freeze`]) plus its encoder.
    pub fn freeze(self) -> (FrozenModel, PlanEncoder) {
        let encoder = self.encoder();
        (FrozenModel::freeze(self.model), encoder)
    }

    /// [`ModelBundle::load`] followed by [`ModelBundle::freeze`]: the
    /// one-call path from a checkpoint on disk to shareable quantized
    /// weights, used by replicas that never train.
    pub fn load_frozen(path: &Path) -> std::io::Result<(FrozenModel, PlanEncoder)> {
        Ok(Self::load(path)?.freeze())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelConfig;
    use encoding::plan_encoder::{EncodedPlan, PLAN_STAT_FEATURES};
    use encoding::word2vec::{train, W2vConfig};

    fn tiny_encoder() -> PlanEncoder {
        let corpus = vec![vec!["filescan".to_string(), "title".to_string()]];
        PlanEncoder::new(
            train(&corpus, &W2vConfig { dim: 4, epochs: 1, ..Default::default() }),
            EncoderConfig { max_nodes: 8, structure: true },
        )
    }

    #[test]
    fn save_load_round_trip_preserves_predictions() {
        let encoder = tiny_encoder();
        let model = CostModel::new(ModelConfig {
            hidden: 8,
            latent_k: 4,
            head_hidden: 8,
            ..ModelConfig::raal(encoder.node_dim())
        });
        let plan = EncodedPlan {
            node_features: vec![vec![0.25; encoder.node_dim()]; 3],
            children: vec![vec![], vec![0], vec![1]],
            plan_stats: vec![0.3; PLAN_STAT_FEATURES],
        };
        let res = vec![0.5f32; 7];
        let expected = model.predict_seconds(&plan, &res);

        let dir = std::env::temp_dir().join("raal_persist_test");
        let path = dir.join("bundle.json");
        ModelBundle::new(model, &encoder).save(&path).unwrap();
        let loaded = ModelBundle::load(&path).unwrap();
        assert_eq!(loaded.model.predict_seconds(&plan, &res), expected);
        assert_eq!(loaded.encoder().node_dim(), encoder.node_dim());
    }

    #[test]
    fn load_missing_file_is_io_error() {
        assert!(ModelBundle::load(Path::new("/nonexistent/raal.json")).is_err());
    }

    #[test]
    fn load_frozen_round_trips_quantized_predictions() {
        let encoder = tiny_encoder();
        let model = CostModel::new(ModelConfig {
            hidden: 8,
            latent_k: 4,
            head_hidden: 8,
            ..ModelConfig::raal(encoder.node_dim())
        });
        let plan = EncodedPlan {
            node_features: vec![vec![0.25; encoder.node_dim()]; 3],
            children: vec![vec![], vec![0], vec![1]],
            plan_stats: vec![0.3; PLAN_STAT_FEATURES],
        };
        let res = vec![0.5f32; 7];

        let dir = std::env::temp_dir().join("raal_persist_test");
        let path = dir.join("frozen.json");
        ModelBundle::new(model, &encoder).save(&path).unwrap();
        let (frozen, enc) = ModelBundle::load_frozen(&path).unwrap();
        // The quantized and f32 tiers of the same frozen handle must
        // agree with themselves across calls, and the encoder survives.
        assert_eq!(frozen.predict_seconds(&plan, &res), frozen.predict_seconds(&plan, &res));
        assert_eq!(
            frozen.predict_seconds_f32(&plan, &res),
            frozen.model().predict_seconds(&plan, &res)
        );
        assert_eq!(enc.node_dim(), encoder.node_dim());
    }
}
