//! # raal — the Resource-Aware Attentional LSTM deep cost model
//!
//! The primary contribution of *"A Resource-Aware Deep Cost Model for Big
//! Data Query Processing"* (ICDE 2022), built on the `sparksim`,
//! `workloads`, `encoding` and `nn` substrates:
//!
//! * [`model`] — the RAAL network (LSTM plan-feature layer, node-aware
//!   attention, resource-aware attention, dense head) and all ablations
//!   (NA-LSTM, RAAC, ±resource attention; NE-LSTM via the encoder's
//!   structure flag);
//! * [`mod@train`] — mini-batch Adam training with multi-threaded gradients;
//! * [`dataset`] — the data-collection pipeline (queries → plans →
//!   observed runs → word2vec → samples);
//! * [`metrics`] — RE, MSE, COR and R² (Eqs. 12–15);
//! * [`selection`] — plan selection with a trained model (Fig. 1's use);
//! * [`serving`] — production guard rails: deadlines, admission control
//!   and graceful degradation to an analytical fallback; its
//!   [`serving::shard`] submodule scales that to a sharded,
//!   cross-request-batching, multi-tenant service.
//!
//! Quickstart: see `examples/quickstart.rs` at the workspace root.

#![warn(missing_docs)]

pub mod dataset;
pub mod metrics;
pub mod model;
pub mod persist;
pub mod selection;
pub mod serving;
pub mod train;

pub use dataset::{collect, Collection, CollectionConfig};
pub use metrics::{EvalSet, MetricSummary};
pub use model::{
    thread_arena_stats, CostModel, FrozenModel, ModelConfig, PlanContext, PlanLayerKind,
    QuantizedWeights,
};
pub use persist::ModelBundle;
pub use selection::{evaluate_selection, select_plan, SelectionOutcome};
pub use serving::shard::{ShardConfig, ShardedServing};
pub use serving::{
    FallbackModel, FallbackReason, PredictionSource, ServingConfig, ServingModel, ServingPrediction,
};
pub use train::{evaluate, train, train_test_split, TrainConfig, TrainHistory};
