//! Plan selection: the end use of the cost model (paper Fig. 1) — given a
//! query's candidate plans and the resources the manager just allocated,
//! predict each plan's time and run the cheapest.

use crate::model::CostModel;
use encoding::PlanEncoder;
use sparksim::{Engine, EngineError, PhysicalPlan, ResourceConfig};

/// Predicts every candidate's cost and returns the index of the cheapest.
///
/// # Panics
/// Panics when `plans` is empty.
pub fn select_plan(
    model: &CostModel,
    encoder: &PlanEncoder,
    plans: &[PhysicalPlan],
    resources: &ResourceConfig,
    engine: &Engine,
) -> usize {
    assert!(!plans.is_empty(), "no candidate plans");
    let features = resources.feature_vector(engine.simulator().cluster());
    let encoded: Vec<_> = plans.iter().map(|p| encoder.encode(p)).collect();
    let items: Vec<_> = encoded.iter().map(|e| (e, features.as_slice())).collect();
    let costs = model.predict_batch(&items);
    costs
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map_or(0, |(i, _)| i)
}

/// The outcome of a head-to-head between the rule-based default plan and
/// the model-selected plan, measured on the simulator.
#[derive(Debug, Clone)]
pub struct SelectionOutcome {
    /// Index of the plan the model picked.
    pub chosen: usize,
    /// Simulated seconds of the chosen plan.
    pub chosen_seconds: f64,
    /// Simulated seconds of Catalyst's default plan (index 0).
    pub default_seconds: f64,
    /// Index of the truly fastest plan.
    pub oracle: usize,
    /// Simulated seconds of the truly fastest plan.
    pub oracle_seconds: f64,
}

impl SelectionOutcome {
    /// Speedup of the model's choice over the rule-based default.
    pub fn speedup(&self) -> f64 {
        self.default_seconds / self.chosen_seconds.max(1e-9)
    }

    /// Whether the model picked the true optimum.
    pub fn optimal(&self) -> bool {
        self.chosen == self.oracle
    }
}

/// Evaluates plan selection for one query under the given resources,
/// using noise-free repeated simulation as ground truth.
pub fn evaluate_selection(
    engine: &Engine,
    model: &CostModel,
    encoder: &PlanEncoder,
    sql: &str,
    resources: &ResourceConfig,
    seed: u64,
) -> Result<SelectionOutcome, EngineError> {
    let plans = engine.plan_candidates(sql)?;
    let chosen = select_plan(model, encoder, &plans, resources, engine);

    // Ground truth: average several simulated runs per plan.
    let mut times = Vec::with_capacity(plans.len());
    for (i, plan) in plans.iter().enumerate() {
        let result = engine.execute_plan(plan)?;
        let mut total = 0.0;
        for r in 0..3u64 {
            total += engine.simulator().simulate(
                plan,
                &result.metrics,
                resources,
                seed ^ (i as u64 * 131 + r),
            );
        }
        times.push(total / 3.0);
    }
    let oracle = times
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map_or(0, |(i, _)| i);
    Ok(SelectionOutcome {
        chosen,
        chosen_seconds: times[chosen],
        default_seconds: times[0],
        oracle,
        oracle_seconds: times[oracle],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{collect, CollectionConfig};
    use crate::model::{CostModel, ModelConfig};
    use crate::train::{train, TrainConfig};
    use encoding::word2vec::W2vConfig;
    use encoding::EncoderConfig;
    use workloads::imdb;

    #[test]
    fn selection_pipeline_end_to_end() {
        let data = imdb::generate(&imdb::ImdbConfig { title_rows: 400, seed: 5 });
        let scale = data.simulated_scale();
        let graph = data.graph.clone();
        let sim_cfg = sparksim::SimulatorConfig {
            data_scale: scale,
            ..sparksim::SimulatorConfig::default()
        };
        let engine = Engine::with_options(
            data.catalog,
            sparksim::plan::planner::PlannerOptions::default(),
            sparksim::ClusterConfig::default(),
            sim_cfg,
        );
        let cfg = CollectionConfig {
            num_queries: 10,
            resource_states_per_plan: 2,
            runs_per_observation: 1,
            threads: 2,
            ..Default::default()
        };
        let coll = collect(&engine, &graph, &cfg);
        let encoder = coll.build_encoder(
            &W2vConfig { dim: 8, epochs: 1, ..Default::default() },
            EncoderConfig::default(),
        );
        let samples = coll.encode(&encoder, &engine);
        let mut model = CostModel::new(ModelConfig {
            hidden: 16,
            latent_k: 8,
            head_hidden: 16,
            ..ModelConfig::raal(encoder.node_dim())
        });
        train(
            &mut model,
            &samples,
            &TrainConfig {
                epochs: 2,
                batch_size: 16,
                threads: 2,
                ..Default::default()
            },
        );
        let res = ResourceConfig::default_for(engine.simulator().cluster());
        let outcome = evaluate_selection(
            &engine,
            &model,
            &encoder,
            "SELECT COUNT(*) FROM title t, movie_keyword mk WHERE t.id = mk.movie_id",
            &res,
            9,
        )
        .unwrap();
        assert!(outcome.chosen_seconds > 0.0);
        assert!(outcome.oracle_seconds <= outcome.chosen_seconds + 1e-9);
        assert!(outcome.oracle_seconds <= outcome.default_seconds + 1e-9);
    }
}
