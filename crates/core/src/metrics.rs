//! Evaluation metrics of the paper's Sec. V-A: relative error (Eq. 12),
//! mean squared error (Eq. 13), Pearson correlation (Eq. 14) and the
//! coefficient of determination R² (Eq. 15).

/// Paired actual/estimated costs for a test set.
#[derive(Debug, Clone, Default)]
pub struct EvalSet {
    actual: Vec<f64>,
    estimated: Vec<f64>,
}

impl EvalSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a set from paired vectors.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn from_pairs(actual: Vec<f64>, estimated: Vec<f64>) -> Self {
        assert_eq!(actual.len(), estimated.len(), "paired vectors required");
        Self { actual, estimated }
    }

    /// Records one pair.
    pub fn push(&mut self, actual: f64, estimated: f64) {
        self.actual.push(actual);
        self.estimated.push(estimated);
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.actual.len()
    }

    /// True when no pairs are recorded.
    pub fn is_empty(&self) -> bool {
        self.actual.is_empty()
    }

    /// Underlying pairs (actual, estimated).
    pub fn pairs(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.actual.iter().copied().zip(self.estimated.iter().copied())
    }

    /// Mean relative error `|ac − es| / ac` (Eq. 12). Pairs with a
    /// non-positive actual cost are skipped.
    pub fn relative_error(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (ac, es) in self.pairs() {
            if ac > 0.0 {
                sum += (ac - es).abs() / ac;
                n += 1;
            }
        }
        if n == 0 {
            f64::NAN
        } else {
            sum / n as f64
        }
    }

    /// Mean squared error (Eq. 13) over a transform of the costs. The
    /// paper reports MSE on normalised costs; pass the same transform used
    /// for training (e.g. `log1p`) to match.
    pub fn mse_with(&self, transform: impl Fn(f64) -> f64) -> f64 {
        if self.is_empty() {
            return f64::NAN;
        }
        self.pairs()
            .map(|(ac, es)| {
                let d = transform(ac) - transform(es);
                d * d
            })
            .sum::<f64>()
            / self.len() as f64
    }

    /// Plain MSE on raw costs.
    pub fn mse(&self) -> f64 {
        self.mse_with(|x| x)
    }

    /// Pearson correlation between actual and estimated costs (Eq. 14).
    pub fn correlation(&self) -> f64 {
        if self.len() < 2 {
            return f64::NAN;
        }
        let n = self.len() as f64;
        let ma = self.actual.iter().sum::<f64>() / n;
        let me = self.estimated.iter().sum::<f64>() / n;
        let mut cov = 0.0;
        let mut va = 0.0;
        let mut ve = 0.0;
        for (ac, es) in self.pairs() {
            cov += (ac - ma) * (es - me);
            va += (ac - ma) * (ac - ma);
            ve += (es - me) * (es - me);
        }
        if va == 0.0 || ve == 0.0 {
            return 0.0;
        }
        cov / (va.sqrt() * ve.sqrt())
    }

    /// Coefficient of determination R² (Eq. 15). Can be negative for
    /// models worse than predicting the mean.
    pub fn r_squared(&self) -> f64 {
        if self.len() < 2 {
            return f64::NAN;
        }
        let n = self.len() as f64;
        let ma = self.actual.iter().sum::<f64>() / n;
        let ss_res: f64 = self.pairs().map(|(ac, es)| (ac - es) * (ac - es)).sum();
        let ss_tot: f64 = self.actual.iter().map(|ac| (ac - ma) * (ac - ma)).sum();
        if ss_tot == 0.0 {
            return 0.0;
        }
        1.0 - ss_res / ss_tot
    }

    /// The four headline metrics at once: (RE, MSE-on-transform, COR, R²).
    pub fn summary(&self, mse_transform: impl Fn(f64) -> f64) -> MetricSummary {
        MetricSummary {
            re: self.relative_error(),
            mse: self.mse_with(mse_transform),
            cor: self.correlation(),
            r2: self.r_squared(),
        }
    }
}

/// The four metrics the paper reports in every table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricSummary {
    /// Relative error.
    pub re: f64,
    /// Mean squared error (on the training transform).
    pub mse: f64,
    /// Pearson correlation.
    pub cor: f64,
    /// Coefficient of determination.
    pub r2: f64,
}

impl std::fmt::Display for MetricSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RE={:.4} MSE={:.4} COR={:.4} R2={:.4}", self.re, self.mse, self.cor, self.r2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let e = EvalSet::from_pairs(vec![1.0, 2.0, 4.0], vec![1.0, 2.0, 4.0]);
        assert_eq!(e.relative_error(), 0.0);
        assert_eq!(e.mse(), 0.0);
        assert!((e.correlation() - 1.0).abs() < 1e-12);
        assert!((e.r_squared() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relative_error_hand_computed() {
        let e = EvalSet::from_pairs(vec![10.0, 20.0], vec![8.0, 25.0]);
        // (2/10 + 5/20)/2 = 0.225
        assert!((e.relative_error() - 0.225).abs() < 1e-12);
    }

    #[test]
    fn mse_hand_computed() {
        let e = EvalSet::from_pairs(vec![1.0, 3.0], vec![2.0, 1.0]);
        assert!((e.mse() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn anti_correlated_predictions() {
        let e = EvalSet::from_pairs(vec![1.0, 2.0, 3.0], vec![3.0, 2.0, 1.0]);
        assert!((e.correlation() + 1.0).abs() < 1e-12);
        assert!(e.r_squared() < 0.0, "worse than the mean predictor");
    }

    #[test]
    fn constant_actuals_are_degenerate_not_nan() {
        let e = EvalSet::from_pairs(vec![2.0, 2.0], vec![1.0, 3.0]);
        assert_eq!(e.correlation(), 0.0);
        assert_eq!(e.r_squared(), 0.0);
    }

    #[test]
    fn zero_actuals_skipped_in_re() {
        let e = EvalSet::from_pairs(vec![0.0, 10.0], vec![5.0, 10.0]);
        assert_eq!(e.relative_error(), 0.0);
    }

    #[test]
    fn mse_with_transform() {
        let e = EvalSet::from_pairs(vec![9.0], vec![99.0]);
        let mse = e.mse_with(|x| (1.0 + x).ln());
        let d = (10.0f64.ln() - 100.0f64.ln()).powi(2);
        assert!((mse - d).abs() < 1e-12);
    }
}
